//! Attention decoder (paper Eqs. 5–6, §III-B.3).
//!
//! Pointer-network-style additive attention: given the query vector q_t
//! (the LSTM hidden state) and the endpoint embeddings F, each endpoint's
//! score is `vᵀ tanh(W1·F + W2·q)`; invalid (selected or masked) endpoints
//! get −∞ and a numerically-stable masked softmax turns the scores into the
//! sampling distribution. (Eq. 6 in the paper omits the `exp` in the
//! denominator — an obvious typo — so a standard softmax is used.)

use crate::config::RlConfig;
use rand::rngs::StdRng;
use rand::Rng;
use rl_ccd_nn::{xavier, Linear, ParamBinding, ParamSet, TapeOps, Var};
use std::sync::Arc;

/// Parameter name prefix of the decoder.
pub const DECODER_PREFIX: &str = "dec.";

/// The self-supervised attention decoder.
#[derive(Clone, Debug)]
pub struct AttentionDecoder {
    w1: Linear,
    w2: Linear,
}

/// One decoding step: log-probabilities plus the sampled action.
#[derive(Clone, Copy, Debug)]
pub struct DecodeStep {
    /// Log-probability vector over endpoints (−∞ at invalid entries).
    pub log_probs: Var,
    /// Local index of the sampled endpoint.
    pub action: usize,
    /// Log-probability of the sampled endpoint (1×1, differentiable).
    pub action_log_prob: Var,
}

impl AttentionDecoder {
    /// Creates the decoder and registers its parameters (`W1`, `W2`, `v`).
    pub fn init(config: &RlConfig, params: &mut ParamSet, rng: &mut StdRng) -> Self {
        let w1 = Linear::init(
            format!("{DECODER_PREFIX}w1"),
            config.embed_dim,
            config.attn_dim,
            params,
            rng,
        );
        let w2 = Linear::init(
            format!("{DECODER_PREFIX}w2"),
            config.lstm_hidden,
            config.attn_dim,
            params,
            rng,
        );
        params.insert(
            format!("{DECODER_PREFIX}v"),
            xavier(config.attn_dim, 1, rng),
        );
        Self { w1, w2 }
    }

    /// Like [`AttentionDecoder::decode`] but deterministic: picks the
    /// argmax endpoint instead of sampling (greedy policy evaluation).
    ///
    /// # Panics
    /// Panics if `valid` has no `true` entry.
    pub fn decode_greedy<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        embeddings: Var,
        query: Var,
        valid: &[bool],
    ) -> DecodeStep {
        let log_probs = self.scores(tape, binding, embeddings, query, valid);
        let lp = tape.value(log_probs);
        let action = (0..valid.len())
            .filter(|&i| valid[i])
            .max_by(|&a, &b| lp.at(a, 0).total_cmp(&lp.at(b, 0)))
            .expect("at least one valid endpoint");
        let action_log_prob = tape.pick(log_probs, action, 0);
        DecodeStep {
            log_probs,
            action,
            action_log_prob,
        }
    }

    /// Teacher-forced variant: computes the same attention distribution as
    /// [`AttentionDecoder::decode`] but takes the action as given instead of
    /// sampling, returning the differentiable log-probability the *current*
    /// parameters assign to that logged action. Used by offline retraining to
    /// replay experience records through a gradient tape.
    ///
    /// # Panics
    /// Panics if `action` is out of range or masked invalid — an experience
    /// record that disagrees with the rebuilt environment is corrupt and must
    /// not silently contribute a bogus gradient.
    pub fn decode_forced<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        embeddings: Var,
        query: Var,
        valid: &[bool],
        action: usize,
    ) -> DecodeStep {
        let log_probs = self.scores(tape, binding, embeddings, query, valid);
        assert!(
            action < valid.len() && valid[action],
            "forced action {action} is not a valid endpoint"
        );
        let action_log_prob = tape.pick(log_probs, action, 0);
        DecodeStep {
            log_probs,
            action,
            action_log_prob,
        }
    }

    /// Eqs. 5–6: attention scores → masked log-softmax.
    fn scores<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        embeddings: Var,
        query: Var,
        valid: &[bool],
    ) -> Var {
        let f_proj = self.w1.forward(tape, binding, embeddings);
        let q_proj = self.w2.forward(tape, binding, query);
        let pre = tape.add_row(f_proj, q_proj);
        let act = tape.tanh(pre);
        let v = binding.var(&format!("{DECODER_PREFIX}v"));
        let scores = tape.matmul(act, v); // (E×1)
        let mask = Arc::new(valid.to_vec());
        tape.masked_log_softmax(scores, mask)
    }

    /// Computes attention scores, masks invalid endpoints, samples one
    /// action from the resulting distribution, and returns the
    /// differentiable log-probability of that action.
    ///
    /// # Panics
    /// Panics if `valid` has no `true` entry or its length differs from the
    /// number of embeddings.
    pub fn decode<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        embeddings: Var,
        query: Var,
        valid: &[bool],
        rng: &mut StdRng,
    ) -> DecodeStep {
        // Eq. 5: A = vᵀ tanh(W1·F + W2·q), broadcast over endpoints.
        let f_proj = self.w1.forward(tape, binding, embeddings);
        let q_proj = self.w2.forward(tape, binding, query);
        let pre = tape.add_row(f_proj, q_proj);
        let act = tape.tanh(pre);
        let v = binding.var(&format!("{DECODER_PREFIX}v"));
        let scores = tape.matmul(act, v); // (E×1)
                                          // Eq. 6 (fixed): masked, numerically-stable log-softmax.
        let mask = Arc::new(valid.to_vec());
        let log_probs = tape.masked_log_softmax(scores, mask);
        // Sample one endpoint from the distribution.
        let lp = tape.value(log_probs);
        let mut x: f32 = rng.gen_range(0.0..1.0);
        let mut action = valid
            .iter()
            .position(|&m| m)
            .expect("at least one valid endpoint");
        for (i, &ok) in valid.iter().enumerate() {
            if !ok {
                continue;
            }
            let p = lp.at(i, 0).exp();
            if x < p {
                action = i;
                break;
            }
            x -= p;
            action = i; // fall back to the last valid on rounding loss
        }
        let action_log_prob = tape.pick(log_probs, action, 0);
        DecodeStep {
            log_probs,
            action,
            action_log_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rl_ccd_nn::{Tape, Tensor};

    fn build() -> (ParamSet, AttentionDecoder, RlConfig) {
        let cfg = RlConfig::fast();
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ParamSet::new();
        let dec = AttentionDecoder::init(&cfg, &mut params, &mut rng);
        (params, dec, cfg)
    }

    fn embeddings(cfg: &RlConfig, n: usize) -> Tensor {
        let mut t = Tensor::zeros(n, cfg.embed_dim);
        for i in 0..t.len() {
            t.data_mut()[i] = ((i * 31 % 17) as f32 - 8.0) * 0.1;
        }
        t
    }

    #[test]
    fn probabilities_normalize_over_valid() {
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let e = tape.leaf(embeddings(&cfg, 5));
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let valid = vec![true, false, true, true, false];
        let mut rng = StdRng::seed_from_u64(1);
        let step = dec.decode(&mut tape, &binding, e, q, &valid, &mut rng);
        let lp = tape.value(step.log_probs);
        let total: f32 = (0..5)
            .filter(|&i| valid[i])
            .map(|i| lp.at(i, 0).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(valid[step.action], "sampled an invalid endpoint");
        assert_eq!(lp.at(1, 0), f32::NEG_INFINITY);
        // The picked log-prob matches the vector entry.
        assert_eq!(
            tape.value(step.action_log_prob).data()[0],
            lp.at(step.action, 0)
        );
    }

    #[test]
    fn sampling_is_seed_deterministic_and_varied() {
        let (params, dec, cfg) = build();
        let run = |seed: u64| {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let e = tape.leaf(embeddings(&cfg, 8));
            let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
            let valid = vec![true; 8];
            let mut rng = StdRng::seed_from_u64(seed);
            dec.decode(&mut tape, &binding, e, q, &valid, &mut rng)
                .action
        };
        assert_eq!(run(7), run(7));
        // Across many seeds, more than one endpoint gets sampled.
        let actions: std::collections::HashSet<usize> = (0..32).map(run).collect();
        assert!(actions.len() > 1, "sampling looks degenerate");
    }

    #[test]
    fn greedy_picks_the_most_probable_valid_endpoint() {
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let e = tape.leaf(embeddings(&cfg, 6));
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let valid = vec![true, true, false, true, true, true];
        let step = dec.decode_greedy(&mut tape, &binding, e, q, &valid);
        assert!(valid[step.action]);
        let lp = tape.value(step.log_probs);
        for (i, &ok) in valid.iter().enumerate() {
            if ok {
                assert!(lp.at(step.action, 0) >= lp.at(i, 0));
            }
        }
        // Deterministic: same inputs, same action.
        let mut tape2 = Tape::new();
        let binding2 = params.bind(&mut tape2);
        let e2 = tape2.leaf(embeddings(&cfg, 6));
        let q2 = tape2.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let step2 = dec.decode_greedy(&mut tape2, &binding2, e2, q2, &valid);
        assert_eq!(step.action, step2.action);
    }

    #[test]
    fn greedy_survives_nan_scores() {
        // Regression: the argmax compared with `partial_cmp(..).expect(..)`
        // and panicked mid-evaluation when a degenerate design drove the
        // attention scores to NaN. `total_cmp` keeps the walk total and the
        // decoder still returns a valid (if meaningless) endpoint.
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let mut nan = Tensor::zeros(4, cfg.embed_dim);
        nan.data_mut().fill(f32::NAN);
        let e = tape.leaf(nan);
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let valid = vec![true, false, true, true];
        let step = dec.decode_greedy(&mut tape, &binding, e, q, &valid);
        assert!(valid[step.action]);
    }

    #[test]
    fn forced_action_log_prob_matches_distribution() {
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let e = tape.leaf(embeddings(&cfg, 5));
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let valid = vec![true, false, true, true, true];
        let mut rng = StdRng::seed_from_u64(11);
        let sampled = dec.decode(&mut tape, &binding, e, q, &valid, &mut rng);
        let forced = dec.decode_forced(&mut tape, &binding, e, q, &valid, sampled.action);
        assert_eq!(forced.action, sampled.action);
        assert_eq!(
            tape.value(forced.action_log_prob).data()[0],
            tape.value(sampled.action_log_prob).data()[0]
        );
    }

    #[test]
    #[should_panic(expected = "not a valid endpoint")]
    fn forced_invalid_action_panics() {
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let e = tape.leaf(embeddings(&cfg, 4));
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let valid = vec![true, false, true, true];
        let _ = dec.decode_forced(&mut tape, &binding, e, q, &valid, 1);
    }

    #[test]
    #[should_panic(expected = "all entries masked")]
    fn decode_with_nothing_valid_panics() {
        let (params, dec, cfg) = build();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let e = tape.leaf(embeddings(&cfg, 3));
        let q = tape.leaf(Tensor::zeros(1, cfg.lstm_hidden));
        let mut rng = StdRng::seed_from_u64(1);
        let _ = dec.decode(&mut tape, &binding, e, q, &[false; 3], &mut rng);
    }
}
