//! The RL environment: a design plus the flow that produces rewards.
//!
//! Built once per design, it caches everything the selection loop needs —
//! the violating-endpoint pool, their fan-in cones, the GNN message graph,
//! the cone-readout matrix, and the normalized Table I features — and turns
//! a selection into a reward by running the full placement-optimization
//! flow (the trajectory reward of Algorithm 1 line 17).

use crate::features::NodeFeatures;
use rl_ccd_flow::{FlowRecipe, FlowResult};
use rl_ccd_netlist::{
    cone_readout, fanin_cone, message_graph, CellId, Cone, ConeSet, EndpointId, GeneratedDesign,
};
use rl_ccd_nn::{Csr, SharedCsr};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};
use std::sync::Arc;

/// A ready-to-train RL-CCD environment for one design.
#[derive(Clone, Debug)]
pub struct CcdEnv {
    design: GeneratedDesign,
    recipe: FlowRecipe,
    pool: Vec<EndpointId>,
    pool_cells: Vec<CellId>,
    cones: ConeSet,
    adjacency: SharedCsr,
    readout: SharedCsr,
    features: NodeFeatures,
}

impl CcdEnv {
    /// Prepares the environment: runs the begin STA, collects the violating
    /// endpoints (the action pool), traces their cones, builds the GNN
    /// graphs, and extracts features.
    pub fn new(design: GeneratedDesign, recipe: FlowRecipe, fanout_cap: usize) -> Self {
        let netlist = &design.netlist;
        let graph = TimingGraph::new(netlist);
        let clocks = recipe.clock_schedule(netlist, design.period_ps);
        let constraints = Constraints::with_period(design.period_ps);
        let report = analyze(
            netlist,
            &graph,
            &constraints,
            &clocks,
            &EndpointMargins::zero(netlist),
        );
        let pool: Vec<EndpointId> = report
            .violating_endpoints()
            .into_iter()
            .map(EndpointId::new)
            .collect();
        let pool_cells: Vec<CellId> = pool.iter().map(|&e| netlist.endpoint(e).cell()).collect();
        let cones = ConeSet::new(netlist, &pool);
        let cone_vec: Vec<Cone> = pool
            .iter()
            .map(|&e| fanin_cone(netlist, netlist.endpoint(e)))
            .collect();
        let adj = message_graph(netlist, fanout_cap);
        let (indptr, indices, weights) = adj.as_csr();
        let adjacency: SharedCsr = Arc::new(Csr::new(
            adj.node_count(),
            adj.node_count(),
            indptr.to_vec(),
            indices.to_vec(),
            weights.to_vec(),
        ));
        let ro = cone_readout(netlist.cell_count(), &pool_cells, &cone_vec);
        let (indptr, indices, weights) = ro.as_csr();
        let readout: SharedCsr = Arc::new(Csr::new(
            pool.len(),
            netlist.cell_count(),
            indptr.to_vec(),
            indices.to_vec(),
            weights.to_vec(),
        ));
        let features = NodeFeatures::extract(netlist, &report, design.period_ps, recipe.seed);
        Self {
            design,
            recipe,
            pool,
            pool_cells,
            cones,
            adjacency,
            readout,
            features,
        }
    }

    /// The design under optimization.
    pub fn design(&self) -> &GeneratedDesign {
        &self.design
    }

    /// The shared flow recipe.
    pub fn recipe(&self) -> &FlowRecipe {
        &self.recipe
    }

    /// The action pool: violating endpoints at the begin state, worst first.
    pub fn pool(&self) -> &[EndpointId] {
        &self.pool
    }

    /// Cells owning the pool endpoints (aligned with [`CcdEnv::pool`]).
    pub fn pool_cells(&self) -> &[CellId] {
        &self.pool_cells
    }

    /// Fan-in cones of the pool endpoints (local indices).
    pub fn cones(&self) -> &ConeSet {
        &self.cones
    }

    /// Mean-normalized message-passing adjacency (V×V).
    pub fn adjacency(&self) -> &SharedCsr {
        &self.adjacency
    }

    /// Cone-readout matrix (|pool|×V) implementing Eq. 3's pooling.
    pub fn readout(&self) -> &SharedCsr {
        &self.readout
    }

    /// Normalized Table I features.
    pub fn features(&self) -> &NodeFeatures {
        &self.features
    }

    /// Runs the full flow with the given prioritization and returns the
    /// complete result.
    ///
    /// One rollout costs one full STA propagation (building the flow's
    /// [`rl_ccd_sta::IncrementalTimer`]) plus incremental re-timing for
    /// every skew move, sizing edit, and margin change, with full
    /// recomputes only at structural escape hatches (buffer insertion,
    /// signoff legalization).
    pub fn evaluate(&self, selected: &[EndpointId]) -> FlowResult {
        self.recipe.run(&self.design, selected)
    }

    /// The native tool flow (no prioritization).
    pub fn default_flow(&self) -> FlowResult {
        self.evaluate(&[])
    }

    /// Trajectory reward: the final TNS in ps (≤ 0; higher is better).
    pub fn reward(&self, selected: &[EndpointId]) -> f64 {
        self.evaluate(selected).final_qor.tns_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("env", 700, TechNode::N7, 21));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn pool_holds_violating_endpoints_worst_first() {
        let e = env();
        assert!(!e.pool().is_empty());
        assert_eq!(e.pool().len(), e.pool_cells().len());
        assert_eq!(e.cones().len(), e.pool().len());
        assert_eq!(e.readout().rows(), e.pool().len());
        assert_eq!(e.adjacency().rows(), e.design().netlist.cell_count());
        assert_eq!(e.features().node_count(), e.design().netlist.cell_count());
    }

    #[test]
    fn reward_matches_flow_and_differs_by_selection() {
        let e = env();
        let base = e.default_flow();
        assert_eq!(e.reward(&[]), base.final_qor.tns_ps);
        // Select the mildest violations: their margin-to-WNS is largest, so
        // the flow outcome must move.
        let some: Vec<EndpointId> = e.pool().iter().rev().copied().take(6).collect();
        let with_sel = e.reward(&some);
        assert_ne!(with_sel, base.final_qor.tns_ps);
    }
}
