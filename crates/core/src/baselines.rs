//! Non-learning selection baselines.
//!
//! The paper compares RL-CCD only against the tool's native flow (empty
//! selection). These heuristics bound the problem from other directions:
//! if RL cannot beat them, the learning is not earning its runtime.
//! All of them respect the same cone-overlap masking as the agent, so the
//! comparison is apples-to-apples at the mechanism level.

use crate::env::CcdEnv;
use crate::masking::SelectionMask;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rl_ccd_netlist::EndpointId;
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};

/// A named selection heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Baseline {
    /// The native tool flow: prioritize nothing.
    Native,
    /// Walk the pool worst-slack-first (the tool's own criticality order).
    WorstFirst,
    /// Walk the pool mildest-slack-first.
    MildestFirst,
    /// Uniformly random order.
    Random,
    /// Launch-headroom-first: prefer endpoints whose capture register has
    /// the most Q-side slack to donate (a hand-crafted "clock-fixability"
    /// proxy — the strongest non-learning competitor).
    HeadroomFirst,
}

impl Baseline {
    /// All baselines, for sweep harnesses.
    pub fn all() -> [Baseline; 5] {
        [
            Baseline::Native,
            Baseline::WorstFirst,
            Baseline::MildestFirst,
            Baseline::Random,
            Baseline::HeadroomFirst,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Native => "native",
            Baseline::WorstFirst => "worst-first",
            Baseline::MildestFirst => "mildest-first",
            Baseline::Random => "random",
            Baseline::HeadroomFirst => "headroom-first",
        }
    }

    /// Produces the baseline's selection on `env`, walking its preferred
    /// order through the same masking loop as the agent (ρ from `rho`).
    pub fn select(self, env: &CcdEnv, rho: f32, seed: u64) -> Vec<EndpointId> {
        if self == Baseline::Native {
            return Vec::new();
        }
        let pool = env.pool();
        // Order of local indices to attempt.
        let mut order: Vec<usize> = (0..pool.len()).collect();
        match self {
            Baseline::Native => unreachable!(),
            // The pool is already sorted worst-first by the environment.
            Baseline::WorstFirst => {}
            Baseline::MildestFirst => order.reverse(),
            Baseline::Random => {
                let mut rng = StdRng::seed_from_u64(seed);
                order.shuffle(&mut rng);
            }
            Baseline::HeadroomFirst => {
                let design = env.design();
                let recipe = env.recipe();
                let graph = TimingGraph::new(&design.netlist);
                let clocks = recipe.clock_schedule(&design.netlist, design.period_ps);
                let report = analyze(
                    &design.netlist,
                    &graph,
                    &Constraints::with_period(design.period_ps),
                    &clocks,
                    &EndpointMargins::zero(&design.netlist),
                );
                let headroom = |i: usize| -> f32 {
                    let cell = env.pool_cells()[i];
                    let q = report.cell_slack(cell);
                    let need = -report.endpoint_slack(pool[i].index());
                    if q.is_finite() {
                        q - need
                    } else {
                        f32::MAX
                    }
                };
                order.sort_by(|&a, &b| headroom(b).total_cmp(&headroom(a)));
            }
        }
        let mut mask = SelectionMask::new(pool.len(), rho);
        let mut selected = Vec::new();
        for i in order {
            if mask.status(i) == crate::masking::EndpointStatus::Valid {
                mask.select(i, env.cones());
                selected.push(pool[i]);
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("base", 600, TechNode::N7, 91));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn all_baselines_produce_valid_maximal_selections() {
        let env = env();
        for b in Baseline::all() {
            let sel = b.select(&env, 0.3, 7);
            if b == Baseline::Native {
                assert!(sel.is_empty());
                continue;
            }
            // Unique, in-pool.
            let mut u = sel.clone();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), sel.len(), "{} duplicated", b.name());
            for e in &sel {
                assert!(env.pool().contains(e));
            }
            // Maximal: replay exhausts the pool.
            let mut mask = SelectionMask::new(env.pool().len(), 0.3);
            for e in &sel {
                let i = env.pool().iter().position(|p| p == e).expect("in pool");
                mask.select(i, env.cones());
            }
            assert!(!mask.any_valid(), "{} not maximal", b.name());
        }
    }

    #[test]
    fn orders_actually_differ() {
        let env = env();
        let worst = Baseline::WorstFirst.select(&env, 0.3, 7);
        let mild = Baseline::MildestFirst.select(&env, 0.3, 7);
        assert_ne!(worst.first(), mild.first());
        // Random is seed-deterministic.
        assert_eq!(
            Baseline::Random.select(&env, 0.3, 7),
            Baseline::Random.select(&env, 0.3, 7)
        );
        assert!(Baseline::all().len() == 5);
        assert_eq!(Baseline::HeadroomFirst.name(), "headroom-first");
    }
}
