//! Held-out evaluation gate for champion/challenger promotion.
//!
//! Before a serving daemon promotes a freshly loaded checkpoint
//! ("challenger") over the one currently answering traffic ("champion"),
//! both are scored on a fixed, seeded set of held-out designs.  The score
//! per design is the **greedy** trajectory's final TNS (ps) — the same
//! deterministic no-grad path the server answers queries with — so the
//! gate measures exactly what production traffic would see, and two runs
//! of the same gate on the same checkpoints are bit-identical.

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use crate::eval::evaluate_policy;
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_nn::ParamSet;

/// Which designs to score and how strict the gate is.
#[derive(Clone, Debug)]
pub struct GateSpec {
    /// Held-out design generators; everything about each design is
    /// deterministic given its spec.
    pub designs: Vec<DesignSpec>,
    /// Stochastic rollouts per design (0 = greedy only, fastest).
    pub samples: usize,
    /// Base seed for the sampled rollouts (ignored when `samples == 0`).
    pub seed: u64,
    /// Fan-out cap used when building each [`CcdEnv`].
    pub fanout_cap: usize,
    /// Slack granted to the challenger: it passes when its mean greedy
    /// TNS is at least `champion_mean - tolerance` (TNS is ≤ 0; higher
    /// is better).
    pub tolerance: f64,
}

impl GateSpec {
    /// A small two-design gate suitable for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        GateSpec {
            designs: vec![
                DesignSpec::new("gate_a", 360, TechNode::N7, seed.wrapping_add(1)),
                DesignSpec::new("gate_b", 420, TechNode::N7, seed.wrapping_add(2)),
            ],
            samples: 0,
            seed,
            fanout_cap: 24,
            tolerance: 1.0,
        }
    }
}

/// Greedy scores for one held-out design.
#[derive(Clone, Debug)]
pub struct DesignScore {
    /// Design name from the spec.
    pub design: String,
    /// Champion greedy TNS (ps).
    pub champion: f64,
    /// Challenger greedy TNS (ps).
    pub challenger: f64,
}

/// Outcome of one gate run.
#[derive(Clone, Debug)]
pub struct GateVerdict {
    /// Per-design scores, in spec order.
    pub scores: Vec<DesignScore>,
    /// Mean champion greedy TNS across the designs.
    pub champion_mean: f64,
    /// Mean challenger greedy TNS across the designs.
    pub challenger_mean: f64,
    /// Tolerance the verdict was judged with (copied from the spec).
    pub tolerance: f64,
    /// `challenger_mean >= champion_mean - tolerance`.
    pub passed: bool,
}

impl GateVerdict {
    /// One-line human summary, e.g. for audit logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: challenger {:.3} vs champion {:.3} (tolerance {:.3}, {} designs)",
            if self.passed { "pass" } else { "fail" },
            self.challenger_mean,
            self.champion_mean,
            self.tolerance,
            self.scores.len()
        )
    }
}

/// Scores `challenger` against `champion` on the held-out designs in
/// `spec`.  Deterministic: the same inputs always produce the same
/// verdict, bit for bit.
pub fn run_eval_gate(
    champion: (&RlCcd, &ParamSet),
    challenger: (&RlCcd, &ParamSet),
    spec: &GateSpec,
) -> GateVerdict {
    let mut scores = Vec::with_capacity(spec.designs.len());
    let mut champ_sum = 0.0;
    let mut chall_sum = 0.0;
    for (i, design) in spec.designs.iter().enumerate() {
        let env = CcdEnv::new(generate(design), FlowRecipe::default(), spec.fanout_cap);
        let seed = spec.seed.wrapping_add(i as u64);
        let champ = evaluate_policy(champion.0, champion.1, &env, spec.samples, seed)
            .greedy
            .final_qor
            .tns_ps;
        let chall = evaluate_policy(challenger.0, challenger.1, &env, spec.samples, seed)
            .greedy
            .final_qor
            .tns_ps;
        champ_sum += champ;
        chall_sum += chall;
        scores.push(DesignScore {
            design: design.name.clone(),
            champion: champ,
            challenger: chall,
        });
    }
    let n = spec.designs.len().max(1) as f64;
    let champion_mean = champ_sum / n;
    let challenger_mean = chall_sum / n;
    GateVerdict {
        scores,
        champion_mean,
        challenger_mean,
        tolerance: spec.tolerance,
        passed: challenger_mean >= champion_mean - spec.tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;

    #[test]
    fn identical_checkpoints_always_pass() {
        let (model, params) = RlCcd::init(RlConfig::fast());
        let spec = GateSpec::quick(9);
        let verdict = run_eval_gate((&model, &params), (&model, &params), &spec);
        assert!(verdict.passed, "{}", verdict.summary());
        assert_eq!(verdict.champion_mean, verdict.challenger_mean);
        assert_eq!(verdict.scores.len(), 2);
        for s in &verdict.scores {
            assert_eq!(s.champion, s.challenger);
        }
    }

    #[test]
    fn gate_is_deterministic_and_tolerance_gates_regressions() {
        let (model, params) = RlCcd::init(RlConfig::fast());
        let (model2, params2) = RlCcd::init(RlConfig {
            seed: 99,
            ..RlConfig::fast()
        });
        let spec = GateSpec::quick(5);
        let a = run_eval_gate((&model, &params), (&model2, &params2), &spec);
        let b = run_eval_gate((&model, &params), (&model2, &params2), &spec);
        assert_eq!(a.champion_mean, b.champion_mean);
        assert_eq!(a.challenger_mean, b.challenger_mean);
        assert_eq!(a.passed, b.passed);
        // An infinitely strict gate fails any challenger that is even
        // marginally worse; an infinitely lax gate passes anything.
        let strict = GateSpec {
            tolerance: -f64::INFINITY,
            ..spec.clone()
        };
        let lax = GateSpec {
            tolerance: f64::INFINITY,
            ..spec
        };
        assert!(!run_eval_gate((&model, &params), (&model2, &params2), &strict).passed);
        assert!(run_eval_gate((&model, &params), (&model2, &params2), &lax).passed);
    }
}
