//! Table I node features for EP-GNN.
//!
//! Thirteen scalars per cell: the dynamic "RL masked" flag plus twelve
//! static attributes (location x/y, output-net capacitance, driven load,
//! input capacitance, internal power, leakage power, output-net switching
//! power, max toggle rate, worst slack through the cell, worst output slew,
//! worst input slew). Static columns are z-score normalized per design so
//! designs of any size or technology produce comparable inputs — the basis
//! of the paper's transfer-learning claim.

use rl_ccd_netlist::{analyze_power, CellId, Netlist};
use rl_ccd_nn::Tensor;
use rl_ccd_sta::TimingReport;

/// Number of feature columns (Table I).
pub const FEATURE_DIM: usize = 13;

/// Column index of the dynamic "RL masked" flag.
pub const MASKED_COL: usize = 0;

/// Per-design feature matrix with a refreshable "RL masked" column.
#[derive(Clone, Debug)]
pub struct NodeFeatures {
    base: Tensor,
}

impl NodeFeatures {
    /// Extracts and normalizes the static feature columns for every cell.
    ///
    /// `report` must be a timing analysis of the same netlist state;
    /// `period_ps` and `activity_seed` parameterize the power model.
    pub fn extract(
        netlist: &Netlist,
        report: &TimingReport,
        period_ps: f32,
        activity_seed: u64,
    ) -> Self {
        let n = netlist.cell_count();
        let power = analyze_power(netlist, period_ps, activity_seed);
        let lib = netlist.library();
        let mut base = Tensor::zeros(n, FEATURE_DIM);
        for id in netlist.cell_ids() {
            let i = id.index();
            let cell = netlist.cell(id);
            let lc = lib.cell(cell.lib);
            let (out_cap, load_cap, net_pow) = match cell.output {
                Some(net) => (
                    lib.wire().cap(netlist.net_hpwl(net)),
                    netlist.net_load(net),
                    power.net_switching(net),
                ),
                None => (0.0, 0.0, 0.0),
            };
            let slack = report.cell_slack(id);
            let row = [
                0.0, // RL masked (dynamic)
                cell.loc.x,
                cell.loc.y,
                out_cap,
                load_cap,
                lc.input_cap,
                power.internal(id),
                power.leakage(id),
                net_pow,
                power.toggle(id),
                if slack.is_finite() { slack } else { 0.0 },
                report.out_slew(id),
                report.worst_in_slew(id),
            ];
            for (c, v) in row.into_iter().enumerate() {
                base.set(i, c, v);
            }
        }
        normalize_columns(&mut base, MASKED_COL + 1);
        Self { base }
    }

    /// Number of cells covered.
    pub fn node_count(&self) -> usize {
        self.base.rows()
    }

    /// Produces the feature tensor for one RL step: the static columns plus
    /// the current masked/selected flags (`1.0` for each cell in `flagged`).
    pub fn with_flags(&self, flagged: &[CellId]) -> Tensor {
        let mut t = self.base.clone();
        for &cell in flagged {
            t.set(cell.index(), MASKED_COL, 1.0);
        }
        t
    }

    /// The normalized static features (masked column all zero).
    pub fn base(&self) -> &Tensor {
        &self.base
    }
}

/// Z-score normalizes every column from `from_col` on (in place); constant
/// columns become zero.
fn normalize_columns(t: &mut Tensor, from_col: usize) {
    let (n, m) = t.shape();
    if n == 0 {
        return;
    }
    for c in from_col..m {
        let mut mean = 0.0f64;
        for r in 0..n {
            mean += t.at(r, c) as f64;
        }
        mean /= n as f64;
        let mut var = 0.0f64;
        for r in 0..n {
            let d = t.at(r, c) as f64 - mean;
            var += d * d;
        }
        let std = (var / n as f64).sqrt().max(1e-9);
        for r in 0..n {
            let z = ((t.at(r, c) as f64 - mean) / std) as f32;
            t.set(r, c, z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};
    use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph};

    fn features() -> (rl_ccd_netlist::GeneratedDesign, NodeFeatures) {
        let d = generate(&DesignSpec::new("f", 400, TechNode::N7, 8));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 200.0, 1);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let f = NodeFeatures::extract(&d.netlist, &rep, d.period_ps, 1);
        (d, f)
    }

    #[test]
    fn dimensions_match_table_one() {
        let (d, f) = features();
        assert_eq!(f.base().shape(), (d.netlist.cell_count(), FEATURE_DIM));
        assert_eq!(FEATURE_DIM, 13, "Table I: 1+2+1+1+1+2+1+1+1+1+1");
    }

    #[test]
    fn static_columns_are_normalized() {
        let (_, f) = features();
        let t = f.base();
        let (n, m) = t.shape();
        for c in 1..m {
            let mean: f64 = (0..n).map(|r| t.at(r, c) as f64).sum::<f64>() / n as f64;
            assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
            let var: f64 = (0..n)
                .map(|r| (t.at(r, c) as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            // Either unit variance or a constant column squashed to zero.
            assert!(
                (var - 1.0).abs() < 1e-2 || var < 1e-6,
                "column {c} var {var}"
            );
        }
    }

    #[test]
    fn masked_flags_apply_without_touching_base() {
        let (d, f) = features();
        let cell = d.netlist.endpoints()[0].cell();
        let flagged = f.with_flags(&[cell]);
        assert_eq!(flagged.at(cell.index(), MASKED_COL), 1.0);
        // Base stays clean; other rows unflagged.
        assert_eq!(f.base().at(cell.index(), MASKED_COL), 0.0);
        let other = (cell.index() + 1) % d.netlist.cell_count();
        assert_eq!(flagged.at(other, MASKED_COL), 0.0);
    }
}
