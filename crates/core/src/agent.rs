//! The RL-CCD agent: model assembly and the selection-loop rollout
//! (paper Fig. 4, Algorithm 1 lines 5–13).

use crate::config::RlConfig;
use crate::decoder::AttentionDecoder;
use crate::encoder::{ActionEncoder, EncoderState};
use crate::env::CcdEnv;
use crate::epgnn::EpGnn;
use crate::masking::SelectionMask;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd_netlist::{CellId, EndpointId};
use rl_ccd_nn::{LstmState, NoGradTape, ParamBinding, ParamSet, Tape, TapeOps, Tensor, Var};
use std::sync::Arc;

/// The assembled RL-CCD model: EP-GNN + LSTM encoder + attention decoder.
#[derive(Clone, Debug)]
pub struct RlCcd {
    /// Hyper-parameters the model was built with.
    pub config: RlConfig,
    gnn: EpGnn,
    encoder: ActionEncoder,
    decoder: AttentionDecoder,
}

impl RlCcd {
    /// Builds the model and a freshly-initialized parameter set
    /// (Algorithm 1 line 2).
    pub fn init(config: RlConfig) -> (Self, ParamSet) {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut params = ParamSet::new();
        let gnn = EpGnn::init(&config, &mut params, &mut rng);
        let encoder = ActionEncoder::init(&config, &mut params, &mut rng);
        let decoder = AttentionDecoder::init(&config, &mut params, &mut rng);
        (
            Self {
                config,
                gnn,
                encoder,
                decoder,
            },
            params,
        )
    }

    /// Direct access to the EP-GNN forward pass (used by benchmarks and
    /// embedding inspection): node features → endpoint embeddings.
    pub fn gnn_forward(
        &self,
        tape: &mut Tape,
        binding: &ParamBinding,
        x: Var,
        adjacency: &rl_ccd_nn::SharedCsr,
        readout: &rl_ccd_nn::SharedCsr,
    ) -> Var {
        self.gnn.forward(tape, binding, x, adjacency, readout)
    }

    /// Runs one complete selection trajectory on `env` (Algorithm 1
    /// lines 3–13): EP-GNN re-encodes the netlist each step (the masked
    /// flags changed), the LSTM encodes past actions, the attention decoder
    /// samples the next endpoint, and cone-overlap masking prunes the pool
    /// until nothing is selectable.
    pub fn rollout(&self, params: &ParamSet, env: &CcdEnv, rng: &mut StdRng) -> Rollout {
        self.run_trajectory(params, env, Some(rng), Tape::new())
    }

    /// Runs the deterministic greedy trajectory (argmax at every step).
    /// Used for policy evaluation: unlike sampled rollouts it reflects what
    /// the policy has actually learned.
    pub fn rollout_greedy(&self, params: &ParamSet, env: &CcdEnv) -> Rollout {
        self.run_trajectory(params, env, None, Tape::new())
    }

    /// Like [`RlCcd::rollout`] but recording onto a caller-provided tape —
    /// typically one recycled across trajectories via [`Tape::reset`], so
    /// sequential rollouts reuse the same value buffers instead of
    /// reallocating, or a [`Tape::scalar_reference`] tape to run the whole
    /// trajectory through the pinned scalar kernels.
    pub fn rollout_with_tape(
        &self,
        params: &ParamSet,
        env: &CcdEnv,
        rng: &mut StdRng,
        tape: Tape,
    ) -> Rollout {
        self.run_trajectory(params, env, Some(rng), tape)
    }

    /// Greedy variant of [`RlCcd::rollout_with_tape`].
    pub fn rollout_greedy_with_tape(&self, params: &ParamSet, env: &CcdEnv, tape: Tape) -> Rollout {
        self.run_trajectory(params, env, None, tape)
    }

    fn run_trajectory(
        &self,
        params: &ParamSet,
        env: &CcdEnv,
        mut rng: Option<&mut StdRng>,
        mut tape: Tape,
    ) -> Rollout {
        let binding = params.bind(&mut tape);
        let pool = env.pool();
        let mut mask = SelectionMask::new(pool.len(), self.config.rho);
        let (mut state, mut prev_embed) = self.encoder.start(&mut tape);
        let mut selected = Vec::new();
        let mut total_log_prob: Option<Var> = None;
        while mask.any_valid() {
            // State s_t: endpoint embeddings with current masked flags.
            let flag_cells: Vec<CellId> = mask
                .flagged()
                .iter()
                .map(|&i| env.pool_cells()[i])
                .collect();
            let x = tape.leaf(env.features().with_flags(&flag_cells));
            let embeddings =
                self.gnn
                    .forward(&mut tape, &binding, x, env.adjacency(), env.readout());
            // Query q_t from the past-actions encoder.
            state = self.encoder.step(&mut tape, &binding, prev_embed, state);
            let query = state.query();
            // Action a_t.
            let valid = mask.valid_mask();
            let step = match rng.as_deref_mut() {
                Some(rng) => self
                    .decoder
                    .decode(&mut tape, &binding, embeddings, query, &valid, rng),
                None => self
                    .decoder
                    .decode_greedy(&mut tape, &binding, embeddings, query, &valid),
            };
            mask.select(step.action, env.cones());
            selected.push(pool[step.action]);
            prev_embed = tape.gather_rows(embeddings, Arc::new(vec![step.action as u32]));
            total_log_prob = Some(match total_log_prob {
                Some(acc) => tape.add(acc, step.action_log_prob),
                None => step.action_log_prob,
            });
        }
        let total_log_prob = total_log_prob.expect("pool is never empty when rolling out");
        Rollout {
            selected,
            tape,
            binding,
            total_log_prob,
        }
    }

    /// Inference-only trajectory: op-for-op the same forward pass as
    /// [`RlCcd::rollout`] / [`RlCcd::rollout_greedy`], but on a
    /// [`NoGradTape`] — no gradient bookkeeping — and with the tape
    /// truncated back to the parameter leaves after every step, so memory
    /// stays bounded by one step's intermediates instead of growing with
    /// the whole trajectory. With `Some(rng)` it samples (consuming
    /// exactly one draw per step, identical to `rollout`); with `None` it
    /// is greedy. Unlike the training rollout, an empty endpoint pool
    /// yields an empty selection instead of panicking, so a server can
    /// answer queries on already-clean designs.
    pub(crate) fn infer_trajectory(
        &self,
        params: &ParamSet,
        env: &CcdEnv,
        rng: Option<&mut StdRng>,
    ) -> Vec<EndpointId> {
        let mut tape = NoGradTape::new();
        let binding = params.bind(&mut tape);
        let base = tape.len();
        self.infer_trajectory_in(&mut tape, &binding, base, env, rng)
    }

    /// The body of [`RlCcd::infer_trajectory`] against a tape whose first
    /// `base` entries are the bound parameter leaves. The tape is truncated
    /// back to `base` after every step (and left at `base`-plus-carries on
    /// return), so one bound tape can serve many requests — the per-request
    /// parameter re-bind (one clone per tensor) disappears. Used by
    /// [`crate::infer::InferSession`].
    pub(crate) fn infer_trajectory_in(
        &self,
        tape: &mut NoGradTape,
        binding: &ParamBinding,
        base: usize,
        env: &CcdEnv,
        rng: Option<&mut StdRng>,
    ) -> Vec<EndpointId> {
        self.infer_trajectory_logged_in(tape, binding, base, env, rng)
            .0
    }

    /// Like [`RlCcd::infer_trajectory_in`] but also returns the
    /// log-probability the policy assigned to each selected action, in
    /// selection order. Reading a value off the tape records nothing, so
    /// this is op-for-op identical to the unlogged path — the parity tests
    /// in [`crate::infer`] pin that. The log-probs are the *behavior*
    /// policy's: experience logging captures them at serve time so offline
    /// retraining can importance-weight against a newer policy.
    pub(crate) fn infer_trajectory_logged_in(
        &self,
        tape: &mut NoGradTape,
        binding: &ParamBinding,
        base: usize,
        env: &CcdEnv,
        mut rng: Option<&mut StdRng>,
    ) -> (Vec<EndpointId>, Vec<f32>) {
        let pool = env.pool();
        let mut mask = SelectionMask::new(pool.len(), self.config.rho);
        let (mut state, mut prev_embed) = self.encoder.start(tape);
        let mut selected = Vec::new();
        let mut log_probs = Vec::new();
        while mask.any_valid() {
            let flag_cells: Vec<CellId> = mask
                .flagged()
                .iter()
                .map(|&i| env.pool_cells()[i])
                .collect();
            let x = tape.leaf(env.features().with_flags(&flag_cells));
            let embeddings = self
                .gnn
                .forward(tape, binding, x, env.adjacency(), env.readout());
            state = self.encoder.step(tape, binding, prev_embed, state);
            let query = state.query();
            let valid = mask.valid_mask();
            let step = match rng.as_deref_mut() {
                Some(rng) => self
                    .decoder
                    .decode(tape, binding, embeddings, query, &valid, rng),
                None => self
                    .decoder
                    .decode_greedy(tape, binding, embeddings, query, &valid),
            };
            mask.select(step.action, env.cones());
            selected.push(pool[step.action]);
            // Capture the behavior log-prob before the truncate below drops
            // the step's intermediates.
            log_probs.push(tape.value(step.action_log_prob).data()[0]);
            let embed_row = tape.gather_rows(embeddings, Arc::new(vec![step.action as u32]));
            // Only the previous-action embedding and the encoder state
            // survive into the next step: clone their values out, drop the
            // step's intermediates, and re-record them as fresh leaves.
            let carry_embed = tape.value(embed_row).clone();
            let carry_state = match state {
                EncoderState::Lstm(s) => {
                    CarriedState::Lstm(tape.value(s.h).clone(), tape.value(s.c).clone())
                }
                EncoderState::Gru(h) => CarriedState::Gru(tape.value(h).clone()),
                EncoderState::None(z) => CarriedState::None(tape.value(z).clone()),
            };
            tape.truncate(base);
            prev_embed = tape.leaf(carry_embed);
            state = match carry_state {
                CarriedState::Lstm(h, c) => EncoderState::Lstm(LstmState {
                    h: tape.leaf(h),
                    c: tape.leaf(c),
                }),
                CarriedState::Gru(h) => EncoderState::Gru(tape.leaf(h)),
                CarriedState::None(z) => EncoderState::None(tape.leaf(z)),
            };
        }
        (selected, log_probs)
    }

    /// Teacher-forced replay of a logged action sequence on a gradient
    /// tape: the same forward pass as [`RlCcd::rollout`], but at every step
    /// the action is the next endpoint from `actions` instead of a sample.
    /// Returns a [`Rollout`] whose `total_log_prob` is Σ_t log π_θ(a_t|s_t)
    /// under the *current* parameters — the quantity offline retraining
    /// differentiates and importance-weights against the logged behavior
    /// log-probs.
    ///
    /// Actions are global [`EndpointId`]s (as emitted by serve replies and
    /// experience records); they are mapped back to pool-local indices
    /// through `env.pool()`. A record that disagrees with the rebuilt
    /// environment — an endpoint not in the pool, or one the cone-overlap
    /// mask had already pruned at that step — yields an error instead of a
    /// bogus gradient.
    pub fn replay_trajectory(
        &self,
        params: &ParamSet,
        env: &CcdEnv,
        actions: &[EndpointId],
    ) -> Result<Rollout, ReplayError> {
        if actions.is_empty() {
            return Err(ReplayError::Empty);
        }
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let pool = env.pool();
        let mut mask = SelectionMask::new(pool.len(), self.config.rho);
        let (mut state, mut prev_embed) = self.encoder.start(&mut tape);
        let mut selected = Vec::new();
        let mut total_log_prob: Option<Var> = None;
        for &endpoint in actions {
            let local = pool
                .iter()
                .position(|&e| e == endpoint)
                .ok_or(ReplayError::UnknownEndpoint(endpoint))?;
            if !mask.valid_mask()[local] {
                return Err(ReplayError::MaskedAction(endpoint));
            }
            let flag_cells: Vec<CellId> = mask
                .flagged()
                .iter()
                .map(|&i| env.pool_cells()[i])
                .collect();
            let x = tape.leaf(env.features().with_flags(&flag_cells));
            let embeddings =
                self.gnn
                    .forward(&mut tape, &binding, x, env.adjacency(), env.readout());
            state = self.encoder.step(&mut tape, &binding, prev_embed, state);
            let query = state.query();
            let valid = mask.valid_mask();
            let step = self
                .decoder
                .decode_forced(&mut tape, &binding, embeddings, query, &valid, local);
            mask.select(step.action, env.cones());
            selected.push(pool[step.action]);
            prev_embed = tape.gather_rows(embeddings, Arc::new(vec![step.action as u32]));
            total_log_prob = Some(match total_log_prob {
                Some(acc) => tape.add(acc, step.action_log_prob),
                None => step.action_log_prob,
            });
        }
        let total_log_prob = total_log_prob.expect("actions checked non-empty above");
        Ok(Rollout {
            selected,
            tape,
            binding,
            total_log_prob,
        })
    }
}

/// Why a logged trajectory could not be replayed against a rebuilt
/// environment (see [`RlCcd::replay_trajectory`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The record carried no actions; there is nothing to learn from.
    Empty,
    /// A logged endpoint is not in the environment's violating-endpoint
    /// pool — the record was produced against a different design.
    UnknownEndpoint(EndpointId),
    /// A logged endpoint was valid when served but is pruned by the
    /// cone-overlap mask at this step — the selection order is corrupt.
    MaskedAction(EndpointId),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "empty action sequence"),
            ReplayError::UnknownEndpoint(e) => {
                write!(f, "endpoint {e:?} is not in the environment pool")
            }
            ReplayError::MaskedAction(e) => {
                write!(f, "endpoint {e:?} is masked at its replay step")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Encoder-state tensors carried across a [`NoGradTape::truncate`].
enum CarriedState {
    Lstm(Tensor, Tensor),
    Gru(Tensor),
    None(Tensor),
}

/// One finished selection trajectory, with its tape kept alive so the
/// trainer can weight the log-probabilities by the achieved reward and
/// backpropagate (Eq. 7).
#[derive(Debug)]
pub struct Rollout {
    /// Selected endpoints, in selection order.
    pub selected: Vec<EndpointId>,
    /// The autodiff tape of the whole trajectory.
    pub tape: Tape,
    /// Parameter handles on that tape.
    pub binding: ParamBinding,
    /// Σ_t log π(a_t | s_t) as a differentiable scalar.
    pub total_log_prob: Var,
}

impl Rollout {
    /// Number of selection steps taken.
    pub fn steps(&self) -> usize {
        self.selected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("agent", 600, TechNode::N7, 33));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn rollout_selects_until_pool_exhausted() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng = StdRng::seed_from_u64(1);
        let ro = model.rollout(&params, &env, &mut rng);
        assert!(ro.steps() >= 1);
        assert!(ro.steps() <= env.pool().len());
        // Selected endpoints are unique and from the pool.
        let mut uniq: Vec<_> = ro.selected.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ro.selected.len());
        for e in &ro.selected {
            assert!(env.pool().contains(e));
        }
        // The log-probability is a finite negative scalar.
        let lp = ro.tape.value(ro.total_log_prob).data()[0];
        assert!(lp.is_finite() && lp <= 0.0, "log prob {lp}");
    }

    #[test]
    fn rollouts_are_seed_deterministic() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let a = model.rollout(&params, &env, &mut StdRng::seed_from_u64(9));
        let b = model.rollout(&params, &env, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.selected, b.selected);
        let c = model.rollout(&params, &env, &mut StdRng::seed_from_u64(10));
        // Different seeds usually explore differently (not guaranteed, but
        // with dozens of endpoints a collision is vanishingly unlikely).
        assert!(
            a.selected != c.selected || a.steps() <= 1,
            "different seeds gave identical trajectories"
        );
    }

    #[test]
    fn replay_reproduces_the_sampled_log_prob_bit_for_bit() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng = StdRng::seed_from_u64(5);
        let ro = model.rollout(&params, &env, &mut rng);
        let replayed = model
            .replay_trajectory(&params, &env, &ro.selected)
            .expect("a fresh rollout must replay");
        assert_eq!(replayed.selected, ro.selected);
        let lp = ro.tape.value(ro.total_log_prob).data()[0];
        let lp_replay = replayed.tape.value(replayed.total_log_prob).data()[0];
        assert_eq!(lp.to_bits(), lp_replay.to_bits());
        // And the replay tape is differentiable all the way down.
        let mut grads = replayed.tape.backward(replayed.total_log_prob);
        let any = replayed
            .binding
            .iter()
            .any(|(_, var)| grads.take(var).map(|g| g.norm() > 0.0).unwrap_or(false));
        assert!(any, "no gradient flowed through the replay");
    }

    #[test]
    fn replay_rejects_corrupt_action_sequences() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        assert_eq!(
            model.replay_trajectory(&params, &env, &[]).unwrap_err(),
            ReplayError::Empty
        );
        let mut rng = StdRng::seed_from_u64(6);
        let ro = model.rollout(&params, &env, &mut rng);
        // An endpoint from outside the pool.
        let bogus = EndpointId::new(u32::MAX as usize);
        assert_eq!(
            model
                .replay_trajectory(&params, &env, &[bogus])
                .unwrap_err(),
            ReplayError::UnknownEndpoint(bogus)
        );
        // Selecting the same endpoint twice: masked at the second step.
        let first = ro.selected[0];
        assert_eq!(
            model
                .replay_trajectory(&params, &env, &[first, first])
                .unwrap_err(),
            ReplayError::MaskedAction(first)
        );
    }

    #[test]
    fn gradient_flows_from_log_prob_to_all_components() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng = StdRng::seed_from_u64(2);
        let ro = model.rollout(&params, &env, &mut rng);
        let mut grads = ro.tape.backward(ro.total_log_prob);
        let mut got_gnn = false;
        let mut got_enc = false;
        let mut got_dec = false;
        for (name, var) in ro.binding.iter() {
            if grads.take(var).map(|g| g.norm() > 0.0).unwrap_or(false) {
                got_gnn |= name.starts_with("gnn.");
                got_enc |= name.starts_with("enc.");
                got_dec |= name.starts_with("dec.");
            }
        }
        assert!(got_gnn, "no gradient reached EP-GNN");
        assert!(got_dec, "no gradient reached the decoder");
        // Encoder gradients require ≥2 steps (the first query ignores
        // actions); designs from this generator always violate enough.
        if ro.steps() >= 2 {
            assert!(got_enc, "no gradient reached the encoder");
        }
    }
}
