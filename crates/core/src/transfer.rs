//! Transfer learning (paper §IV-B): reuse a pre-trained EP-GNN on unseen
//! designs with a fresh encoder/decoder.
//!
//! The paper's rationale: GNN netlist encoding should be universal (at least
//! within a technology), while the encoder/decoder are design-specific
//! (trajectory lengths and endpoint pools differ), so only the `gnn.*`
//! parameters carry over.

use crate::agent::RlCcd;
use crate::config::RlConfig;
use crate::env::CcdEnv;
use crate::epgnn::GNN_PREFIX;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{LoadParamsError, ParamSet};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Saves trained parameters to a text file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_params(params: &ParamSet, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = File::create(path)?;
    params.save(BufWriter::new(file))
}

/// Loads parameters previously written by [`save_params`].
///
/// # Errors
/// Returns an error on I/O failure or malformed content.
pub fn load_params(path: impl AsRef<Path>) -> Result<ParamSet, Box<dyn std::error::Error>> {
    let file = File::open(path)?;
    ParamSet::load(BufReader::new(file)).map_err(|e: LoadParamsError| e.into())
}

/// Builds a fresh model whose EP-GNN weights come from `pretrained` while
/// the encoder/decoder start from scratch. Returns the model and its
/// parameter set; pass the set as `initial` to [`crate::reinforce::try_train`].
///
/// The returned count is the number of adopted tensors (useful to verify the
/// donor really contained a trained EP-GNN).
pub fn with_pretrained_gnn(config: RlConfig, pretrained: &ParamSet) -> (RlCcd, ParamSet, usize) {
    let (model, mut params) = RlCcd::init(config);
    let adopted = params.adopt_prefixed(pretrained, GNN_PREFIX);
    (model, params, adopted)
}

/// Zero-shot transfer: builds a model whose EP-GNN comes from
/// `pretrained` and immediately greedy-selects on `env` through the
/// inference-only fast path ([`crate::infer::select_endpoints`]) — no
/// tape, no Adam state, no training. Returns the selection and the number
/// of adopted tensors.
pub fn zero_shot_selection(
    config: RlConfig,
    pretrained: &ParamSet,
    env: &CcdEnv,
) -> (Vec<EndpointId>, usize) {
    let (model, params, adopted) = with_pretrained_gnn(config, pretrained);
    (
        crate::infer::select_endpoints(&model, &params, env),
        adopted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretrained_gnn_carries_over_and_rest_is_fresh() {
        let cfg = RlConfig::fast();
        let (_, mut donor) = RlCcd::init(cfg.clone());
        // Perturb the donor's GNN weights so adoption is observable.
        let names: Vec<String> = donor
            .iter()
            .filter(|(n, _)| n.starts_with(GNN_PREFIX))
            .map(|(n, _)| n.to_string())
            .collect();
        assert!(!names.is_empty());
        for n in &names {
            donor.get_mut(n).expect("exists").data_mut()[0] = 42.0;
        }
        let (_, params, adopted) = with_pretrained_gnn(cfg.clone(), &donor);
        assert_eq!(adopted, names.len());
        for n in &names {
            assert_eq!(params.get(n).expect("adopted").data()[0], 42.0);
        }
        // Encoder/decoder parameters equal a fresh init (same seed).
        let (_, fresh) = RlCcd::init(cfg);
        for (name, t) in fresh.iter() {
            if !name.starts_with(GNN_PREFIX) {
                assert_eq!(params.get(name), Some(t), "{name} should be fresh");
            }
        }
    }

    #[test]
    fn params_roundtrip_through_disk() {
        let cfg = RlConfig::fast();
        let (_, params) = RlCcd::init(cfg);
        let dir = std::env::temp_dir().join("rl_ccd_transfer_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("params.txt");
        save_params(&params, &path).expect("save");
        let loaded = load_params(&path).expect("load");
        assert_eq!(params, loaded);
        std::fs::remove_file(&path).ok();
    }
}
