//! REINFORCE training (paper Eq. 7, Algorithm 1) on a fault-tolerant
//! runtime.
//!
//! Each iteration collects a mini-batch of parallel trajectories, scores
//! every one with a full flow run (terminal reward = final TNS), converts
//! rewards to standardized advantages (a batch-mean baseline — plain
//! REINFORCE is too noisy without one), and ascends
//! `Σ advantage · Σ_t log π(a_t|s_t)` with Adam. Training stops when the
//! best reward has not improved for `patience` consecutive iterations
//! (paper: 3) or the iteration cap is hit.
//!
//! # Fault tolerance
//!
//! The paper trains on an 8-worker CPU farm where long runs must survive
//! worker failures. Three layers make that true here:
//!
//! 1. **Rollout supervision** — workers run under
//!    [`run_rollouts_supervised`](crate::parallel::run_rollouts_supervised);
//!    a panicked or non-finite rollout is
//!    quarantined with a [`RolloutFault`] record and the iteration
//!    proceeds if at least [`RlConfig::effective_quorum`] workers survive,
//!    aborting with [`TrainError::QuorumLost`] otherwise.
//! 2. **Update guards + soft restart** — the merged gradient and the
//!    post-step parameters/optimizer moments are validated for
//!    finiteness; a divergent step is rolled back to the pre-step
//!    snapshot (kept in memory) and the learning rate is decayed, so one
//!    bad batch can never destroy a run.
//! 3. **Atomic resumable checkpoints** — every `checkpoint_every`
//!    iterations the full [`TrainingState`] is committed via temp file +
//!    fsync + rename with a checksum manifest; [`resume_train_with`] continues
//!    a killed run bit-for-bit (rollout seeds are a pure function of the
//!    config seed and the iteration index, so nothing is lost with the
//!    process).

use crate::agent::RlCcd;
use crate::checkpoint::{
    load_training_state, save_training_state, training_state_exists, write_torn_training_state,
    CheckpointError, TrainingState,
};
use crate::config::RlConfig;
use crate::env::CcdEnv;
use crate::executor::{LocalExecutor, RolloutExecutor, RolloutRequest};
use crate::fault::{FaultKind, FaultPlan, RolloutFault};
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{Adam, GradSet, ParamSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Per-iteration training telemetry.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean batch reward (TNS ps) over surviving rollouts
    /// (`-inf` when every rollout of the iteration was quarantined).
    pub mean_reward: f64,
    /// Best reward within this batch (`-inf` on an all-quarantined batch).
    pub batch_best: f64,
    /// Reward of the deterministic greedy trajectory *after* this
    /// iteration's update — the policy-quality curve of Fig. 6.
    pub greedy_reward: f64,
    /// Best reward seen so far across training.
    pub best_so_far: f64,
    /// Trajectory lengths of surviving rollouts.
    pub steps: Vec<usize>,
    /// Rewards of surviving rollouts, in worker order.
    pub rewards: Vec<f64>,
}

/// Everything a finished training run produces.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Final parameters.
    pub params: ParamSet,
    /// The best flow result observed.
    pub best_result: FlowResult,
    /// The selection that produced it.
    pub best_selection: Vec<EndpointId>,
    /// Telemetry per iteration (the curves of Fig. 6).
    pub history: Vec<IterationStats>,
    /// Every quarantined rollout and guarded update across the run.
    pub faults: Vec<RolloutFault>,
}

/// Typed training failure. `Send + Sync`, so it crosses thread boundaries.
#[derive(Debug)]
pub enum TrainError {
    /// Fewer rollouts than the quorum survived an iteration.
    QuorumLost {
        /// The iteration that lost quorum.
        iteration: usize,
        /// How many rollouts survived.
        survivors: usize,
        /// How many were required.
        quorum: usize,
        /// The faults that destroyed the batch.
        faults: Vec<RolloutFault>,
    },
    /// Checkpoint I/O or validation failed.
    Checkpoint(CheckpointError),
    /// A resumed state was produced under a different master seed, so the
    /// rollout seed stream would diverge from the original run.
    SeedMismatch {
        /// Seed the checkpoint was trained with.
        expected: u64,
        /// Seed the resuming config carries.
        found: u64,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::QuorumLost {
                iteration,
                survivors,
                quorum,
                faults,
            } => write!(
                f,
                "iteration {iteration} lost quorum: {survivors} of {quorum} required rollouts survived ({} faults)",
                faults.len()
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::SeedMismatch { expected, found } => write!(
                f,
                "resume seed mismatch: checkpoint was trained with seed {expected}, config has {found}"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Runtime options of one training run that are not model
/// hyper-parameters: warm-start parameters, checkpoint cadence, and the
/// test-only fault-injection hook.
#[derive(Clone, Debug, Default)]
pub struct TrainSession {
    /// Pre-trained parameters to start from (transfer learning); `None`
    /// trains from scratch.
    pub initial: Option<ParamSet>,
    /// Directory for periodic [`TrainingState`] checkpoints. `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Commit the training state every this many iterations (0 disables
    /// periodic writes even when a directory is set).
    pub checkpoint_every: usize,
    /// Test-only deterministic fault injection; [`FaultPlan::none`] (the
    /// default) injects nothing.
    pub fault_plan: FaultPlan,
}

impl TrainSession {
    /// A session that checkpoints into `dir` every `every` iterations.
    pub fn checkpointed(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            checkpoint_dir: Some(dir.into()),
            checkpoint_every: every,
            ..Self::default()
        }
    }
}

/// The live loop state — exactly what a [`TrainingState`] persists, plus
/// the champion flow result (recomputable from the selection, so it is
/// not checkpointed).
struct LoopState {
    next_iteration: usize,
    params: ParamSet,
    adam: Adam,
    best_reward: f64,
    best_result: FlowResult,
    best_selection: Vec<EndpointId>,
    best_mean: f64,
    stale: usize,
    history: Vec<IterationStats>,
    faults: Vec<RolloutFault>,
}

impl LoopState {
    fn snapshot(&self, next_iteration: usize, config: &RlConfig) -> TrainingState {
        TrainingState {
            next_iteration,
            seed_base: config.seed,
            best_reward: self.best_reward,
            best_mean: self.best_mean,
            stale: self.stale,
            best_selection: self.best_selection.clone(),
            params: self.params.clone(),
            adam: self.adam.clone(),
            history: self.history.clone(),
            faults: self.faults.clone(),
        }
    }
}

/// Trains RL-CCD with full runtime control: warm start, periodic atomic
/// checkpoints, quorum supervision, and (in tests) fault injection.
///
/// # Errors
/// [`TrainError::QuorumLost`] when too few rollouts survive an iteration,
/// [`TrainError::Checkpoint`] when a checkpoint cannot be written.
pub fn try_train(
    env: &CcdEnv,
    config: &RlConfig,
    session: TrainSession,
) -> Result<TrainOutcome, TrainError> {
    try_train_with(env, config, session, &mut LocalExecutor)
}

/// [`try_train`] with an explicit [`RolloutExecutor`]: rollouts run
/// wherever the executor puts them (in-process threads, worker processes
/// over TCP, …) while the trainer stays bit-identical — rollouts are pure
/// functions of `(params, env, seed)` and gradients are reduced in slot
/// order regardless of completion order.
///
/// # Errors
/// Same contract as [`try_train`].
pub fn try_train_with(
    env: &CcdEnv,
    config: &RlConfig,
    session: TrainSession,
    executor: &mut dyn RolloutExecutor,
) -> Result<TrainOutcome, TrainError> {
    let (model, fresh) = RlCcd::init(config.clone());
    let params = session.initial.clone().unwrap_or(fresh);
    // The native flow (empty selection) seeds the champion: the tool's own
    // result is always available, so RL-CCD never reports anything worse.
    let default_flow = env.default_flow();
    let state = LoopState {
        next_iteration: 0,
        params,
        adam: Adam::new(config.learning_rate),
        best_reward: default_flow.final_qor.tns_ps,
        best_result: default_flow,
        best_selection: Vec::new(),
        best_mean: f64::NEG_INFINITY,
        stale: 0,
        history: Vec::new(),
        faults: Vec::new(),
    };
    run_training(env, config, &model, state, &session, executor)
}

/// Resumes a run from the [`TrainingState`] committed in `dir` and
/// continues training (checkpointing back into the same directory), with
/// an explicit [`RolloutExecutor`]. Because per-worker rollout seeds are
/// pure functions of the config seed and the absolute iteration index, a
/// kill at any iteration followed by resume — with any executor and any
/// worker count — reproduces the uninterrupted run bit-for-bit.
///
/// # Errors
/// [`TrainError::Checkpoint`] when the state fails to load or validate
/// (including champion endpoints out of range for this design), and
/// [`TrainError::SeedMismatch`] when `config.seed` differs from the seed
/// the checkpoint was produced under.
pub fn resume_train_with(
    env: &CcdEnv,
    config: &RlConfig,
    dir: &Path,
    mut session: TrainSession,
    executor: &mut dyn RolloutExecutor,
) -> Result<TrainOutcome, TrainError> {
    let state = load_training_state(dir)?;
    if state.seed_base != config.seed {
        return Err(TrainError::SeedMismatch {
            expected: state.seed_base,
            found: config.seed,
        });
    }
    let endpoint_count = env.design().netlist.endpoints().len();
    if let Some(bad) = state
        .best_selection
        .iter()
        .find(|e| e.index() >= endpoint_count)
    {
        return Err(TrainError::Checkpoint(CheckpointError::OutOfRange {
            index: bad.index(),
            max: endpoint_count,
        }));
    }
    let (model, _) = RlCcd::init(config.clone());
    // The champion flow result is deterministic in the selection, so it is
    // recomputed rather than stored (an empty selection is the native flow).
    let best_result = env.evaluate(&state.best_selection);
    session.checkpoint_dir = Some(dir.to_path_buf());
    let state = LoopState {
        next_iteration: state.next_iteration,
        params: state.params,
        adam: state.adam,
        best_reward: state.best_reward,
        best_result,
        best_selection: state.best_selection,
        best_mean: state.best_mean,
        stale: state.stale,
        history: state.history,
        faults: state.faults,
    };
    run_training(env, config, &model, state, &session, executor)
}

/// Resumes from `dir` when it holds a committed state, otherwise starts a
/// fresh run checkpointing into `dir`, with an explicit
/// [`RolloutExecutor`] (this is what `Session::train` uses): re-running
/// an interrupted job just picks up where it stopped.
///
/// # Errors
/// Propagates [`TrainError`] from the underlying run.
pub fn train_or_resume_with(
    env: &CcdEnv,
    config: &RlConfig,
    dir: &Path,
    mut session: TrainSession,
    executor: &mut dyn RolloutExecutor,
) -> Result<TrainOutcome, TrainError> {
    if training_state_exists(dir) {
        resume_train_with(env, config, dir, session, executor)
    } else {
        session.checkpoint_dir = Some(dir.to_path_buf());
        try_train_with(env, config, session, executor)
    }
}

/// The supervised training loop shared by fresh and resumed runs, and by
/// every executor. Gradient reduction iterates survivors sorted by slot,
/// so the merged update is fixed by seed index — never by the order an
/// executor happened to complete rollouts in.
fn run_training(
    env: &CcdEnv,
    config: &RlConfig,
    model: &RlCcd,
    mut s: LoopState,
    session: &TrainSession,
    executor: &mut dyn RolloutExecutor,
) -> Result<TrainOutcome, TrainError> {
    let quorum = config.effective_quorum();
    let mut train_span = rl_ccd_obs::span!(
        "train.run",
        start_iteration = s.next_iteration,
        max_iterations = config.max_iterations,
        workers = config.workers,
        seed = config.seed,
    );
    for iteration in s.next_iteration..config.max_iterations {
        // A resumed state may already be exhausted (the original run
        // stopped right after this checkpoint was written).
        if s.stale >= config.patience {
            break;
        }
        let mut iter_span = rl_ccd_obs::span!("train.iteration", iteration = iteration);
        let pairs: Vec<(usize, u64)> = (0..config.workers.max(1))
            .map(|w| {
                let seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((iteration * 1009 + w) as u64);
                (w, seed)
            })
            .collect();
        let mut batch = executor.run_batch(&RolloutRequest {
            iteration,
            pairs: &pairs,
            params: &s.params,
            model,
            env,
            config,
            plan: &session.fault_plan,
        });
        // The reduction-order pin: whatever order the executor returned,
        // gradients merge in slot (= seed) order.
        batch.rollouts.sort_by_key(|r| r.slot);
        s.faults.extend(batch.faults.iter().cloned());
        let survivors = batch.rollouts;
        if survivors.len() < quorum {
            // Abort cleanly, leaving a resumable checkpoint of the state
            // *before* this iteration so a fixed environment can continue.
            if session.checkpoint_every > 0 {
                if let Some(dir) = &session.checkpoint_dir {
                    save_training_state(&s.snapshot(iteration, config), dir)?;
                }
            }
            return Err(TrainError::QuorumLost {
                iteration,
                survivors: survivors.len(),
                quorum,
                faults: batch.faults,
            });
        }

        let mut improved = false;
        let (mean, batch_best, steps, rewards) = if survivors.is_empty() {
            // Degenerate batch (possible only with the quorum explicitly
            // disabled): no rewards exist, so the mean/variance of the
            // empty set is undefined — record the skip instead of letting
            // a 0/0 NaN poison the run.
            s.faults.push(RolloutFault {
                iteration,
                worker: 0,
                seed: 0,
                kind: FaultKind::EmptyBatch,
                detail: "all rollouts quarantined; update skipped".into(),
            });
            (f64::NEG_INFINITY, f64::NEG_INFINITY, Vec::new(), Vec::new())
        } else {
            let rewards: Vec<f64> = survivors.iter().map(|r| r.reward).collect();
            let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
            let var =
                rewards.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rewards.len() as f64;
            let std = var.sqrt();
            let batch_best = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);

            // Track the champion selection. Executed rollouts carry only
            // the reward (flow results do not cross process boundaries);
            // the champion's FlowResult is recomputed once per improving
            // iteration — evaluate is deterministic in the selection, so
            // this is the exact result the rollout's worker saw.
            let mut champion: Option<&crate::executor::ExecutedRollout> = None;
            for r in &survivors {
                if r.reward > s.best_reward {
                    s.best_reward = r.reward;
                    champion = Some(r);
                    improved = true;
                }
            }
            if let Some(r) = champion {
                s.best_selection = r.selected.clone();
                s.best_result = env.evaluate(&s.best_selection);
            }

            // Policy-gradient update (skip degenerate batches). Workers
            // already computed ∇Σlogπ; REINFORCE's gradient is that,
            // scaled by −advantage (Eq. 7 with a standardized baseline).
            if std > 1e-9 {
                let mut grads = GradSet::new();
                for r in survivors.iter() {
                    let advantage = ((r.reward - mean) / std) as f32;
                    let mut local = GradSet::new();
                    local.merge(r.log_prob_grads.clone());
                    local.scale(-advantage);
                    grads.merge(local);
                }
                grads.average();
                rl_ccd_obs::gauge!("train.update.grad_norm", grads.global_norm());
                grads.clip_global_norm(config.grad_clip);
                if !grads.all_finite() {
                    // Per-rollout gradients were finite, so this is an
                    // overflow in merge/clip arithmetic: skip the step.
                    rl_ccd_obs::counter!("train.update.guarded", 1);
                    s.faults.push(RolloutFault {
                        iteration,
                        worker: 0,
                        seed: 0,
                        kind: FaultKind::NonFiniteUpdate,
                        detail: "merged gradient non-finite; step skipped".into(),
                    });
                } else {
                    let last_good = (s.params.clone(), s.adam.clone());
                    s.adam.step(&mut s.params, &grads);
                    if !s.params.all_finite() || !s.adam.state_is_finite() {
                        // Soft restart: restore the last good snapshot and
                        // decay the LR so a pathological batch cannot
                        // repeatedly diverge the run.
                        s.params = last_good.0;
                        s.adam = last_good.1;
                        s.adam.decay_lr(config.divergence_lr_decay);
                        rl_ccd_obs::counter!("train.update.guarded", 1);
                        s.faults.push(RolloutFault {
                            iteration,
                            worker: 0,
                            seed: 0,
                            kind: FaultKind::NonFiniteUpdate,
                            detail: format!(
                                "post-step state non-finite; restored snapshot, lr -> {}",
                                s.adam.lr
                            ),
                        });
                    }
                }
            }
            let steps = survivors.iter().map(|r| r.steps).collect();
            (mean, batch_best, steps, rewards)
        };

        // Greedy policy evaluation after the update (the learning curve).
        let (greedy, greedy_result) = {
            let _span = rl_ccd_obs::span!("train.greedy_eval", iteration = iteration);
            let greedy = crate::infer::select_endpoints(model, &s.params, env);
            let greedy_result = env.evaluate(&greedy);
            (greedy, greedy_result)
        };
        let greedy_reward = greedy_result.final_qor.tns_ps;
        if greedy_reward > s.best_reward {
            s.best_reward = greedy_reward;
            s.best_result = greedy_result;
            s.best_selection = greedy.clone();
            improved = true;
        }

        iter_span.record("mean_reward", mean);
        iter_span.record("batch_best", batch_best);
        iter_span.record("greedy_reward", greedy_reward);
        iter_span.record("best_so_far", s.best_reward);
        rl_ccd_obs::gauge!("train.iteration.mean_reward", mean);
        rl_ccd_obs::gauge!("train.iteration.greedy_reward", greedy_reward);
        rl_ccd_obs::gauge!("train.iteration.best_so_far", s.best_reward);
        rl_ccd_obs::counter!("train.iterations", 1);
        s.history.push(IterationStats {
            iteration,
            mean_reward: mean,
            batch_best,
            greedy_reward,
            best_so_far: s.best_reward,
            steps,
            rewards,
        });

        // Progress = a new champion *or* a better batch mean (the policy is
        // still learning even when the single best trajectory stands).
        if mean > s.best_mean + 1e-9 {
            s.best_mean = mean;
            improved = true;
        }
        s.stale = if improved { 0 } else { s.stale + 1 };

        // Periodic atomic checkpoint at the iteration boundary.
        if session.checkpoint_every > 0 && (iteration + 1) % session.checkpoint_every == 0 {
            if let Some(dir) = &session.checkpoint_dir {
                let snapshot = s.snapshot(iteration + 1, config);
                if session.fault_plan.tears_checkpoint_after(iteration) {
                    write_torn_training_state(&snapshot, dir)?;
                } else {
                    save_training_state(&snapshot, dir)?;
                }
            }
        }

        if s.stale >= config.patience {
            break;
        }
    }

    train_span.record("iterations", s.history.len());
    train_span.record("best_reward", s.best_reward);
    train_span.record("faults", s.faults.len());
    Ok(TrainOutcome {
        params: s.params,
        best_result: s.best_result,
        best_selection: s.best_selection,
        history: s.history,
        faults: s.faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("train", 500, TechNode::N7, 77));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn training_runs_and_tracks_best() {
        let env = env();
        let cfg = RlConfig::fast();
        let out = try_train(&env, &cfg, TrainSession::default()).unwrap();
        assert!(!out.history.is_empty());
        assert!(out.history.len() <= cfg.max_iterations);
        assert!(out.best_result.final_qor.tns_ps <= 0.0);
        assert!(out.faults.is_empty(), "no faults without injection");
        // best_so_far is monotone non-decreasing.
        for w in out.history.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far);
        }
        // Every iteration kept all workers (nothing quarantined).
        for h in &out.history {
            assert_eq!(h.rewards.len(), cfg.workers);
            assert!(h.rewards.iter().all(|r| r.is_finite()));
        }
        // Parameters moved (training actually updated something).
        let (_, fresh) = RlCcd::init(cfg);
        let moved = fresh
            .iter()
            .any(|(name, t)| out.params.get(name) != Some(t));
        assert!(moved, "parameters never changed");
    }

    #[test]
    fn early_stop_respects_patience() {
        let env = env();
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 12;
        cfg.patience = 1;
        let out = try_train(&env, &cfg, TrainSession::default()).unwrap();
        // With patience 1 the loop stops as soon as one iteration fails to
        // improve, so it must terminate well before the cap in practice;
        // at minimum it cannot exceed the cap.
        assert!(out.history.len() <= 12);
    }

    #[test]
    fn training_is_deterministic() {
        let env = env();
        let cfg = RlConfig::fast();
        let a = try_train(&env, &cfg, TrainSession::default()).unwrap();
        let b = try_train(&env, &cfg, TrainSession::default()).unwrap();
        assert_eq!(a.best_selection, b.best_selection);
        assert_eq!(
            a.best_result.final_qor.tns_ps,
            b.best_result.final_qor.tns_ps
        );
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    fn all_faulted_batch_without_quorum_is_skipped_not_nan() {
        let env = env();
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 2;
        cfg.patience = 2;
        cfg.quorum = Some(0); // disable the quorum to reach the degenerate path
        let plan = FaultPlan::none()
            .with_worker_panic(0, 0)
            .with_worker_panic(0, 1);
        let out = try_train(
            &env,
            &cfg,
            TrainSession {
                fault_plan: plan,
                ..TrainSession::default()
            },
        )
        .expect("quorum disabled: must complete");
        // Iteration 0 is a logged no-op: -inf sentinels, no NaN anywhere.
        assert_eq!(out.history[0].mean_reward, f64::NEG_INFINITY);
        assert!(out.history[0].rewards.is_empty());
        assert!(out.history.iter().all(|h| !h.mean_reward.is_nan()));
        assert!(out
            .faults
            .iter()
            .any(|f| f.kind == FaultKind::EmptyBatch && f.iteration == 0));
        assert!(out.params.all_finite());
    }

    #[test]
    fn quorum_loss_is_a_typed_error() {
        let env = env();
        let mut cfg = RlConfig::fast(); // 2 workers -> quorum 1
        cfg.max_iterations = 2;
        let plan = FaultPlan::none()
            .with_worker_panic(0, 0)
            .with_nan_reward(0, 1);
        let err = try_train(
            &env,
            &cfg,
            TrainSession {
                fault_plan: plan,
                ..TrainSession::default()
            },
        )
        .expect_err("all workers faulted: quorum must be lost");
        match err {
            TrainError::QuorumLost {
                iteration,
                survivors,
                quorum,
                faults,
            } => {
                assert_eq!((iteration, survivors, quorum), (0, 0, 1));
                assert_eq!(faults.len(), 2);
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
