//! REINFORCE training (paper Eq. 7, Algorithm 1).
//!
//! Each iteration collects a mini-batch of parallel trajectories, scores
//! every one with a full flow run (terminal reward = final TNS), converts
//! rewards to standardized advantages (a batch-mean baseline — plain
//! REINFORCE is too noisy without one), and ascends
//! `Σ advantage · Σ_t log π(a_t|s_t)` with Adam. Training stops when the
//! best reward has not improved for `patience` consecutive iterations
//! (paper: 3) or the iteration cap is hit.

use crate::agent::RlCcd;
use crate::config::RlConfig;
use crate::env::CcdEnv;
use crate::parallel::{run_rollouts, ScoredRollout};
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{Adam, GradSet, ParamSet};

/// Per-iteration training telemetry.
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Mean batch reward (TNS ps).
    pub mean_reward: f64,
    /// Best reward within this batch.
    pub batch_best: f64,
    /// Reward of the deterministic greedy trajectory *after* this
    /// iteration's update — the policy-quality curve of Fig. 6.
    pub greedy_reward: f64,
    /// Best reward seen so far across training.
    pub best_so_far: f64,
    /// Trajectory lengths in the batch.
    pub steps: Vec<usize>,
}

/// Everything a finished training run produces.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    /// Final parameters.
    pub params: ParamSet,
    /// The best flow result observed.
    pub best_result: FlowResult,
    /// The selection that produced it.
    pub best_selection: Vec<EndpointId>,
    /// Telemetry per iteration (the curves of Fig. 6).
    pub history: Vec<IterationStats>,
}

/// Trains RL-CCD on one environment.
///
/// `initial` lets callers inject pre-trained parameters (transfer
/// learning); pass `None` to train from scratch (Table II setting).
pub fn train(env: &CcdEnv, config: &RlConfig, initial: Option<ParamSet>) -> TrainOutcome {
    let (model, fresh) = RlCcd::init(config.clone());
    let mut params = initial.unwrap_or(fresh);
    let mut adam = Adam::new(config.learning_rate);
    // The native flow (empty selection) seeds the champion: the tool's own
    // result is always available, so RL-CCD never reports anything worse.
    let default_flow = env.default_flow();
    let mut best_reward = default_flow.final_qor.tns_ps;
    let mut best_result: Option<FlowResult> = Some(default_flow);
    let mut best_selection = Vec::new();
    let mut best_mean = f64::NEG_INFINITY;
    let mut stale = 0usize;
    let mut history = Vec::new();

    for iteration in 0..config.max_iterations {
        let seeds: Vec<u64> = (0..config.workers.max(1))
            .map(|w| {
                config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((iteration * 1009 + w) as u64)
            })
            .collect();
        let scored = run_rollouts(&model, &params, env, &seeds);
        let rewards: Vec<f64> = scored.iter().map(ScoredRollout::reward).collect();
        let mean = rewards.iter().sum::<f64>() / rewards.len() as f64;
        let var = rewards.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / rewards.len() as f64;
        let std = var.sqrt();
        let batch_best = rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Track the champion selection.
        let mut improved = false;
        for s in &scored {
            if s.reward() > best_reward {
                best_reward = s.reward();
                best_result = Some(s.result.clone());
                best_selection = s.selected.clone();
                improved = true;
            }
        }

        // Policy-gradient update (skip degenerate batches). Workers already
        // computed ∇Σlogπ; REINFORCE's gradient is that, scaled by
        // −advantage (Eq. 7 with a standardized baseline).
        if std > 1e-9 {
            let mut grads = GradSet::new();
            for s in scored.iter() {
                let advantage = ((s.reward() - mean) / std) as f32;
                let mut local = GradSet::new();
                local.merge(s.log_prob_grads.clone());
                local.scale(-advantage);
                grads.merge(local);
            }
            grads.average();
            grads.clip_global_norm(config.grad_clip);
            adam.step(&mut params, &grads);
        }

        // Greedy policy evaluation after the update (the learning curve).
        let greedy = model.rollout_greedy(&params, env);
        let greedy_result = env.evaluate(&greedy.selected);
        let greedy_reward = greedy_result.final_qor.tns_ps;
        if greedy_reward > best_reward {
            best_reward = greedy_reward;
            best_result = Some(greedy_result);
            best_selection = greedy.selected.clone();
            improved = true;
        }

        history.push(IterationStats {
            iteration,
            mean_reward: mean,
            batch_best,
            greedy_reward,
            best_so_far: best_reward,
            steps: scored.iter().map(|s| s.steps).collect(),
        });

        // Progress = a new champion *or* a better batch mean (the policy is
        // still learning even when the single best trajectory stands).
        if mean > best_mean + 1e-9 {
            best_mean = mean;
            improved = true;
        }
        stale = if improved { 0 } else { stale + 1 };
        if stale >= config.patience {
            break;
        }
    }

    TrainOutcome {
        params,
        best_result: best_result.expect("champion seeded with the default flow"),
        best_selection,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("train", 500, TechNode::N7, 77));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn training_runs_and_tracks_best() {
        let env = env();
        let cfg = RlConfig::fast();
        let out = train(&env, &cfg, None);
        assert!(!out.history.is_empty());
        assert!(out.history.len() <= cfg.max_iterations);
        assert!(out.best_result.final_qor.tns_ps <= 0.0);
        // best_so_far is monotone non-decreasing.
        for w in out.history.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far);
        }
        // Parameters moved (training actually updated something).
        let (_, fresh) = RlCcd::init(cfg);
        let moved = fresh
            .iter()
            .any(|(name, t)| out.params.get(name) != Some(t));
        assert!(moved, "parameters never changed");
    }

    #[test]
    fn early_stop_respects_patience() {
        let env = env();
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 12;
        cfg.patience = 1;
        let out = train(&env, &cfg, None);
        // With patience 1 the loop stops as soon as one iteration fails to
        // improve, so it must terminate well before the cap in practice;
        // at minimum it cannot exceed the cap.
        assert!(out.history.len() <= 12);
    }

    #[test]
    fn training_is_deterministic() {
        let env = env();
        let cfg = RlConfig::fast();
        let a = train(&env, &cfg, None);
        let b = train(&env, &cfg, None);
        assert_eq!(a.best_selection, b.best_selection);
        assert_eq!(
            a.best_result.final_qor.tns_ps,
            b.best_result.final_qor.tns_ps
        );
        assert_eq!(a.history.len(), b.history.len());
    }
}
