//! EP-GNN: the endpoint-oriented graph neural network (paper Eqs. 2–3).
//!
//! Three graph-convolution layers combine a self-projection with a
//! mean-aggregation of the message-passing neighbourhood, gated by a
//! trainable scalar γ (Eq. 2); a final fully-connected layer maps
//! `f_e + Σ_{j∈cone(e)} f_j` — computed as one sparse product with the cone
//! readout matrix — to the endpoint embeddings (Eq. 3).

use crate::config::RlConfig;
use crate::features::FEATURE_DIM;
use rand::rngs::StdRng;
use rl_ccd_nn::{Linear, ParamBinding, ParamSet, SharedCsr, TapeOps, Tensor, Var};

/// Parameter name prefix shared by all EP-GNN tensors; transfer learning
/// copies exactly the parameters under this prefix.
pub const GNN_PREFIX: &str = "gnn.";

/// The EP-GNN model (structure only; parameters live in a [`ParamSet`]).
#[derive(Clone, Debug)]
pub struct EpGnn {
    proj: Vec<Linear>,
    agg: Vec<Linear>,
    fc: Linear,
}

impl EpGnn {
    /// Creates the model and registers freshly-initialized parameters.
    pub fn init(config: &RlConfig, params: &mut ParamSet, rng: &mut StdRng) -> Self {
        let mut proj = Vec::new();
        let mut agg = Vec::new();
        let mut in_dim = FEATURE_DIM;
        for l in 0..3 {
            proj.push(Linear::init(
                format!("{GNN_PREFIX}l{l}.proj"),
                in_dim,
                config.gnn_hidden,
                params,
                rng,
            ));
            agg.push(Linear::init(
                format!("{GNN_PREFIX}l{l}.agg"),
                in_dim,
                config.gnn_hidden,
                params,
                rng,
            ));
            // Gate starts at γ = sigmoid(0) = 0.5: equal mix.
            params.insert(format!("{GNN_PREFIX}l{l}.gamma"), Tensor::zeros(1, 1));
            in_dim = config.gnn_hidden;
        }
        let fc = Linear::init(
            format!("{GNN_PREFIX}fc"),
            config.gnn_hidden,
            config.embed_dim,
            params,
            rng,
        );
        Self { proj, agg, fc }
    }

    /// Re-attaches to parameters already present in `params` (e.g. after a
    /// transfer-learning reload).
    ///
    /// # Panics
    /// Panics if any EP-GNN parameter is missing.
    pub fn attach(params: &ParamSet) -> Self {
        let proj = (0..3)
            .map(|l| Linear::attach(format!("{GNN_PREFIX}l{l}.proj"), params))
            .collect();
        let agg = (0..3)
            .map(|l| Linear::attach(format!("{GNN_PREFIX}l{l}.agg"), params))
            .collect();
        let fc = Linear::attach(format!("{GNN_PREFIX}fc"), params);
        Self { proj, agg, fc }
    }

    /// Endpoint embedding width.
    pub fn embed_dim(&self) -> usize {
        self.fc.out_dim()
    }

    /// Forward pass: node features `x` (V×13), mean-normalized adjacency
    /// (V×V), cone readout matrix (E×V) → endpoint embeddings (E×embed).
    pub fn forward<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        x: Var,
        adjacency: &SharedCsr,
        readout: &SharedCsr,
    ) -> Var {
        let mut h = x;
        for l in 0..3 {
            // Eq. 2: σ(γ·proj(h) + (1−γ)·agg(mean_neighbors(h))), with the
            // γ-gating fused into one tape op (tapes persist per RL step, so
            // intermediate count dominates training memory).
            let gamma_raw = binding.var(&format!("{GNN_PREFIX}l{l}.gamma"));
            let gamma = tape.sigmoid(gamma_raw);
            let self_term = self.proj[l].forward(tape, binding, h);
            let neigh = tape.spmm(adjacency, h);
            let agg_term = self.agg[l].forward(tape, binding, neigh);
            let combined = tape.mix(gamma, self_term, agg_term);
            h = tape.sigmoid(combined);
        }
        // Eq. 3: FC over endpoint + fan-in-cone sum.
        let pooled = tape.spmm(readout, h);
        self.fc.forward(tape, binding, pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rl_ccd_nn::Tape;
    use rl_ccd_nn::{Csr, GradSet};
    use std::sync::Arc;

    /// 3 nodes in a line (0-1-2), both endpoints read node 2 + cone {1}.
    fn tiny_graphs() -> (SharedCsr, SharedCsr) {
        // Mean-normalized adjacency.
        let adj = Csr::new(
            3,
            3,
            vec![0, 1, 3, 4],
            vec![1, 0, 2, 1],
            vec![1.0, 0.5, 0.5, 1.0],
        );
        let readout = Csr::new(2, 3, vec![0, 2, 3], vec![2, 1, 2], vec![1.0, 1.0, 1.0]);
        (Arc::new(adj), Arc::new(readout))
    }

    fn build() -> (ParamSet, EpGnn, RlConfig) {
        let cfg = RlConfig::fast();
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamSet::new();
        let gnn = EpGnn::init(&cfg, &mut params, &mut rng);
        (params, gnn, cfg)
    }

    #[test]
    fn forward_shapes() {
        let (params, gnn, cfg) = build();
        let (adj, readout) = tiny_graphs();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::zeros(3, FEATURE_DIM));
        let e = gnn.forward(&mut tape, &binding, x, &adj, &readout);
        assert_eq!(tape.value(e).shape(), (2, cfg.embed_dim));
        assert_eq!(gnn.embed_dim(), cfg.embed_dim);
    }

    #[test]
    fn gradients_reach_all_gnn_parameters() {
        let (params, gnn, _) = build();
        let (adj, readout) = tiny_graphs();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let mut x = Tensor::zeros(3, FEATURE_DIM);
        for i in 0..x.len() {
            x.data_mut()[i] = (i as f32 * 0.37).sin();
        }
        let x = tape.leaf(x);
        let e = gnn.forward(&mut tape, &binding, x, &adj, &readout);
        // Scalar loss: sum of embeddings.
        let dims = tape.value(e).cols();
        let ones_c = tape.leaf(Tensor::from_vec(dims, 1, vec![1.0; dims]));
        let col = tape.matmul(e, ones_c);
        let ones_r = tape.leaf(Tensor::from_vec(1, 2, vec![1.0; 2]));
        let loss = tape.matmul(ones_r, col);
        let mut grads = tape.backward(loss);
        let mut gs = GradSet::new();
        gs.accumulate(&binding, &mut grads);
        for (name, _) in params.iter() {
            assert!(
                gs.get(name).map(|g| g.norm() > 0.0).unwrap_or(false),
                "parameter {name} received no gradient"
            );
        }
    }

    #[test]
    fn attach_rebuilds_same_structure() {
        let (params, gnn, _) = build();
        let re = EpGnn::attach(&params);
        assert_eq!(re.embed_dim(), gnn.embed_dim());
    }

    #[test]
    fn masked_flag_changes_embeddings() {
        // The dynamic column must influence the output (the state the agent
        // sees changes after masking).
        let (params, gnn, _) = build();
        let (adj, readout) = tiny_graphs();
        let embed = |flag: f32| {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let mut x = Tensor::zeros(3, FEATURE_DIM);
            x.set(2, crate::features::MASKED_COL, flag);
            let x = tape.leaf(x);
            let e = gnn.forward(&mut tape, &binding, x, &adj, &readout);
            tape.value(e).clone()
        };
        assert_ne!(embed(0.0).data(), embed(1.0).data());
    }
}
