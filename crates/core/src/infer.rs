//! Inference-only endpoint selection — the serving fast path.
//!
//! Training records every forward op on a [`Tape`](rl_ccd_nn::Tape) so
//! REINFORCE can backpropagate; a server answering "which endpoints should
//! the clock path over-fix?" needs none of that. [`select_endpoints`] and
//! [`sample_endpoints`] run the identical EP-GNN + encoder + attention
//! forward pass on a [`rl_ccd_nn::NoGradTape`]: no gradient
//! bookkeeping, no Adam state, and per-step memory reclamation (the tape is
//! truncated back to the parameter leaves after every selection, carrying
//! only the previous-action embedding and the encoder state forward).
//!
//! Because both tapes share the same per-op forward kernels, the selections
//! are **bit-identical** to [`RlCcd::rollout_greedy`] / [`RlCcd::rollout`]
//! on the same parameters and seeds — pinned by the tests in this module
//! and by `tests/serve_parity.rs`.

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use rand::rngs::StdRng;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{NoGradTape, ParamBinding, ParamSet};

/// Deterministic greedy selection (argmax at every step) without any
/// gradient bookkeeping. Bit-identical to
/// `model.rollout_greedy(params, env).selected`, but with bounded memory
/// and no tape allocation; an empty endpoint pool yields an empty
/// selection instead of panicking.
pub fn select_endpoints(model: &RlCcd, params: &ParamSet, env: &CcdEnv) -> Vec<EndpointId> {
    model.infer_trajectory(params, env, None)
}

/// Stochastic selection sampled from the policy distribution, consuming
/// exactly one RNG draw per step — bit-identical to
/// `model.rollout(params, env, rng).selected` for the same `rng` state.
pub fn sample_endpoints(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    rng: &mut StdRng,
) -> Vec<EndpointId> {
    model.infer_trajectory(params, env, Some(rng))
}

/// A reusable inference context: parameters bound once onto one
/// [`NoGradTape`], then many selections served through it.
///
/// [`select_endpoints`] / [`sample_endpoints`] construct a fresh tape and
/// re-bind every parameter (one tensor clone each) per call; a server
/// answering a batch of queries against the same model pays that cost once
/// by building a session and calling [`InferSession::select`] /
/// [`InferSession::sample`] per request. Between requests the tape is
/// truncated back to the parameter leaves, returning every intermediate
/// buffer to the tape's pool — steady-state serving allocates nothing per
/// step. Selections are bit-identical to the free functions (same leaves,
/// same kernels, same RNG discipline).
#[derive(Debug)]
pub struct InferSession<'a> {
    model: &'a RlCcd,
    tape: NoGradTape,
    binding: ParamBinding,
    base: usize,
}

impl<'a> InferSession<'a> {
    /// Binds `params` once and returns a session ready to serve requests.
    pub fn new(model: &'a RlCcd, params: &ParamSet) -> Self {
        Self::with_tape(model, params, NoGradTape::new())
    }

    /// Like [`InferSession::new`] but executing through the pinned scalar
    /// reference kernels — the baseline the `nn_kernels` bench compares
    /// against.
    pub fn scalar_reference(model: &'a RlCcd, params: &ParamSet) -> Self {
        Self::with_tape(model, params, NoGradTape::scalar_reference())
    }

    fn with_tape(model: &'a RlCcd, params: &ParamSet, mut tape: NoGradTape) -> Self {
        let binding = params.bind(&mut tape);
        let base = tape.len();
        Self {
            model,
            tape,
            binding,
            base,
        }
    }

    /// Deterministic greedy selection; bit-identical to
    /// [`select_endpoints`] on the same model/params/env.
    pub fn select(&mut self, env: &CcdEnv) -> Vec<EndpointId> {
        self.tape.truncate(self.base);
        self.model
            .infer_trajectory_in(&mut self.tape, &self.binding, self.base, env, None)
    }

    /// Stochastic selection consuming one RNG draw per step; bit-identical
    /// to [`sample_endpoints`] for the same `rng` state.
    pub fn sample(&mut self, env: &CcdEnv, rng: &mut StdRng) -> Vec<EndpointId> {
        self.tape.truncate(self.base);
        self.model
            .infer_trajectory_in(&mut self.tape, &self.binding, self.base, env, Some(rng))
    }

    /// Like [`InferSession::sample`] but also returning the behavior
    /// log-probability of each selected action, in selection order — the
    /// raw material of an experience record. The selection (and the RNG
    /// stream consumed) is bit-identical to [`InferSession::sample`]:
    /// capturing a log-prob is a tape read, not a tape op.
    pub fn sample_logged(&mut self, env: &CcdEnv, rng: &mut StdRng) -> (Vec<EndpointId>, Vec<f32>) {
        self.tape.truncate(self.base);
        self.model.infer_trajectory_logged_in(
            &mut self.tape,
            &self.binding,
            self.base,
            env,
            Some(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderKind, RlConfig};
    use rand::SeedableRng;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("infer", 600, TechNode::N7, 33));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn greedy_inference_matches_training_forward_bit_for_bit() {
        let env = env();
        for kind in [EncoderKind::Lstm, EncoderKind::Gru, EncoderKind::None] {
            let mut cfg = RlConfig::fast();
            cfg.encoder = kind;
            let (model, params) = RlCcd::init(cfg);
            let trained = model.rollout_greedy(&params, &env).selected;
            let inferred = select_endpoints(&model, &params, &env);
            assert_eq!(trained, inferred, "encoder {kind:?}");
        }
    }

    #[test]
    fn sampled_inference_matches_training_forward_on_fixed_seeds() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        for seed in [0u64, 7, 1234] {
            let trained = model
                .rollout(&params, &env, &mut StdRng::seed_from_u64(seed))
                .selected;
            let inferred =
                sample_endpoints(&model, &params, &env, &mut StdRng::seed_from_u64(seed));
            assert_eq!(trained, inferred, "seed {seed}");
        }
    }

    #[test]
    fn session_reuse_matches_free_functions_bit_for_bit() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut session = InferSession::new(&model, &params);
        // Repeated greedy requests through one session match the one-shot
        // path every time (truncation fully resets the request state).
        for round in 0..3 {
            assert_eq!(
                session.select(&env),
                select_endpoints(&model, &params, &env),
                "greedy request {round} diverged"
            );
        }
        // Sampled requests interleaved on one session stay stream-exact.
        for seed in [0u64, 7, 1234] {
            let via_session = session.sample(&env, &mut StdRng::seed_from_u64(seed));
            let one_shot =
                sample_endpoints(&model, &params, &env, &mut StdRng::seed_from_u64(seed));
            assert_eq!(via_session, one_shot, "seed {seed}");
        }
        // The scalar-reference session agrees bit-for-bit too.
        let mut scalar = InferSession::scalar_reference(&model, &params);
        assert_eq!(scalar.select(&env), select_endpoints(&model, &params, &env));
    }

    #[test]
    fn logged_sampling_matches_unlogged_and_the_training_tape() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut session = InferSession::new(&model, &params);
        for seed in [3u64, 99] {
            let plain = session.sample(&env, &mut StdRng::seed_from_u64(seed));
            let (logged, log_probs) = session.sample_logged(&env, &mut StdRng::seed_from_u64(seed));
            assert_eq!(plain, logged, "seed {seed}: selections diverged");
            assert_eq!(log_probs.len(), logged.len());
            assert!(log_probs.iter().all(|lp| lp.is_finite() && *lp <= 0.0));
            // The logged per-step values sum to the training rollout's
            // total log-prob (same kernels, same order of additions).
            let ro = model.rollout(&params, &env, &mut StdRng::seed_from_u64(seed));
            let total = ro.tape.value(ro.total_log_prob).data()[0];
            let fold = log_probs
                .iter()
                .copied()
                .reduce(|a, b| a + b)
                .expect("at least one step");
            assert_eq!(total.to_bits(), fold.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn sampled_inference_consumes_the_same_rng_stream() {
        // After a trajectory, both paths must leave the RNG in the same
        // state (one draw per step) — a server interleaving sampled
        // requests on one seeded stream relies on this.
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = model.rollout(&params, &env, &mut rng_a).selected;
        let b = sample_endpoints(&model, &params, &env, &mut rng_b);
        assert_eq!(a, b);
        use rand::Rng;
        let next_a: f64 = rng_a.gen_range(0.0..1.0);
        let next_b: f64 = rng_b.gen_range(0.0..1.0);
        assert_eq!(next_a, next_b, "RNG streams diverged");
    }
}
