//! Inference-only endpoint selection — the serving fast path.
//!
//! Training records every forward op on a [`Tape`](rl_ccd_nn::Tape) so
//! REINFORCE can backpropagate; a server answering "which endpoints should
//! the clock path over-fix?" needs none of that. [`select_endpoints`] and
//! [`sample_endpoints`] run the identical EP-GNN + encoder + attention
//! forward pass on a [`NoGradTape`](rl_ccd_nn::NoGradTape): no gradient
//! bookkeeping, no Adam state, and per-step memory reclamation (the tape is
//! truncated back to the parameter leaves after every selection, carrying
//! only the previous-action embedding and the encoder state forward).
//!
//! Because both tapes share the same per-op forward kernels, the selections
//! are **bit-identical** to [`RlCcd::rollout_greedy`] / [`RlCcd::rollout`]
//! on the same parameters and seeds — pinned by the tests in this module
//! and by `tests/serve_parity.rs`.

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use rand::rngs::StdRng;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::ParamSet;

/// Deterministic greedy selection (argmax at every step) without any
/// gradient bookkeeping. Bit-identical to
/// `model.rollout_greedy(params, env).selected`, but with bounded memory
/// and no tape allocation; an empty endpoint pool yields an empty
/// selection instead of panicking.
pub fn select_endpoints(model: &RlCcd, params: &ParamSet, env: &CcdEnv) -> Vec<EndpointId> {
    model.infer_trajectory(params, env, None)
}

/// Stochastic selection sampled from the policy distribution, consuming
/// exactly one RNG draw per step — bit-identical to
/// `model.rollout(params, env, rng).selected` for the same `rng` state.
pub fn sample_endpoints(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    rng: &mut StdRng,
) -> Vec<EndpointId> {
    model.infer_trajectory(params, env, Some(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EncoderKind, RlConfig};
    use rand::SeedableRng;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn env() -> CcdEnv {
        let d = generate(&DesignSpec::new("infer", 600, TechNode::N7, 33));
        CcdEnv::new(d, FlowRecipe::default(), 24)
    }

    #[test]
    fn greedy_inference_matches_training_forward_bit_for_bit() {
        let env = env();
        for kind in [EncoderKind::Lstm, EncoderKind::Gru, EncoderKind::None] {
            let mut cfg = RlConfig::fast();
            cfg.encoder = kind;
            let (model, params) = RlCcd::init(cfg);
            let trained = model.rollout_greedy(&params, &env).selected;
            let inferred = select_endpoints(&model, &params, &env);
            assert_eq!(trained, inferred, "encoder {kind:?}");
        }
    }

    #[test]
    fn sampled_inference_matches_training_forward_on_fixed_seeds() {
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        for seed in [0u64, 7, 1234] {
            let trained = model
                .rollout(&params, &env, &mut StdRng::seed_from_u64(seed))
                .selected;
            let inferred =
                sample_endpoints(&model, &params, &env, &mut StdRng::seed_from_u64(seed));
            assert_eq!(trained, inferred, "seed {seed}");
        }
    }

    #[test]
    fn sampled_inference_consumes_the_same_rng_stream() {
        // After a trajectory, both paths must leave the RNG in the same
        // state (one draw per step) — a server interleaving sampled
        // requests on one seeded stream relies on this.
        let env = env();
        let (model, params) = RlCcd::init(RlConfig::fast());
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = model.rollout(&params, &env, &mut rng_a).selected;
        let b = sample_endpoints(&model, &params, &env, &mut rng_b);
        assert_eq!(a, b);
        use rand::Rng;
        let next_a: f64 = rng_a.gen_range(0.0..1.0);
        let next_b: f64 = rng_b.gen_range(0.0..1.0);
        assert_eq!(next_a, next_b, "RNG streams diverged");
    }
}
