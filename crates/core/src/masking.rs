//! Fan-in-cone overlap masking (paper §III-C, Fig. 3).
//!
//! After each selection, every still-valid endpoint whose fan-in cone
//! overlaps the selected endpoint's cone by more than ρ is masked. The
//! selection loop ends when no endpoint remains valid — which is how the
//! agent implicitly chooses *how many* endpoints to prioritize.

use rl_ccd_netlist::ConeSet;

/// Status of one candidate endpoint during a selection trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndpointStatus {
    /// Still selectable.
    Valid,
    /// Chosen by the agent.
    Selected,
    /// Masked by cone overlap with a selected endpoint.
    Masked,
}

/// Mutable selection state over the violating-endpoint pool.
///
/// # Examples
/// ```
/// use rl_ccd::SelectionMask;
/// use rl_ccd_netlist::{generate, ConeSet, DesignSpec, EndpointId, TechNode};
///
/// let d = generate(&DesignSpec::new("mask", 300, TechNode::N7, 1));
/// let eps: Vec<EndpointId> = (0..d.netlist.endpoints().len())
///     .map(EndpointId::new)
///     .collect();
/// let cones = ConeSet::new(&d.netlist, &eps);
/// let mut mask = SelectionMask::new(eps.len(), 0.3);
/// let masked = mask.select(0, &cones);
/// // The selection plus its masked overlaps are flagged.
/// assert_eq!(mask.flagged().len(), masked.len() + 1);
/// ```
#[derive(Clone, Debug)]
pub struct SelectionMask {
    status: Vec<EndpointStatus>,
    rho: f32,
}

impl SelectionMask {
    /// All endpoints start valid.
    pub fn new(count: usize, rho: f32) -> Self {
        Self {
            status: vec![EndpointStatus::Valid; count],
            rho,
        }
    }

    /// Number of candidate endpoints.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Status of endpoint `i`.
    pub fn status(&self, i: usize) -> EndpointStatus {
        self.status[i]
    }

    /// Validity bitmap for the decoder.
    pub fn valid_mask(&self) -> Vec<bool> {
        self.status
            .iter()
            .map(|&s| s == EndpointStatus::Valid)
            .collect()
    }

    /// Whether any endpoint can still be selected.
    pub fn any_valid(&self) -> bool {
        self.status.contains(&EndpointStatus::Valid)
    }

    /// Local indices flagged selected *or* masked (the cells whose
    /// "RL masked" feature is 1 per Table I).
    pub fn flagged(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&i| self.status[i] != EndpointStatus::Valid)
            .collect()
    }

    /// Local indices of selected endpoints, in selection order is *not*
    /// preserved here — trajectory bookkeeping lives with the agent.
    pub fn selected(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&i| self.status[i] == EndpointStatus::Selected)
            .collect()
    }

    /// Records a selection and masks every valid endpoint whose cone
    /// overlap with it exceeds ρ. Returns the newly-masked local indices.
    ///
    /// # Panics
    /// Panics if `action` is not currently valid.
    pub fn select(&mut self, action: usize, cones: &ConeSet) -> Vec<usize> {
        assert_eq!(
            self.status[action],
            EndpointStatus::Valid,
            "selected endpoint must be valid"
        );
        self.status[action] = EndpointStatus::Selected;
        let mut newly_masked = Vec::new();
        for other in 0..self.status.len() {
            if self.status[other] == EndpointStatus::Valid
                && cones.overlap_ratio(action, other) > self.rho
            {
                self.status[other] = EndpointStatus::Masked;
                newly_masked.push(other);
            }
        }
        newly_masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, ConeSet, DesignSpec, EndpointId, TechNode};

    fn pool() -> (ConeSet, usize) {
        let d = generate(&DesignSpec::new("m", 700, TechNode::N7, 12));
        let eps: Vec<EndpointId> = (0..d.netlist.endpoints().len())
            .map(EndpointId::new)
            .collect();
        let cones = ConeSet::new(&d.netlist, &eps);
        let n = eps.len();
        (cones, n)
    }

    #[test]
    fn selection_masks_overlapping_cones() {
        let (cones, n) = pool();
        let mut mask = SelectionMask::new(n, 0.3);
        assert!(mask.any_valid());
        assert!(!mask.is_empty());
        // Find an endpoint with at least one heavy overlap.
        let action = (0..n)
            .find(|&a| !cones.overlapping(a, 0.3).is_empty())
            .expect("generated clusters share cones");
        let masked = mask.select(action, &cones);
        assert!(!masked.is_empty());
        assert_eq!(mask.status(action), EndpointStatus::Selected);
        for &m in &masked {
            assert_eq!(mask.status(m), EndpointStatus::Masked);
        }
        let flagged = mask.flagged();
        assert!(flagged.contains(&action));
        assert_eq!(flagged.len(), masked.len() + 1);
        assert_eq!(mask.selected(), vec![action]);
    }

    #[test]
    fn loop_terminates_with_everything_flagged() {
        let (cones, n) = pool();
        let mut mask = SelectionMask::new(n, 0.3);
        let mut steps = 0;
        while mask.any_valid() {
            let action = mask
                .valid_mask()
                .iter()
                .position(|&v| v)
                .expect("some valid");
            mask.select(action, &cones);
            steps += 1;
            assert!(steps <= n, "selection loop must terminate");
        }
        assert_eq!(mask.flagged().len(), n);
        // Higher ρ masks less → at least as many selections needed.
        let mut strict = SelectionMask::new(n, 0.95);
        let mut strict_steps = 0;
        while strict.any_valid() {
            let action = strict
                .valid_mask()
                .iter()
                .position(|&v| v)
                .expect("some valid");
            strict.select(action, &cones);
            strict_steps += 1;
        }
        assert!(strict_steps >= steps, "{strict_steps} < {steps}");
    }

    #[test]
    #[should_panic(expected = "must be valid")]
    fn double_selection_panics() {
        let (cones, n) = pool();
        let mut mask = SelectionMask::new(n, 0.3);
        mask.select(0, &cones);
        mask.select(0, &cones);
    }
}
