//! Deterministic fault injection and fault records for the training
//! runtime.
//!
//! Long REINFORCE runs on a CPU farm must survive worker failures: a
//! panicked rollout, a NaN reward out of the flow, or a poisoned gradient
//! must be *quarantined* (dropped from the batch with a [`RolloutFault`]
//! record) rather than kill or silently corrupt the run. This module
//! provides the structured records plus a seeded, fully deterministic
//! [`FaultPlan`] used by the integration tests to inject each fault class
//! at an exact (iteration, worker) coordinate — the same plan always
//! produces the same faults, so quarantine and resume behavior is testable
//! bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A fault class the test harness can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The rollout worker panics at the start of its trajectory.
    WorkerPanic,
    /// The rollout's flow reward is replaced by NaN.
    NanReward,
    /// One element of the rollout's policy gradient is replaced by NaN.
    PoisonedGradient,
    /// The periodic checkpoint write is torn mid-file (simulated crash
    /// during the write; only the temp file is affected, never the
    /// previously committed state).
    TornCheckpoint,
    /// A distributed worker *process* dies mid-batch: it closes its
    /// connection without replying and stops serving. For this and the
    /// other dist faults the plan's `worker` coordinate addresses the
    /// worker process index, not a rollout slot.
    WorkerDrop,
    /// A distributed worker stalls past the coordinator's per-request
    /// deadline before replying (straggler).
    SlowWorker,
    /// A distributed worker writes a torn frame (length prefix promising
    /// more bytes than follow) and closes the connection.
    TornFrame,
    /// Transport chaos: the coordinator's connection to the worker gains
    /// `arg` milliseconds of latency on its next frame. Unlike the worker
    /// faults above, the net faults model the *wire* misbehaving — the
    /// worker process stays healthy, and a retrying coordinator recovers
    /// without a fault record.
    NetDelay,
    /// Transport chaos: the coordinator's connection to the worker is
    /// reset at its next frame.
    NetReset,
    /// Transport chaos: the coordinator's connection goes silent for `arg`
    /// milliseconds at its next frame, then times out.
    NetStall,
    /// Transport chaos: the coordinator's next frame on the connection is
    /// torn mid-payload.
    NetTorn,
}

impl InjectedFault {
    /// Whether this fault targets the transport (recoverable by
    /// reconnect + re-issue) rather than the worker or the rollout itself.
    pub fn is_net(self) -> bool {
        matches!(
            self,
            InjectedFault::NetDelay
                | InjectedFault::NetReset
                | InjectedFault::NetStall
                | InjectedFault::NetTorn
        )
    }
}

/// One planned injection at an exact training coordinate. `arg` carries a
/// fault-specific magnitude (milliseconds for delays and stalls) and is 0
/// for faults without one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Injection {
    iteration: usize,
    worker: usize,
    fault: InjectedFault,
    arg: u64,
}

/// A deterministic schedule of injected faults, threaded through the
/// trainer and the parallel rollout runner behind a test-only hook
/// (`TrainSession::fault_plan`). An empty plan — the default — injects
/// nothing and costs nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    injections: Vec<Injection>,
}

impl FaultPlan {
    /// The empty plan (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Number of planned injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    fn with(self, iteration: usize, worker: usize, fault: InjectedFault) -> Self {
        self.with_arg(iteration, worker, fault, 0)
    }

    fn with_arg(mut self, iteration: usize, worker: usize, fault: InjectedFault, arg: u64) -> Self {
        self.injections.push(Injection {
            iteration,
            worker,
            fault,
            arg,
        });
        self
    }

    /// Plans a worker panic at `(iteration, worker)`.
    pub fn with_worker_panic(self, iteration: usize, worker: usize) -> Self {
        self.with(iteration, worker, InjectedFault::WorkerPanic)
    }

    /// Plans a NaN reward at `(iteration, worker)`.
    pub fn with_nan_reward(self, iteration: usize, worker: usize) -> Self {
        self.with(iteration, worker, InjectedFault::NanReward)
    }

    /// Plans a poisoned (NaN) gradient element at `(iteration, worker)`.
    pub fn with_poisoned_gradient(self, iteration: usize, worker: usize) -> Self {
        self.with(iteration, worker, InjectedFault::PoisonedGradient)
    }

    /// Plans a torn checkpoint write at the checkpoint boundary that
    /// follows `iteration`.
    pub fn with_torn_checkpoint(self, iteration: usize) -> Self {
        self.with(iteration, 0, InjectedFault::TornCheckpoint)
    }

    /// Plans a distributed worker-process death at `(iteration, process)`:
    /// the worker drops its connection mid-batch and stops serving.
    pub fn with_worker_drop(self, iteration: usize, process: usize) -> Self {
        self.with(iteration, process, InjectedFault::WorkerDrop)
    }

    /// Plans a distributed straggler at `(iteration, process)`: the worker
    /// stalls past the coordinator's deadline before replying.
    pub fn with_slow_worker(self, iteration: usize, process: usize) -> Self {
        self.with(iteration, process, InjectedFault::SlowWorker)
    }

    /// Plans a torn response frame at `(iteration, process)`: the worker
    /// writes a truncated frame and closes the connection.
    pub fn with_torn_frame(self, iteration: usize, process: usize) -> Self {
        self.with(iteration, process, InjectedFault::TornFrame)
    }

    /// Plans `ms` milliseconds of injected latency on the coordinator's
    /// connection to `process` at `iteration`.
    pub fn with_net_delay(self, iteration: usize, process: usize, ms: u64) -> Self {
        self.with_arg(iteration, process, InjectedFault::NetDelay, ms)
    }

    /// Plans a connection reset on the coordinator's connection to
    /// `process` at `iteration`.
    pub fn with_net_reset(self, iteration: usize, process: usize) -> Self {
        self.with(iteration, process, InjectedFault::NetReset)
    }

    /// Plans a `ms`-millisecond silent stall (then timeout) on the
    /// coordinator's connection to `process` at `iteration`.
    pub fn with_net_stall(self, iteration: usize, process: usize, ms: u64) -> Self {
        self.with_arg(iteration, process, InjectedFault::NetStall, ms)
    }

    /// Plans a torn frame on the coordinator's connection to `process` at
    /// `iteration` (the coordinator's own write tears, unlike
    /// [`FaultPlan::with_torn_frame`] where the worker's reply tears).
    pub fn with_net_torn(self, iteration: usize, process: usize) -> Self {
        self.with(iteration, process, InjectedFault::NetTorn)
    }

    /// A pseudorandom but fully reproducible plan: `count` rollout faults
    /// (panic / NaN reward / poisoned gradient) scattered over the
    /// `iterations × workers` grid. The same seed always yields the same
    /// plan — chaos testing without flaky tests.
    pub fn seeded(seed: u64, iterations: usize, workers: usize, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::none();
        for _ in 0..count {
            let fault = match rng.gen_range(0..3u32) {
                0 => InjectedFault::WorkerPanic,
                1 => InjectedFault::NanReward,
                _ => InjectedFault::PoisonedGradient,
            };
            plan = plan.with(
                rng.gen_range(0..iterations.max(1)),
                rng.gen_range(0..workers.max(1)),
                fault,
            );
        }
        plan
    }

    /// Whether `fault` is scheduled at `(iteration, worker)`.
    pub fn injects(&self, iteration: usize, worker: usize, fault: InjectedFault) -> bool {
        self.injections
            .iter()
            .any(|i| i.iteration == iteration && i.worker == worker && i.fault == fault)
    }

    /// The transport faults scheduled at `(iteration, worker)` with their
    /// magnitudes, in plan order — the coordinator translates these into
    /// wire-level injections on the matching connection.
    pub fn net_injects(&self, iteration: usize, worker: usize) -> Vec<(InjectedFault, u64)> {
        self.injections
            .iter()
            .filter(|i| i.iteration == iteration && i.worker == worker && i.fault.is_net())
            .map(|i| (i.fault, i.arg))
            .collect()
    }

    /// Whether the checkpoint written after `iteration` should be torn.
    pub fn tears_checkpoint_after(&self, iteration: usize) -> bool {
        self.injections
            .iter()
            .any(|i| i.iteration == iteration && i.fault == InjectedFault::TornCheckpoint)
    }
}

/// What the supervisor observed when it quarantined a rollout (or the
/// trainer when it guarded an update). These records are part of the
/// training state: they survive checkpoints and resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panicked.
    WorkerPanic,
    /// The rollout's reward was NaN or ±Inf.
    NonFiniteReward,
    /// The rollout's policy gradient held a NaN or ±Inf element.
    NonFiniteGradient,
    /// The merged batch update produced non-finite parameters or optimizer
    /// state; the step was rolled back to the last good snapshot.
    NonFiniteUpdate,
    /// Every rollout of an iteration was quarantined (only reachable when
    /// the quorum is explicitly disabled); the iteration became a no-op.
    EmptyBatch,
    /// A distributed rollout could not be served by any worker: every
    /// worker process died or was quarantined before the seed's chunk
    /// could be re-queued onto a survivor.
    WorkerLost,
}

impl FaultKind {
    /// Stable one-token name used by the checkpoint format.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::NonFiniteReward => "non-finite-reward",
            FaultKind::NonFiniteGradient => "non-finite-gradient",
            FaultKind::NonFiniteUpdate => "non-finite-update",
            FaultKind::EmptyBatch => "empty-batch",
            FaultKind::WorkerLost => "worker-lost",
        }
    }

    /// Parses the token written by [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "worker-panic" => FaultKind::WorkerPanic,
            "non-finite-reward" => FaultKind::NonFiniteReward,
            "non-finite-gradient" => FaultKind::NonFiniteGradient,
            "non-finite-update" => FaultKind::NonFiniteUpdate,
            "empty-batch" => FaultKind::EmptyBatch,
            "worker-lost" => FaultKind::WorkerLost,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured record of one quarantined rollout or guarded update.
#[derive(Clone, Debug, PartialEq)]
pub struct RolloutFault {
    /// Training iteration the fault occurred in.
    pub iteration: usize,
    /// Worker slot within the iteration (0 for trainer-level faults).
    pub worker: usize,
    /// The rollout seed of the faulted worker (0 for trainer-level faults).
    pub seed: u64,
    /// What went wrong.
    pub kind: FaultKind,
    /// Free-form detail (panic message, offending value, …). Newlines are
    /// stripped when the record is checkpointed.
    pub detail: String,
}

impl fmt::Display for RolloutFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iter {} worker {} (seed {}): {} — {}",
            self.iteration, self.worker, self.seed, self.kind, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .with_worker_panic(1, 0)
            .with_nan_reward(2, 1)
            .with_poisoned_gradient(3, 0)
            .with_torn_checkpoint(1);
        assert_eq!(plan.len(), 4);
        assert!(plan.injects(1, 0, InjectedFault::WorkerPanic));
        assert!(!plan.injects(1, 1, InjectedFault::WorkerPanic));
        assert!(plan.injects(2, 1, InjectedFault::NanReward));
        assert!(plan.injects(3, 0, InjectedFault::PoisonedGradient));
        assert!(plan.tears_checkpoint_after(1));
        assert!(!plan.tears_checkpoint_after(2));
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn net_faults_carry_magnitudes_and_stay_separate() {
        let plan = FaultPlan::none()
            .with_net_delay(1, 0, 50)
            .with_net_reset(1, 0)
            .with_net_stall(2, 1, 200)
            .with_net_torn(2, 0)
            .with_worker_drop(1, 0);
        assert_eq!(
            plan.net_injects(1, 0),
            vec![(InjectedFault::NetDelay, 50), (InjectedFault::NetReset, 0)],
            "net faults only, in plan order, with magnitudes"
        );
        assert_eq!(plan.net_injects(2, 1), vec![(InjectedFault::NetStall, 200)]);
        assert!(plan.net_injects(0, 0).is_empty());
        assert!(plan.injects(1, 0, InjectedFault::WorkerDrop));
        assert!(InjectedFault::NetReset.is_net());
        assert!(!InjectedFault::WorkerDrop.is_net());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 10, 4, 6);
        let b = FaultPlan::seeded(7, 10, 4, 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let c = FaultPlan::seeded(8, 10, 4, 6);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn fault_kind_tokens_roundtrip() {
        for k in [
            FaultKind::WorkerPanic,
            FaultKind::NonFiniteReward,
            FaultKind::NonFiniteGradient,
            FaultKind::NonFiniteUpdate,
            FaultKind::EmptyBatch,
            FaultKind::WorkerLost,
        ] {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FaultKind::parse("nope"), None);
    }
}
