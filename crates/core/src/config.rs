//! Hyper-parameters of the RL-CCD framework.

/// Which past-actions encoder the agent uses (paper: LSTM; the others are
/// ablation variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// The paper's LSTM encoder (Eq. 4).
    #[default]
    Lstm,
    /// A GRU (lighter recurrence, same role).
    Gru,
    /// No history: the attention query is a constant zero vector.
    None,
}

/// All knobs of the RL-CCD agent and its training loop.
///
/// Defaults follow the paper where stated: GNN hidden width 32, endpoint
/// embeddings 16, overlap threshold ρ = 0.3, 8 parallel rollout workers,
/// early stop after 3 non-improving iterations.
#[derive(Clone, Debug, PartialEq)]
pub struct RlConfig {
    /// Hidden width of the three EP-GNN graph-convolution layers.
    pub gnn_hidden: usize,
    /// Endpoint embedding width (EP-GNN FC output).
    pub embed_dim: usize,
    /// LSTM encoder hidden width (the attention query width).
    pub lstm_hidden: usize,
    /// Attention projection width of the decoder.
    pub attn_dim: usize,
    /// Fan-in-cone overlap masking threshold ρ (paper default 0.3).
    pub rho: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Parallel rollout workers per training iteration (paper: 8 processes).
    pub workers: usize,
    /// Hard cap on training iterations.
    pub max_iterations: usize,
    /// Stop when the best reward has not improved for this many consecutive
    /// iterations (paper: 3).
    pub patience: usize,
    /// Message-passing fanout cap for the netlist transformation.
    pub fanout_cap: usize,
    /// Master seed for weight init and rollout sampling.
    pub seed: u64,
    /// Past-actions encoder architecture.
    pub encoder: EncoderKind,
    /// Memory budget (bytes) the rollout phase may occupy with concurrent
    /// trajectory tapes. Defaults to 6 GiB; lower it on small-RAM CI
    /// machines, raise it on big servers. Values are clamped to
    /// [256 MiB, 1 TiB] by [`crate::parallel::max_concurrent_tapes`].
    pub tape_memory_budget: usize,
    /// Minimum surviving rollouts an iteration needs after quarantine.
    /// `None` (the default) means half the workers, rounded up; `Some(0)`
    /// disables the quorum entirely (an all-fault iteration becomes a
    /// logged no-op instead of an error).
    pub quorum: Option<usize>,
    /// Learning-rate decay applied after a divergent (non-finite) update
    /// is rolled back to the last good snapshot.
    pub divergence_lr_decay: f32,
}

impl Default for RlConfig {
    fn default() -> Self {
        Self {
            gnn_hidden: 32,
            embed_dim: 16,
            lstm_hidden: 32,
            attn_dim: 32,
            rho: 0.3,
            learning_rate: 3e-3,
            grad_clip: 5.0,
            workers: 8,
            max_iterations: 40,
            patience: 3,
            fanout_cap: 24,
            seed: 0xCCD,
            encoder: EncoderKind::Lstm,
            tape_memory_budget: 6 << 30,
            quorum: None,
            divergence_lr_decay: 0.5,
        }
    }
}

impl RlConfig {
    /// The quorum actually enforced: the configured value (capped at the
    /// worker count), or half the workers rounded up when unset.
    pub fn effective_quorum(&self) -> usize {
        let workers = self.workers.max(1);
        match self.quorum {
            Some(q) => q.min(workers),
            None => workers.div_ceil(2),
        }
    }

    /// A configuration scaled down for fast unit tests.
    pub fn fast() -> Self {
        Self {
            gnn_hidden: 8,
            embed_dim: 4,
            lstm_hidden: 8,
            attn_dim: 8,
            workers: 2,
            max_iterations: 3,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RlConfig::default();
        assert_eq!(c.gnn_hidden, 32);
        assert_eq!(c.embed_dim, 16);
        assert_eq!(c.rho, 0.3);
        assert_eq!(c.workers, 8);
        assert_eq!(c.patience, 3);
    }

    #[test]
    fn fast_config_is_smaller() {
        let f = RlConfig::fast();
        assert!(f.gnn_hidden < RlConfig::default().gnn_hidden);
        assert!(f.max_iterations < RlConfig::default().max_iterations);
    }

    #[test]
    fn quorum_defaults_to_half_the_workers() {
        let mut c = RlConfig::default();
        assert_eq!(c.workers, 8);
        assert_eq!(c.effective_quorum(), 4);
        c.workers = 5;
        assert_eq!(c.effective_quorum(), 3);
        c.quorum = Some(0);
        assert_eq!(c.effective_quorum(), 0);
        c.quorum = Some(99);
        assert_eq!(c.effective_quorum(), 5, "quorum capped at worker count");
    }
}
