//! The unified, workspace-level error surface.
//!
//! Binaries and library consumers see one [`enum@Error`] that wraps every
//! failure the pipeline can produce — training ([`TrainError`]),
//! checkpointing ([`CheckpointError`]), flow/STA sanity violations, trace
//! I/O and configuration misuse — instead of a mix of `expect()` panics
//! and ad-hoc `eprintln!` exits.

use crate::checkpoint::CheckpointError;
use crate::reinforce::TrainError;
use std::fmt;

/// Any failure of the RL-CCD pipeline. `Send + Sync`, so it crosses
/// thread and binary boundaries.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Training failed (quorum loss, resume validation, checkpoint I/O).
    Train(TrainError),
    /// Checkpoint I/O or validation failed outside a training run.
    Checkpoint(CheckpointError),
    /// A flow or STA stage produced a non-finite QoR — the timing model
    /// was poisoned (NaN arrivals, corrupt margins).
    NonFiniteQor {
        /// Which stage surfaced the non-finite value.
        stage: String,
    },
    /// File I/O failed (trace output, CSV export, checkpoint dirs).
    Io(std::io::Error),
    /// A trace failed schema validation.
    TraceSchema(rl_ccd_obs::SchemaError),
    /// The caller misconfigured a builder or CLI invocation.
    Config(String),
    /// A network operation against a serve or dist peer failed after
    /// retries (connect refused, deadline exhausted, peer misbehavior).
    Net {
        /// What was being attempted ("probe 127.0.0.1:7411", "query").
        context: String,
        /// The underlying socket or protocol error.
        source: std::io::Error,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Train(e) => write!(f, "training failed: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            Error::NonFiniteQor { stage } => {
                write!(f, "non-finite QoR out of the {stage} stage")
            }
            Error::Io(e) => write!(f, "I/O failure: {e}"),
            Error::TraceSchema(e) => write!(f, "trace schema violation: {e}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Net { context, source } => {
                write!(f, "network failure during {context}: {source}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Train(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::TraceSchema(e) => Some(e),
            Error::Net { source, .. } => Some(source),
            Error::NonFiniteQor { .. } | Error::Config(_) => None,
        }
    }
}

impl From<TrainError> for Error {
    fn from(e: TrainError) -> Self {
        Error::Train(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<rl_ccd_obs::SchemaError> for Error {
    fn from(e: rl_ccd_obs::SchemaError) -> Self {
        Error::TraceSchema(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
        assert_bounds::<TrainError>();
        assert_bounds::<CheckpointError>();
    }

    #[test]
    fn conversions_and_display_cover_every_source() {
        let e: Error = TrainError::SeedMismatch {
            expected: 1,
            found: 2,
        }
        .into();
        assert!(e.to_string().contains("seed mismatch"));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = CheckpointError::Corrupt("bad".into()).into();
        assert!(e.to_string().contains("checkpoint"));

        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("I/O failure"));

        let e = Error::Config("missing design".into());
        assert!(e.to_string().contains("missing design"));
        assert!(std::error::Error::source(&e).is_none());

        let e = Error::NonFiniteQor {
            stage: "signoff".into(),
        };
        assert!(e.to_string().contains("signoff"));

        let e = Error::Net {
            context: "probe 127.0.0.1:7411".into(),
            source: std::io::Error::new(std::io::ErrorKind::TimedOut, "silent peer"),
        };
        assert!(e.to_string().contains("probe 127.0.0.1:7411"), "{e}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
