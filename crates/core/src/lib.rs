//! RL-CCD: concurrent clock-and-data optimization via attention-based
//! self-supervised reinforcement learning (DAC 2023) — the paper's core
//! contribution, reproduced end to end.
//!
//! Given a placed design, RL-CCD selects a subset of violating timing
//! endpoints to prioritize for useful-skew optimization: their timing is
//! worsened to the design WNS with margins so the clock engine over-fixes
//! them, the margins are removed, and the rest of placement optimization
//! runs unchanged. The agent is built from:
//!
//! * [`EpGnn`] — endpoint-oriented GNN (Eqs. 2–3) over Table I features;
//! * [`ActionEncoder`] — an LSTM encoding past selections (Eq. 4);
//! * [`AttentionDecoder`] — pointer-style attention producing the sampling
//!   distribution over endpoints (Eqs. 5–6);
//! * [`SelectionMask`] — fan-in-cone overlap masking with threshold ρ
//!   (Fig. 3);
//! * [`reinforce`] — REINFORCE with parallel rollouts and early stopping
//!   (Eq. 7, Algorithm 1);
//! * [`transfer`] — EP-GNN weight reuse on unseen designs (§IV-B).
//!
//! The front door is [`Session`]: it bundles the design, recipe, RL
//! configuration and an optional observability recorder, and exposes
//! [`Session::run_flow`] and [`Session::train`] with the unified
//! [`enum@Error`].
//!
//! # Quick start
//! ```no_run
//! use rl_ccd::Session;
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode};
//!
//! let design = generate(&DesignSpec::new("demo", 800, TechNode::N7, 1));
//! let session = Session::builder().design(design).build()?;
//! let outcome = session.train()?;
//! println!(
//!     "best TNS {:.1} ps with {} prioritized endpoints",
//!     outcome.best_result.final_qor.tns_ps,
//!     outcome.best_selection.len()
//! );
//! # Ok::<(), rl_ccd::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod baselines;
pub mod checkpoint;
pub mod config;
pub mod decoder;
pub mod encoder;
pub mod env;
pub mod epgnn;
pub mod error;
pub mod eval;
pub mod executor;
pub mod fault;
pub mod features;
pub mod gate;
pub mod infer;
pub mod masking;
pub mod parallel;
pub mod reinforce;
pub mod session;
pub mod transfer;

pub use agent::{ReplayError, RlCcd, Rollout};
pub use baselines::Baseline;
pub use checkpoint::{
    fnv1a64, load_checkpoint_params, load_checkpoint_selection, load_training_state,
    save_checkpoint, save_training_state, training_state_exists, verify_manifest, CheckpointError,
    TrainingState,
};
pub use config::{EncoderKind, RlConfig};
pub use decoder::AttentionDecoder;
pub use encoder::{ActionEncoder, EncoderState};
pub use env::CcdEnv;
pub use epgnn::EpGnn;
pub use error::Error;
pub use eval::{evaluate_policy, PolicyEval};
pub use executor::{
    ExecutedRollout, ExecutorBatch, LocalExecutor, RolloutExecutor, RolloutRequest,
};
pub use fault::{FaultKind, FaultPlan, InjectedFault, RolloutFault};
pub use features::{NodeFeatures, FEATURE_DIM, MASKED_COL};
pub use gate::{run_eval_gate, DesignScore, GateSpec, GateVerdict};
pub use infer::{sample_endpoints, select_endpoints, InferSession};
pub use masking::{EndpointStatus, SelectionMask};
pub use parallel::{
    max_concurrent_tapes, run_rollouts, run_rollouts_assigned, run_rollouts_supervised,
    RolloutBatch, ScoredRollout, DEFAULT_TAPE_MEMORY_BUDGET, MAX_TAPE_MEMORY_BUDGET,
    MIN_TAPE_MEMORY_BUDGET,
};
pub use reinforce::{
    resume_train_with, train_or_resume_with, try_train, try_train_with, IterationStats, TrainError,
    TrainOutcome, TrainSession,
};
pub use session::{Session, SessionBuilder};
pub use transfer::{load_params, save_params, with_pretrained_gnn, zero_shot_selection};
