//! The [`Session`] facade — the one front door to the pipeline.
//!
//! Earlier revisions exposed a constellation of free functions
//! (`run_flow`, `run_flow_traced`, `train`, `resume_train`,
//! `train_or_resume`) that each caller had to wire together by hand,
//! along with its own recorder attachment and error handling. A
//! [`Session`] bundles the design, flow recipe, RL configuration and an
//! optional observability [`Recorder`] behind a builder, and every entry
//! point — [`Session::run_flow`], [`Session::train`] — attaches the
//! recorder, runs, and returns the workspace-level
//! [`Error`]:
//!
//! ```no_run
//! use rl_ccd::Session;
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode};
//!
//! let design = generate(&DesignSpec::new("demo", 800, TechNode::N7, 1));
//! let session = Session::builder().design(design).build()?;
//! let outcome = session.train()?;
//! println!("best TNS {:.1} ps", outcome.best_result.final_qor.tns_ps);
//! # Ok::<(), rl_ccd::Error>(())
//! ```

use crate::env::CcdEnv;
use crate::error::Error;
use crate::executor::{LocalExecutor, RolloutExecutor};
use crate::fault::FaultPlan;
use crate::reinforce::{train_or_resume_with, try_train_with, TrainOutcome, TrainSession};
use crate::RlConfig;
use rl_ccd_flow::{FlowRecipe, FlowResult, FlowTrace};
use rl_ccd_netlist::{EndpointId, GeneratedDesign};
use rl_ccd_nn::ParamSet;
use rl_ccd_obs::Recorder;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Builds a [`Session`]. Only [`design`](SessionBuilder::design) is
/// required; everything else has the same defaults as the deprecated
/// free functions.
#[derive(Debug, Default)]
pub struct SessionBuilder {
    design: Option<GeneratedDesign>,
    recipe: FlowRecipe,
    rl_config: RlConfig,
    recorder: Option<Recorder>,
    initial: Option<ParamSet>,
    checkpoint: Option<(PathBuf, usize)>,
    fault_plan: FaultPlan,
    executor: Option<Box<dyn RolloutExecutor>>,
}

impl SessionBuilder {
    /// The placed design to optimize (required).
    pub fn design(mut self, design: GeneratedDesign) -> Self {
        self.design = Some(design);
        self
    }

    /// The flow recipe every evaluation runs (default:
    /// [`FlowRecipe::default`]).
    pub fn recipe(mut self, recipe: FlowRecipe) -> Self {
        self.recipe = recipe;
        self
    }

    /// RL hyper-parameters and runtime knobs (default:
    /// [`RlConfig::default`]).
    pub fn rl_config(mut self, config: RlConfig) -> Self {
        self.rl_config = config;
        self
    }

    /// An observability recorder. Every [`Session`] entry point attaches
    /// it for the duration of the call, so spans and metrics from STA,
    /// the flow, and the training loop all land in one trace.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Warm-start parameters (transfer learning); default trains from
    /// scratch.
    pub fn initial_params(mut self, params: ParamSet) -> Self {
        self.initial = Some(params);
        self
    }

    /// Checkpoint into `dir` every `every` iterations, and resume from a
    /// committed state in `dir` when one exists.
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((dir.into(), every));
        self
    }

    /// Test-only deterministic fault injection.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Where rollouts run (default: in-process threads via
    /// [`LocalExecutor`]). Pass a distributed executor to shard rollouts
    /// over worker processes — training stays bit-identical either way.
    pub fn executor(mut self, executor: Box<dyn RolloutExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Builds the environment (begin STA, endpoint pool, GNN graphs,
    /// features) and returns the ready [`Session`].
    ///
    /// # Errors
    /// [`Error::Config`] when no design was provided.
    pub fn build(self) -> Result<Session, Error> {
        let design = self.design.ok_or_else(|| {
            Error::Config("Session requires a design (SessionBuilder::design)".into())
        })?;
        let env = {
            let _obs = self.recorder.as_ref().map(rl_ccd_obs::attach);
            CcdEnv::new(design, self.recipe, self.rl_config.fanout_cap)
        };
        Ok(Session {
            env,
            rl_config: self.rl_config,
            recorder: self.recorder,
            initial: self.initial,
            checkpoint: self.checkpoint,
            fault_plan: self.fault_plan,
            executor: Mutex::new(self.executor.unwrap_or_else(|| Box::new(LocalExecutor))),
        })
    }
}

/// One configured run of the pipeline: flow evaluation and RL training
/// against a single design, with unified errors and observability.
#[derive(Debug)]
pub struct Session {
    env: CcdEnv,
    rl_config: RlConfig,
    recorder: Option<Recorder>,
    initial: Option<ParamSet>,
    checkpoint: Option<(PathBuf, usize)>,
    fault_plan: FaultPlan,
    executor: Mutex<Box<dyn RolloutExecutor>>,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The prepared environment (endpoint pool, graphs, features).
    pub fn env(&self) -> &CcdEnv {
        &self.env
    }

    /// The RL configuration this session trains with.
    pub fn rl_config(&self) -> &RlConfig {
        &self.rl_config
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    fn check_qor(result: FlowResult) -> Result<FlowResult, Error> {
        if result.final_qor.wns_ps.is_finite() && result.final_qor.tns_ps.is_finite() {
            Ok(result)
        } else {
            Err(Error::NonFiniteQor {
                stage: "signoff".into(),
            })
        }
    }

    /// Runs the native flow (no RL prioritization) — the tool baseline.
    ///
    /// # Errors
    /// [`Error::NonFiniteQor`] when the signoff QoR is not finite.
    pub fn run_flow(&self) -> Result<FlowResult, Error> {
        self.run_flow_prioritized(&[])
    }

    /// Runs the flow with `prioritized` endpoints over-fixed by useful
    /// skew (what the RL agent's selection feeds into).
    ///
    /// # Errors
    /// [`Error::NonFiniteQor`] when the signoff QoR is not finite.
    pub fn run_flow_prioritized(&self, prioritized: &[EndpointId]) -> Result<FlowResult, Error> {
        let _obs = self.recorder.as_ref().map(rl_ccd_obs::attach);
        Self::check_qor(self.env.recipe().run(self.env.design(), prioritized))
    }

    /// Runs the native flow and returns the per-stage QoR trace alongside
    /// the result.
    ///
    /// # Errors
    /// [`Error::NonFiniteQor`] when the signoff QoR is not finite.
    pub fn run_flow_traced(&self) -> Result<(FlowResult, FlowTrace), Error> {
        let _obs = self.recorder.as_ref().map(rl_ccd_obs::attach);
        let (result, trace) = self.env.recipe().run_traced(self.env.design(), &[]);
        Ok((Self::check_qor(result)?, trace))
    }

    /// Trains RL-CCD. With a [`checkpoint`](SessionBuilder::checkpoint)
    /// directory configured, resumes from a committed state when one
    /// exists and checkpoints periodically; otherwise trains in memory.
    ///
    /// # Errors
    /// Any [`TrainError`](crate::TrainError) (quorum loss, checkpoint
    /// I/O, resume seed mismatch), wrapped as [`Error::Train`].
    pub fn train(&self) -> Result<TrainOutcome, Error> {
        let _obs = self.recorder.as_ref().map(rl_ccd_obs::attach);
        let train_session = TrainSession {
            initial: self.initial.clone(),
            checkpoint_dir: self.checkpoint.as_ref().map(|(d, _)| d.clone()),
            checkpoint_every: self.checkpoint.as_ref().map_or(0, |&(_, every)| every),
            fault_plan: self.fault_plan.clone(),
        };
        let mut executor = self.executor.lock().expect("session executor lock");
        let outcome = match &self.checkpoint {
            Some((dir, _)) => train_or_resume_with(
                &self.env,
                &self.rl_config,
                dir,
                train_session,
                executor.as_mut(),
            )?,
            None => try_train_with(&self.env, &self.rl_config, train_session, executor.as_mut())?,
        };
        Ok(outcome)
    }

    /// Writes the recorder's trace as versioned JSONL to `path`.
    ///
    /// # Errors
    /// [`Error::Config`] when the session has no recorder,
    /// [`Error::Io`] on I/O failure.
    pub fn write_trace(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let recorder = self
            .recorder
            .as_ref()
            .ok_or_else(|| Error::Config("Session has no recorder to write a trace from".into()))?;
        recorder.write_jsonl_to_path(path.as_ref())?;
        Ok(())
    }

    /// The recorder's human-readable end-of-run summary table, or `None`
    /// when the session has no recorder.
    pub fn summary(&self) -> Option<String> {
        self.recorder.as_ref().map(Recorder::summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    fn tiny_design() -> GeneratedDesign {
        generate(&DesignSpec::new("session-t", 360, TechNode::N7, 11))
    }

    #[test]
    fn builder_requires_a_design() {
        let err = Session::builder().build().unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn session_flow_matches_free_function() {
        let design = tiny_design();
        let session = Session::builder().design(design.clone()).build().unwrap();
        let via_session = session.run_flow().unwrap();
        let via_recipe = FlowRecipe::default().run(&design, &[]);
        assert_eq!(via_session.final_qor.wns_ps, via_recipe.final_qor.wns_ps);
        assert_eq!(via_session.final_qor.tns_ps, via_recipe.final_qor.tns_ps);
    }

    #[test]
    fn session_train_matches_try_train() {
        let design = tiny_design();
        let config = RlConfig::fast();
        let session = Session::builder()
            .design(design.clone())
            .rl_config(config.clone())
            .build()
            .unwrap();
        let via_session = session.train().unwrap();
        let env = CcdEnv::new(design, FlowRecipe::default(), config.fanout_cap);
        let direct = crate::try_train(&env, &config, TrainSession::default()).unwrap();
        assert_eq!(
            via_session.best_result.final_qor.tns_ps,
            direct.best_result.final_qor.tns_ps
        );
        assert_eq!(via_session.best_selection, direct.best_selection);
    }

    #[test]
    fn recorder_collects_across_entry_points() {
        let recorder = Recorder::new();
        let session = Session::builder()
            .design(tiny_design())
            .recorder(recorder.clone())
            .build()
            .unwrap();
        session.run_flow().unwrap();
        assert!(!recorder.is_empty());
        let names: Vec<&str> = recorder.spans().iter().map(|s| s.name).collect();
        assert!(names.contains(&"flow.run"));
        assert!(session.summary().unwrap().contains("flow.run"));
    }

    #[test]
    fn write_trace_without_recorder_is_a_config_error() {
        let session = Session::builder().design(tiny_design()).build().unwrap();
        let err = session.write_trace("/tmp/never-written.jsonl").unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}
