//! Parallel rollout collection (paper §IV-A: 8 parallel processes per
//! design, CPU only).
//!
//! Each worker runs one trajectory, scores it with a full flow run, and —
//! crucially — backpropagates `∇ Σ_t log π(a_t)` *inside the worker*, so the
//! trajectory's tape (which holds every per-step GNN activation over the
//! whole netlist) is freed before the worker returns. REINFORCE gradients
//! are linear in the advantage, so the trainer can scale the returned
//! gradient by −advantage afterwards. Workers are additionally chunked by a
//! memory model: a tape over a large design costs hundreds of MB, and more
//! concurrent tapes than memory allows is how training runs die.

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{GradSet, ParamSet};

/// One worker's trajectory summary: selection, flow result, and the
/// *unscaled* policy gradient `∇ Σ log π`.
#[derive(Debug)]
pub struct ScoredRollout {
    /// Selected endpoints, in selection order.
    pub selected: Vec<EndpointId>,
    /// Trajectory length.
    pub steps: usize,
    /// Gradient of the trajectory's total log-probability w.r.t. every
    /// parameter (scale by −advantage and merge to get the REINFORCE
    /// update).
    pub log_prob_grads: GradSet,
    /// The full flow result of the selection.
    pub result: FlowResult,
}

impl ScoredRollout {
    /// The trajectory reward: final TNS in ps (Algorithm 1 line 17).
    pub fn reward(&self) -> f64 {
        self.result.final_qor.tns_ps
    }
}

/// Rough bytes-per-(cell·step) of a trajectory tape plus its transient
/// backward buffers, calibrated against observed peaks.
const TAPE_BYTES_PER_CELL_STEP: usize = 6000;

/// Memory the rollout phase may occupy with concurrent tapes.
const TAPE_MEMORY_BUDGET: usize = 6 << 30;

/// How many trajectory tapes can safely coexist for a given environment.
pub fn max_concurrent_tapes(env: &CcdEnv) -> usize {
    let cells = env.design().netlist.cell_count();
    let steps = env.pool().len().clamp(4, 80);
    let per_tape = cells * steps * TAPE_BYTES_PER_CELL_STEP;
    (TAPE_MEMORY_BUDGET / per_tape.max(1)).clamp(1, 16)
}

/// Runs `seeds.len()` rollouts, at most [`max_concurrent_tapes`] at a time,
/// and returns them in seed order (deterministic regardless of scheduling).
pub fn run_rollouts(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    seeds: &[u64],
) -> Vec<ScoredRollout> {
    let chunk = max_concurrent_tapes(env);
    let mut out = Vec::with_capacity(seeds.len());
    for group in seeds.chunks(chunk.max(1)) {
        let scored: Vec<ScoredRollout> = std::thread::scope(|scope| {
            let handles: Vec<_> = group
                .iter()
                .map(|&seed| {
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let rollout = model.rollout(params, env, &mut rng);
                        // Backward while the tape is hot, then drop it.
                        let mut grads = rollout.tape.backward(rollout.total_log_prob);
                        let mut log_prob_grads = GradSet::new();
                        log_prob_grads.accumulate(&rollout.binding, &mut grads);
                        let steps = rollout.steps();
                        let selected = rollout.selected.clone();
                        drop(rollout);
                        let result = env.evaluate(&selected);
                        ScoredRollout {
                            selected,
                            steps,
                            log_prob_grads,
                            result,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rollout worker must not panic"))
                .collect()
        });
        out.extend(scored);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn parallel_rollouts_match_serial() {
        let d = generate(&DesignSpec::new("par", 500, TechNode::N7, 55));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let scored = run_rollouts(&model, &params, &env, &[100, 101]);
        assert_eq!(scored.len(), 2);
        // Rerun worker 0 serially: identical trajectory, reward, gradient.
        let mut rng = StdRng::seed_from_u64(100);
        let serial = model.rollout(&params, &env, &mut rng);
        assert_eq!(serial.selected, scored[0].selected);
        assert_eq!(
            env.evaluate(&serial.selected).final_qor.tns_ps,
            scored[0].reward()
        );
        let mut grads = serial.tape.backward(serial.total_log_prob);
        let mut gs = GradSet::new();
        gs.accumulate(&serial.binding, &mut grads);
        for (name, g) in gs.iter() {
            let other = scored[0].log_prob_grads.get(name).expect("same params");
            assert_eq!(g.data(), other.data(), "gradient mismatch for {name}");
        }
        for s in &scored {
            assert!(s.reward() <= 0.0 && s.reward().is_finite());
            assert!(s.steps >= 1);
        }
    }

    #[test]
    fn chunking_respects_memory_model() {
        let d = generate(&DesignSpec::new("mem", 500, TechNode::N7, 56));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let chunk = max_concurrent_tapes(&env);
        assert!((1..=16).contains(&chunk));
        // Chunked execution still returns everything, in order.
        let (model, params) = RlCcd::init(RlConfig::fast());
        let seeds: Vec<u64> = (0..5).collect();
        let scored = run_rollouts(&model, &params, &env, &seeds);
        assert_eq!(scored.len(), 5);
    }
}
