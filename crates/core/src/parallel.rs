//! Parallel rollout collection (paper §IV-A: 8 parallel processes per
//! design, CPU only).
//!
//! Each worker runs one trajectory, scores it with a full flow run, and —
//! crucially — backpropagates `∇ Σ_t log π(a_t)` *inside the worker*, so the
//! trajectory's tape (which holds every per-step GNN activation over the
//! whole netlist) is freed before the worker returns. REINFORCE gradients
//! are linear in the advantage, so the trainer can scale the returned
//! gradient by −advantage afterwards. Workers are additionally chunked by a
//! memory model: a tape over a large design costs hundreds of MB, and more
//! concurrent tapes than memory allows is how training runs die.
//!
//! # Fault tolerance
//!
//! [`run_rollouts_supervised`] wraps every worker in `catch_unwind` and
//! validates its output: a panicked worker, a non-finite reward, or a
//! non-finite gradient element *quarantines* that rollout — it is dropped
//! from the batch and recorded as a structured [`RolloutFault`] — instead
//! of killing or silently corrupting the run. The trainer then decides
//! whether enough workers survived (the quorum rule in
//! [`crate::reinforce`]).

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use crate::fault::{FaultKind, FaultPlan, InjectedFault, RolloutFault};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{GradSet, ParamSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One worker's trajectory summary: selection, flow result, and the
/// *unscaled* policy gradient `∇ Σ log π`.
#[derive(Debug)]
pub struct ScoredRollout {
    /// Selected endpoints, in selection order.
    pub selected: Vec<EndpointId>,
    /// Trajectory length.
    pub steps: usize,
    /// Gradient of the trajectory's total log-probability w.r.t. every
    /// parameter (scale by −advantage and merge to get the REINFORCE
    /// update).
    pub log_prob_grads: GradSet,
    /// The full flow result of the selection.
    pub result: FlowResult,
}

impl ScoredRollout {
    /// The trajectory reward: final TNS in ps (Algorithm 1 line 17).
    pub fn reward(&self) -> f64 {
        self.result.final_qor.tns_ps
    }
}

/// The outcome of one supervised rollout batch: surviving rollouts (tagged
/// with their worker slot, in seed order) plus a record for every
/// quarantined one.
#[derive(Debug, Default)]
pub struct RolloutBatch {
    /// `(worker slot, rollout)` for every rollout that passed validation.
    pub survivors: Vec<(usize, ScoredRollout)>,
    /// One record per quarantined rollout.
    pub faults: Vec<RolloutFault>,
}

/// Rough bytes-per-(cell·step) of a trajectory tape plus its transient
/// backward buffers, calibrated against observed peaks.
const TAPE_BYTES_PER_CELL_STEP: usize = 6000;

/// Default memory the rollout phase may occupy with concurrent tapes
/// (overridable via `RlConfig::tape_memory_budget`).
pub const DEFAULT_TAPE_MEMORY_BUDGET: usize = 6 << 30;

/// Smallest budget [`max_concurrent_tapes`] will honor: below this the
/// memory model would serialize everything anyway.
pub const MIN_TAPE_MEMORY_BUDGET: usize = 256 << 20;

/// Largest budget [`max_concurrent_tapes`] will honor (1 TiB).
pub const MAX_TAPE_MEMORY_BUDGET: usize = 1 << 40;

/// How many trajectory tapes can safely coexist for a given environment
/// under `budget_bytes` of tape memory. The budget is clamped to
/// [[`MIN_TAPE_MEMORY_BUDGET`], [`MAX_TAPE_MEMORY_BUDGET`]] and the result
/// to `1..=16` concurrent tapes.
pub fn max_concurrent_tapes(env: &CcdEnv, budget_bytes: usize) -> usize {
    let budget = budget_bytes.clamp(MIN_TAPE_MEMORY_BUDGET, MAX_TAPE_MEMORY_BUDGET);
    let cells = env.design().netlist.cell_count();
    let steps = env.pool().len().clamp(4, 80);
    let per_tape = cells * steps * TAPE_BYTES_PER_CELL_STEP;
    (budget / per_tape.max(1)).clamp(1, 16)
}

/// Runs `seeds.len()` rollouts, at most [`max_concurrent_tapes`] at a time,
/// and returns them in seed order (deterministic regardless of scheduling).
///
/// This is the strict variant used by evaluation helpers: any fault —
/// worker panic, non-finite reward or gradient — is a bug here, so it
/// panics with the fault records instead of quarantining them.
pub fn run_rollouts(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    seeds: &[u64],
) -> Vec<ScoredRollout> {
    let batch = run_rollouts_supervised(
        model,
        params,
        env,
        seeds,
        0,
        DEFAULT_TAPE_MEMORY_BUDGET,
        &FaultPlan::none(),
    );
    assert!(
        batch.faults.is_empty(),
        "rollout worker failed: {:?}",
        batch.faults
    );
    batch.survivors.into_iter().map(|(_, s)| s).collect()
}

/// What one supervised worker hands back.
type WorkerResult = Result<ScoredRollout, RolloutFault>;

/// Runs `seeds.len()` rollouts under supervision: each worker is wrapped
/// in `catch_unwind`, and its output is validated for finiteness before it
/// may join the batch. Quarantined rollouts become [`RolloutFault`]
/// records; survivors keep their worker slot so the trainer's telemetry
/// and the fault log line up. `iteration` tags fault records and addresses
/// the deterministic fault `plan` (pass [`FaultPlan::none`] outside tests).
pub fn run_rollouts_supervised(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    seeds: &[u64],
    iteration: usize,
    tape_memory_budget: usize,
    plan: &FaultPlan,
) -> RolloutBatch {
    let pairs: Vec<(usize, u64)> = seeds.iter().copied().enumerate().collect();
    run_rollouts_assigned(
        model,
        params,
        env,
        &pairs,
        iteration,
        tape_memory_budget,
        plan,
    )
}

/// The slot-aware core of [`run_rollouts_supervised`]: runs one rollout
/// per `(slot, seed)` pair, tagging results and fault records with the
/// *given* slot instead of a positional index. Distributed workers use
/// this so a rollout executed remotely carries the same worker slot —
/// and therefore produces the same fault records and telemetry — as it
/// would have in a single-process run.
pub fn run_rollouts_assigned(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    pairs: &[(usize, u64)],
    iteration: usize,
    tape_memory_budget: usize,
    plan: &FaultPlan,
) -> RolloutBatch {
    let chunk = max_concurrent_tapes(env, tape_memory_budget);
    // Hand the driver's recorder (if any) to every worker thread: each
    // worker attaches its own clone, records into its thread-local span
    // buffer, and merges back when its rollout span closes.
    let recorder = rl_ccd_obs::current();
    let mut results: Vec<(usize, WorkerResult)> = Vec::with_capacity(pairs.len());
    for group in pairs.chunks(chunk) {
        let scored: Vec<(usize, WorkerResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = group
                .iter()
                .map(|&(worker, seed)| {
                    let recorder = recorder.clone();
                    scope.spawn(move || {
                        let _obs = recorder.as_ref().map(rl_ccd_obs::attach);
                        let mut span = rl_ccd_obs::span!(
                            "train.rollout",
                            iteration = iteration,
                            worker = worker,
                            seed = seed,
                        );
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            run_one_worker(model, params, env, seed, iteration, worker, plan)
                        }));
                        let result = match outcome {
                            Ok(rollout) => validate_rollout(rollout, iteration, worker, seed),
                            Err(payload) => Err(RolloutFault {
                                iteration,
                                worker,
                                seed,
                                kind: FaultKind::WorkerPanic,
                                detail: panic_message(payload.as_ref()),
                            }),
                        };
                        match &result {
                            Ok(r) => {
                                span.record("reward", r.reward());
                                span.record("steps", r.steps);
                                rl_ccd_obs::observe!("train.rollout.reward", r.reward());
                            }
                            Err(f) => {
                                span.record("fault", format!("{:?}", f.kind));
                                rl_ccd_obs::counter!("train.fault.quarantined", 1);
                            }
                        }
                        drop(span);
                        (worker, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("supervised worker cannot panic past catch_unwind")
                })
                .collect()
        });
        results.extend(scored);
    }
    let mut batch = RolloutBatch::default();
    for (worker, result) in results {
        match result {
            Ok(s) => batch.survivors.push((worker, s)),
            Err(f) => batch.faults.push(f),
        }
    }
    batch
}

/// The worker body: one sampled trajectory, its backward pass, and the
/// flow evaluation — with the test-only fault hooks applied at the exact
/// points real faults would strike.
fn run_one_worker(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    seed: u64,
    iteration: usize,
    worker: usize,
    plan: &FaultPlan,
) -> ScoredRollout {
    if plan.injects(iteration, worker, InjectedFault::WorkerPanic) {
        panic!("injected worker panic (fault plan, iter {iteration} worker {worker})");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let rollout = model.rollout(params, env, &mut rng);
    // Backward while the tape is hot, then drop it.
    let mut grads = rollout.tape.backward(rollout.total_log_prob);
    let mut log_prob_grads = GradSet::new();
    log_prob_grads.accumulate(&rollout.binding, &mut grads);
    let steps = rollout.steps();
    let selected = rollout.selected.clone();
    drop(rollout);
    let mut result = env.evaluate(&selected);
    if plan.injects(iteration, worker, InjectedFault::NanReward) {
        result.final_qor.tns_ps = f64::NAN;
    }
    if plan.injects(iteration, worker, InjectedFault::PoisonedGradient) {
        poison_first_element(&mut log_prob_grads);
    }
    ScoredRollout {
        selected,
        steps,
        log_prob_grads,
        result,
    }
}

/// Replaces the first gradient element with NaN (fault-plan support).
fn poison_first_element(grads: &mut GradSet) {
    let first = {
        let mut it = grads.iter();
        it.next().map(|(n, t)| (n.to_string(), t.clone()))
    };
    if let Some((name, mut t)) = first {
        t.data_mut()[0] = f32::NAN;
        grads.set(name, t);
    }
}

/// Post-rollout validation: quarantine non-finite rewards and gradients.
fn validate_rollout(
    rollout: ScoredRollout,
    iteration: usize,
    worker: usize,
    seed: u64,
) -> WorkerResult {
    let reward = rollout.reward();
    if !reward.is_finite() {
        return Err(RolloutFault {
            iteration,
            worker,
            seed,
            kind: FaultKind::NonFiniteReward,
            detail: format!("reward {reward}"),
        });
    }
    if !rollout.log_prob_grads.all_finite() {
        let bad = rollout
            .log_prob_grads
            .iter()
            .find(|(_, t)| !t.all_finite())
            .map(|(n, _)| n.to_string())
            .unwrap_or_default();
        return Err(RolloutFault {
            iteration,
            worker,
            seed,
            kind: FaultKind::NonFiniteGradient,
            detail: format!("non-finite gradient in {bad}"),
        });
    }
    Ok(rollout)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn parallel_rollouts_match_serial() {
        let d = generate(&DesignSpec::new("par", 500, TechNode::N7, 55));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let scored = run_rollouts(&model, &params, &env, &[100, 101]);
        assert_eq!(scored.len(), 2);
        // Rerun worker 0 serially: identical trajectory, reward, gradient.
        let mut rng = StdRng::seed_from_u64(100);
        let serial = model.rollout(&params, &env, &mut rng);
        assert_eq!(serial.selected, scored[0].selected);
        assert_eq!(
            env.evaluate(&serial.selected).final_qor.tns_ps,
            scored[0].reward()
        );
        let mut grads = serial.tape.backward(serial.total_log_prob);
        let mut gs = GradSet::new();
        gs.accumulate(&serial.binding, &mut grads);
        for (name, g) in gs.iter() {
            let other = scored[0].log_prob_grads.get(name).expect("same params");
            assert_eq!(g.data(), other.data(), "gradient mismatch for {name}");
        }
        for s in &scored {
            assert!(s.reward() <= 0.0 && s.reward().is_finite());
            assert!(s.steps >= 1);
        }
    }

    #[test]
    fn chunking_respects_memory_model() {
        let d = generate(&DesignSpec::new("mem", 500, TechNode::N7, 56));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let chunk = max_concurrent_tapes(&env, DEFAULT_TAPE_MEMORY_BUDGET);
        assert!((1..=16).contains(&chunk));
        // A smaller budget can only shrink the chunk; the floor is 1.
        let small = max_concurrent_tapes(&env, MIN_TAPE_MEMORY_BUDGET);
        assert!((1..=chunk).contains(&small));
        // Clamping: a zero budget behaves like the minimum, a huge budget
        // like the maximum.
        assert_eq!(small, max_concurrent_tapes(&env, 0));
        assert!(max_concurrent_tapes(&env, usize::MAX) <= 16);
        // Chunked execution still returns everything, in order.
        let (model, params) = RlCcd::init(RlConfig::fast());
        let seeds: Vec<u64> = (0..5).collect();
        let scored = run_rollouts(&model, &params, &env, &seeds);
        assert_eq!(scored.len(), 5);
    }

    #[test]
    fn injected_panic_is_quarantined_not_fatal() {
        let d = generate(&DesignSpec::new("panic", 450, TechNode::N7, 57));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let plan = FaultPlan::none().with_worker_panic(3, 1);
        let batch = run_rollouts_supervised(
            &model,
            &params,
            &env,
            &[10, 11, 12],
            3,
            DEFAULT_TAPE_MEMORY_BUDGET,
            &plan,
        );
        assert_eq!(batch.survivors.len(), 2);
        assert_eq!(batch.faults.len(), 1);
        let f = &batch.faults[0];
        assert_eq!((f.iteration, f.worker, f.seed), (3, 1, 11));
        assert_eq!(f.kind, FaultKind::WorkerPanic);
        assert!(f.detail.contains("injected"), "{}", f.detail);
        // Survivors keep their worker slots.
        let slots: Vec<usize> = batch.survivors.iter().map(|(w, _)| *w).collect();
        assert_eq!(slots, vec![0, 2]);
    }

    #[test]
    fn injected_nan_reward_and_gradient_are_quarantined() {
        let d = generate(&DesignSpec::new("nanq", 450, TechNode::N7, 58));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let plan = FaultPlan::none()
            .with_nan_reward(0, 0)
            .with_poisoned_gradient(0, 2);
        let batch = run_rollouts_supervised(
            &model,
            &params,
            &env,
            &[20, 21, 22],
            0,
            DEFAULT_TAPE_MEMORY_BUDGET,
            &plan,
        );
        assert_eq!(batch.survivors.len(), 1);
        assert_eq!(batch.survivors[0].0, 1);
        let kinds: Vec<FaultKind> = batch.faults.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FaultKind::NonFiniteReward));
        assert!(kinds.contains(&FaultKind::NonFiniteGradient));
        for (_, s) in &batch.survivors {
            assert!(s.reward().is_finite());
            assert!(s.log_prob_grads.all_finite());
        }
    }
}
