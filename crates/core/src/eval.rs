//! Policy evaluation utilities: measure what a parameter set has learned,
//! separately from training.

use crate::agent::RlCcd;
use crate::env::CcdEnv;
use crate::infer::{sample_endpoints, select_endpoints};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::ParamSet;

/// Summary of a policy's behaviour on one environment.
#[derive(Clone, Debug)]
pub struct PolicyEval {
    /// Result of the deterministic greedy trajectory.
    pub greedy: FlowResult,
    /// The greedy selection.
    pub greedy_selection: Vec<EndpointId>,
    /// Mean reward over the sampled trajectories (TNS ps).
    pub sample_mean: f64,
    /// Best sampled reward.
    pub sample_best: f64,
    /// Worst sampled reward.
    pub sample_worst: f64,
    /// Mean trajectory length over the samples.
    pub mean_steps: f64,
}

/// Evaluates `params` on `env`: one greedy trajectory plus `samples`
/// stochastic rollouts (seeded from `seed`), each scored with a full flow
/// run.
pub fn evaluate_policy(
    model: &RlCcd,
    params: &ParamSet,
    env: &CcdEnv,
    samples: usize,
    seed: u64,
) -> PolicyEval {
    let greedy_selection = select_endpoints(model, params, env);
    let greedy = env.evaluate(&greedy_selection);
    let mut rewards = Vec::with_capacity(samples);
    let mut steps = 0usize;
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(s as u64));
        let selected = sample_endpoints(model, params, env, &mut rng);
        steps += selected.len();
        rewards.push(env.reward(&selected));
    }
    let n = samples.max(1) as f64;
    PolicyEval {
        greedy,
        greedy_selection,
        sample_mean: rewards.iter().sum::<f64>() / n,
        sample_best: rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        sample_worst: rewards.iter().copied().fold(f64::INFINITY, f64::min),
        mean_steps: steps as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RlConfig;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    #[test]
    fn evaluation_reports_consistent_statistics() {
        let d = generate(&DesignSpec::new("eval", 450, TechNode::N7, 71));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let (model, params) = RlCcd::init(RlConfig::fast());
        let eval = evaluate_policy(&model, &params, &env, 3, 5);
        assert!(eval.sample_worst <= eval.sample_mean + 1e-9);
        assert!(eval.sample_mean <= eval.sample_best + 1e-9);
        assert!(eval.mean_steps >= 1.0);
        assert!(!eval.greedy_selection.is_empty());
        assert!(eval.greedy.final_qor.tns_ps <= 0.0);
        // Deterministic given the same seed.
        let again = evaluate_policy(&model, &params, &env, 3, 5);
        assert_eq!(eval.sample_mean, again.sample_mean);
        assert_eq!(eval.greedy_selection, again.greedy_selection);
    }
}
