//! Past-actions encoder (paper Eq. 4, §III-B.2).
//!
//! The paper uses an LSTM to encode the sequence of past selections; its
//! hidden vector is the query the attention decoder consumes. Two ablation
//! variants are provided: a GRU (lighter recurrence) and `None` (a constant
//! zero query — no action history at all), which probes the paper's claim
//! that selections "should not be independent of each other".

use crate::config::{EncoderKind, RlConfig};
use rand::rngs::StdRng;
use rl_ccd_nn::{GruCell, LstmCell, LstmState, ParamBinding, ParamSet, TapeOps, Tensor, Var};

/// Parameter name prefix of the encoder (distinct from [`crate::epgnn::GNN_PREFIX`]
/// so transfer learning can leave it behind).
pub const ENCODER_PREFIX: &str = "enc.";

#[derive(Clone, Debug)]
enum Backend {
    Lstm(LstmCell),
    Gru(GruCell),
    None,
}

/// The past-actions encoder (LSTM by default; GRU / none for ablations).
#[derive(Clone, Debug)]
pub struct ActionEncoder {
    backend: Backend,
    embed_dim: usize,
    hidden: usize,
}

/// Recurrent state of the encoder, holding the current query.
#[derive(Clone, Copy, Debug)]
pub enum EncoderState {
    /// LSTM hidden + cell state.
    Lstm(LstmState),
    /// GRU hidden state.
    Gru(Var),
    /// No history: a constant zero query.
    None(Var),
}

impl EncoderState {
    /// The attention query vector q_t (1×hidden).
    pub fn query(&self) -> Var {
        match self {
            EncoderState::Lstm(s) => s.h,
            EncoderState::Gru(h) => *h,
            EncoderState::None(z) => *z,
        }
    }
}

impl ActionEncoder {
    /// Creates the encoder and registers its parameters.
    pub fn init(config: &RlConfig, params: &mut ParamSet, rng: &mut StdRng) -> Self {
        let backend = match config.encoder {
            EncoderKind::Lstm => Backend::Lstm(LstmCell::init(
                format!("{ENCODER_PREFIX}lstm"),
                config.embed_dim,
                config.lstm_hidden,
                params,
                rng,
            )),
            EncoderKind::Gru => Backend::Gru(GruCell::init(
                format!("{ENCODER_PREFIX}gru"),
                config.embed_dim,
                config.lstm_hidden,
                params,
                rng,
            )),
            EncoderKind::None => Backend::None,
        };
        Self {
            backend,
            embed_dim: config.embed_dim,
            hidden: config.lstm_hidden,
        }
    }

    /// Query vector width.
    pub fn query_dim(&self) -> usize {
        self.hidden
    }

    /// Zero state and zero previous-action embedding for t = 0
    /// (Algorithm 1 line 3).
    pub fn start<T: TapeOps>(&self, tape: &mut T) -> (EncoderState, Var) {
        let zero_embed = tape.leaf(Tensor::zeros(1, self.embed_dim));
        let state = match &self.backend {
            Backend::Lstm(cell) => EncoderState::Lstm(cell.zero_state(tape)),
            Backend::Gru(cell) => EncoderState::Gru(cell.zero_state(tape)),
            Backend::None => EncoderState::None(tape.leaf(Tensor::zeros(1, self.hidden))),
        };
        (state, zero_embed)
    }

    /// Encodes one more selected-endpoint embedding, producing the next
    /// state; `state.query()` is the attention query q_t.
    pub fn step<T: TapeOps>(
        &self,
        tape: &mut T,
        binding: &ParamBinding,
        prev_action_embed: Var,
        state: EncoderState,
    ) -> EncoderState {
        match (&self.backend, state) {
            (Backend::Lstm(cell), EncoderState::Lstm(s)) => {
                EncoderState::Lstm(cell.step(tape, binding, prev_action_embed, s))
            }
            (Backend::Gru(cell), EncoderState::Gru(h)) => {
                EncoderState::Gru(cell.step(tape, binding, prev_action_embed, h))
            }
            (Backend::None, s @ EncoderState::None(_)) => s,
            _ => unreachable!("encoder state kind matches the backend"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rl_ccd_nn::Tape;

    fn config_with(kind: EncoderKind) -> RlConfig {
        let mut cfg = RlConfig::fast();
        cfg.encoder = kind;
        cfg
    }

    #[test]
    fn lstm_query_evolves_with_actions() {
        let cfg = config_with(EncoderKind::Lstm);
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        let enc = ActionEncoder::init(&cfg, &mut params, &mut rng);
        assert_eq!(enc.query_dim(), cfg.lstm_hidden);
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let (s0, zero) = enc.start(&mut tape);
        assert_eq!(tape.value(s0.query()).norm(), 0.0);
        let s1 = enc.step(&mut tape, &binding, zero, s0);
        let fake = tape.leaf(Tensor::from_vec(
            1,
            cfg.embed_dim,
            (0..cfg.embed_dim).map(|i| i as f32 * 0.1).collect(),
        ));
        let s2 = enc.step(&mut tape, &binding, fake, s1);
        assert_ne!(tape.value(s2.query()).data(), tape.value(s1.query()).data());
    }

    #[test]
    fn gru_variant_works_and_uses_gru_params() {
        let cfg = config_with(EncoderKind::Gru);
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        let enc = ActionEncoder::init(&cfg, &mut params, &mut rng);
        assert!(params.iter().all(|(n, _)| n.starts_with("enc.gru")));
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let (s0, zero) = enc.start(&mut tape);
        let s1 = enc.step(&mut tape, &binding, zero, s0);
        assert_eq!(tape.value(s1.query()).shape(), (1, cfg.lstm_hidden));
    }

    #[test]
    fn none_variant_has_no_parameters_and_constant_query() {
        let cfg = config_with(EncoderKind::None);
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        let enc = ActionEncoder::init(&cfg, &mut params, &mut rng);
        assert!(params.is_empty());
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let (s0, zero) = enc.start(&mut tape);
        let s1 = enc.step(&mut tape, &binding, zero, s0);
        assert_eq!(tape.value(s1.query()).norm(), 0.0);
    }

    #[test]
    fn encoder_params_use_enc_prefix() {
        let cfg = config_with(EncoderKind::Lstm);
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamSet::new();
        ActionEncoder::init(&cfg, &mut params, &mut rng);
        assert!(params.iter().all(|(n, _)| n.starts_with(ENCODER_PREFIX)));
        assert!(params.len() >= 12, "4 gates × 3 tensors");
    }
}
