//! The [`RolloutExecutor`] abstraction — where an iteration's rollouts run.
//!
//! The trainer ([`crate::reinforce`]) decides *what* to run each
//! iteration: one `(slot, seed)` pair per configured worker, with seeds a
//! pure function of the config seed and the iteration index. An executor
//! decides *where* those rollouts run: [`LocalExecutor`] fans them out
//! over in-process threads (the paper's single-machine setting), while
//! `rl-ccd-dist` ships them to worker processes over TCP.
//!
//! # The determinism contract
//!
//! Every executor must return, for each surviving `(slot, seed)` pair,
//! the *exact* rollout a single-process run would have produced: the
//! trajectory, reward and `∇ Σ log π` gradient are pure functions of
//! `(params, env, seed)`, so where and when the rollout ran — and whether
//! it was retried after a worker failure — cannot change its value.
//! Executors may return rollouts in any order; the trainer sorts by slot
//! before reducing, so gradient aggregation is fixed by seed index, never
//! by completion order. Together these make training bit-identical across
//! executors, worker counts, timing, and retries.

use crate::agent::RlCcd;
use crate::config::RlConfig;
use crate::env::CcdEnv;
use crate::fault::{FaultPlan, RolloutFault};
use crate::parallel::run_rollouts_assigned;
use rl_ccd_netlist::EndpointId;
use rl_ccd_nn::{GradSet, ParamSet};
use std::fmt;

/// One iteration's worth of rollout work, as handed to an executor.
#[derive(Debug)]
pub struct RolloutRequest<'a> {
    /// Training iteration index (tags fault records and addresses the
    /// fault plan).
    pub iteration: usize,
    /// `(slot, seed)` pairs to run — slot is the worker index within the
    /// iteration, seed fully determines the rollout.
    pub pairs: &'a [(usize, u64)],
    /// Current policy parameters.
    pub params: &'a ParamSet,
    /// The model architecture (local executors share the trainer's
    /// instance; remote workers hold their own copy built from the same
    /// config).
    pub model: &'a RlCcd,
    /// The environment (remote workers hold their own copy built from the
    /// same design and recipe).
    pub env: &'a CcdEnv,
    /// The RL configuration (tape memory budget, quorum, …).
    pub config: &'a RlConfig,
    /// Deterministic fault injection; [`FaultPlan::none`] outside tests.
    pub plan: &'a FaultPlan,
}

/// One executed rollout, slim enough to cross a process boundary: the
/// flow result is *not* carried — the trainer recomputes the champion's
/// [`rl_ccd_flow::FlowResult`] from the selection (deterministically),
/// so only the reward travels.
#[derive(Clone, Debug)]
pub struct ExecutedRollout {
    /// The worker slot this rollout was assigned to.
    pub slot: usize,
    /// The rollout's sampling seed.
    pub seed: u64,
    /// Selected endpoints, in selection order.
    pub selected: Vec<EndpointId>,
    /// Trajectory length.
    pub steps: usize,
    /// Trajectory reward: final TNS in ps.
    pub reward: f64,
    /// Gradient of the trajectory's total log-probability (unscaled; the
    /// trainer scales by −advantage and merges in slot order).
    pub log_prob_grads: GradSet,
}

/// What an executor hands back for one iteration.
#[derive(Debug, Default)]
pub struct ExecutorBatch {
    /// Surviving rollouts (any order; the trainer sorts by slot).
    pub rollouts: Vec<ExecutedRollout>,
    /// One record per quarantined rollout.
    pub faults: Vec<RolloutFault>,
}

/// Where an iteration's rollouts run. See the module docs for the
/// determinism contract implementations must uphold.
pub trait RolloutExecutor: Send + fmt::Debug {
    /// Runs every `(slot, seed)` pair of `req` and returns survivors and
    /// fault records. Must not panic on worker failure — failures are
    /// quarantined into [`RolloutFault`] records.
    fn run_batch(&mut self, req: &RolloutRequest<'_>) -> ExecutorBatch;
}

/// The in-process executor: rollouts fan out over scoped threads, chunked
/// by the tape memory model — exactly the paper's single-machine setting.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalExecutor;

impl RolloutExecutor for LocalExecutor {
    fn run_batch(&mut self, req: &RolloutRequest<'_>) -> ExecutorBatch {
        let batch = run_rollouts_assigned(
            req.model,
            req.params,
            req.env,
            req.pairs,
            req.iteration,
            req.config.tape_memory_budget,
            req.plan,
        );
        let seed_of = |slot: usize| {
            req.pairs
                .iter()
                .find(|(s, _)| *s == slot)
                .map(|&(_, seed)| seed)
                .unwrap_or_default()
        };
        ExecutorBatch {
            rollouts: batch
                .survivors
                .into_iter()
                .map(|(slot, r)| ExecutedRollout {
                    slot,
                    seed: seed_of(slot),
                    reward: r.reward(),
                    selected: r.selected,
                    steps: r.steps,
                    log_prob_grads: r.log_prob_grads,
                })
                .collect(),
            faults: batch.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_flow::FlowRecipe;
    use rl_ccd_netlist::{generate, DesignSpec, TechNode};

    /// Returns rollouts in an adversarial order (reversed, then rotated by
    /// one) — a stand-in for a distributed executor whose workers finish
    /// in arbitrary order.
    #[derive(Debug)]
    struct ShufflingExecutor;

    impl RolloutExecutor for ShufflingExecutor {
        fn run_batch(&mut self, req: &RolloutRequest<'_>) -> ExecutorBatch {
            let mut batch = LocalExecutor.run_batch(req);
            batch.rollouts.reverse();
            if batch.rollouts.len() > 1 {
                batch.rollouts.rotate_left(1);
            }
            batch
        }
    }

    /// The reduction-order pin: gradient aggregation is fixed by seed
    /// index, never by completion order, so an executor that returns
    /// rollouts in any order trains bit-identically.
    #[test]
    fn gradient_reduction_order_is_fixed_by_slot_not_completion() {
        use crate::reinforce::{try_train_with, TrainSession};
        let d = generate(&DesignSpec::new("exec-order", 450, TechNode::N7, 62));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let config = RlConfig {
            workers: 4,
            ..RlConfig::fast()
        };
        let ordered =
            try_train_with(&env, &config, TrainSession::default(), &mut LocalExecutor).unwrap();
        let shuffled = try_train_with(
            &env,
            &config,
            TrainSession::default(),
            &mut ShufflingExecutor,
        )
        .unwrap();
        assert_eq!(
            ordered.params, shuffled.params,
            "final parameters must be bit-identical regardless of rollout return order"
        );
        assert_eq!(ordered.best_selection, shuffled.best_selection);
        assert_eq!(
            ordered.best_result.final_qor.tns_ps,
            shuffled.best_result.final_qor.tns_ps
        );
    }

    #[test]
    fn local_executor_matches_supervised_runner() {
        let d = generate(&DesignSpec::new("exec", 450, TechNode::N7, 61));
        let env = CcdEnv::new(d, FlowRecipe::default(), 24);
        let config = RlConfig::fast();
        let (model, params) = RlCcd::init(config.clone());
        let pairs = [(0usize, 500u64), (1, 501)];
        let plan = FaultPlan::none();
        let req = RolloutRequest {
            iteration: 0,
            pairs: &pairs,
            params: &params,
            model: &model,
            env: &env,
            config: &config,
            plan: &plan,
        };
        let batch = LocalExecutor.run_batch(&req);
        assert_eq!(batch.rollouts.len(), 2);
        assert!(batch.faults.is_empty());
        let direct = crate::parallel::run_rollouts(&model, &params, &env, &[500, 501]);
        for (got, want) in batch.rollouts.iter().zip(&direct) {
            assert_eq!(got.selected, want.selected);
            assert_eq!(got.reward, want.reward());
            assert_eq!(got.steps, want.steps);
        }
        assert_eq!(batch.rollouts[0].seed, 500);
        assert_eq!(batch.rollouts[1].seed, 501);
    }
}
