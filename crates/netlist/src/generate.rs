//! Synthetic design generation.
//!
//! The paper evaluates on 19 confidential industrial designs; this module
//! generates seeded synthetic analogues with the structural properties the
//! RL agent's decision problem depends on:
//!
//! * **Cluster structure** — cells are grouped into placed regions whose
//!   endpoints share logic (overlapping fan-in cones), so the paper's
//!   cone-overlap masking has real work to do.
//! * **Endpoint heterogeneity** — clusters come in three flavours, chosen so
//!   that the criticality order the native tool serves *disagrees* with the
//!   fixability order (the disagreement the paper exploits):
//!   - *chain*: balanced register-to-register pipelines with weak drives and
//!     long wires — the **worst** violations, but skewing a chain register
//!     steals exactly the slack it grants (zero-sum for skew) while sizing
//!     and buffering work. The native skew engine wastes its
//!     criticality-ordered effort here; data-path optimization is the right
//!     tool. RL should *not* prioritize these.
//!   - *deep*: moderately-violating, drive-saturated logic captured by
//!     registers with idle launch sides — data-path optimization is nearly
//!     exhausted but a clock shift fixes them for free. The native flow
//!     never reaches them (they rank below the chains); RL *should*
//!     prioritize them.
//!   - *normal*: shallow logic that mostly meets timing.
//! * **Calibrated clock period** — chosen so a target fraction of endpoints
//!   violate after global placement, like the "begin" columns of Table II.

use crate::builder::NetlistBuilder;
use crate::cell::{Drive, GateKind, Point};
use crate::graph::Netlist;
use crate::ids::CellId;
use crate::library::{Library, TechNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for one synthetic design.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpec {
    /// Design name (e.g. "block11").
    pub name: String,
    /// Approximate total cell count (gates + registers + ports).
    pub target_cells: usize,
    /// Technology node.
    pub tech: TechNode,
    /// RNG seed; everything about the design is deterministic given this.
    pub seed: u64,
    /// Fraction of cells that are flip-flops.
    pub flop_frac: f32,
    /// Typical combinational depth of a normal cluster.
    pub base_depth: usize,
    /// Fraction of clusters that are deep (2× depth, saturated drives).
    pub deep_frac: f32,
    /// Fraction of clusters that are balanced register chains.
    pub chain_frac: f32,
    /// Target fraction of endpoints violating at the calibrated period.
    pub viol_frac: f32,
    /// Side length of one placement region in µm.
    pub region_um: f32,
}

impl DesignSpec {
    /// A reasonable default spec for a given size and seed.
    pub fn new(name: impl Into<String>, target_cells: usize, tech: TechNode, seed: u64) -> Self {
        Self {
            name: name.into(),
            target_cells,
            tech,
            seed,
            flop_frac: 0.13,
            base_depth: 7,
            deep_frac: 0.30,
            chain_frac: 0.25,
            viol_frac: 0.45,
            region_um: 60.0,
        }
    }
}

/// Which cluster flavour a cell or endpoint was generated in. Exposed for
/// analysis and tests; the RL agent never sees it (it must learn the
/// distinction from Table I features).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClusterClass {
    /// Shallow logic, mostly meeting timing.
    Normal,
    /// Drive-saturated, moderately-violating, clock-fixable logic.
    Deep,
    /// Weak-drive, long-wire register chains: worst violations, data-fixable.
    Chain,
}

/// A generated design: the placed netlist plus its calibrated clock period.
#[derive(Clone, Debug)]
pub struct GeneratedDesign {
    /// The placed netlist.
    pub netlist: Netlist,
    /// Clock period in ps, calibrated so ≈`viol_frac` of endpoints violate.
    pub period_ps: f32,
    /// The spec used to generate the design.
    pub spec: DesignSpec,
    /// Ground-truth cluster class per endpoint (diagnostics only).
    pub endpoint_class: Vec<ClusterClass>,
}

impl GeneratedDesign {
    /// Endpoint counts per cluster class `(normal, deep, chain)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut n = (0, 0, 0);
        for c in &self.endpoint_class {
            match c {
                ClusterClass::Normal => n.0 += 1,
                ClusterClass::Deep => n.1 += 1,
                ClusterClass::Chain => n.2 += 1,
            }
        }
        n
    }
}

type ClusterKind = ClusterClass;

/// Weighted random gate function for logic levels.
fn random_gate(rng: &mut StdRng) -> GateKind {
    const TABLE: [(GateKind, f32); 10] = [
        (GateKind::Nand2, 0.20),
        (GateKind::Inv, 0.15),
        (GateKind::And2, 0.12),
        (GateKind::Nor2, 0.10),
        (GateKind::Or2, 0.10),
        (GateKind::Xor2, 0.08),
        (GateKind::Aoi21, 0.08),
        (GateKind::Oai21, 0.06),
        (GateKind::Mux2, 0.06),
        (GateKind::Buf, 0.05),
    ];
    let mut x: f32 = rng.gen_range(0.0..1.0);
    for (kind, w) in TABLE {
        if x < w {
            return kind;
        }
        x -= w;
    }
    GateKind::Nand2
}

struct ClusterPlan {
    kind: ClusterKind,
    center: Point,
    flops: usize,
    gates: usize,
    pis: usize,
    depth: usize,
}

/// Generates a placed synthetic design per `spec`.
///
/// # Panics
/// Panics if `target_cells` is too small to host at least one cluster
/// (roughly < 60 cells).
pub fn generate(spec: &DesignSpec) -> GeneratedDesign {
    assert!(
        spec.target_cells >= 60,
        "target_cells too small for a structured design"
    );
    let _obs_span = rl_ccd_obs::span!(
        "netlist.generate",
        target_cells = spec.target_cells,
        seed = spec.seed,
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let lib = Library::new(spec.tech);
    let mut b = NetlistBuilder::new(spec.name.clone(), lib);

    let n_flops = ((spec.target_cells as f32 * spec.flop_frac) as usize).max(8);
    let flops_per_cluster = 6usize;
    let n_clusters = (n_flops / flops_per_cluster).max(2);
    let n_gates = spec
        .target_cells
        .saturating_sub(n_flops)
        .max(n_clusters * 10);
    let gates_per_cluster = n_gates / n_clusters;
    let grid = (n_clusters as f32).sqrt().ceil() as usize;

    // Plan clusters.
    let mut plans = Vec::with_capacity(n_clusters);
    for c in 0..n_clusters {
        let r: f32 = rng.gen_range(0.0..1.0);
        let kind = if r < spec.deep_frac {
            ClusterKind::Deep
        } else if r < spec.deep_frac + spec.chain_frac {
            ClusterKind::Chain
        } else {
            ClusterKind::Normal
        };
        let gx = (c % grid) as f32;
        let gy = (c / grid) as f32;
        plans.push(ClusterPlan {
            kind,
            center: Point::new((gx + 0.5) * spec.region_um, (gy + 0.5) * spec.region_um),
            flops: flops_per_cluster,
            gates: gates_per_cluster,
            pis: 2,
            depth: match kind {
                // Deep clusters: drive-saturated (fast per level) but ~2.5×
                // as deep, so intrinsic delay dominates and sizing cannot
                // help. Depth is tuned so their arrivals land moderately
                // above the period (most captures violate by a margin a
                // single clock move can erase) yet *below* the chains' — the
                // native worst-first skew queue must reach the chains before
                // the deep endpoints for prioritization to have an edge.
                ClusterKind::Deep => spec.base_depth * 5 / 2,
                // Chains: weak drives and zig-zag wires make each level
                // slow, and a couple of extra levels per stage push them to
                // the worst arrivals in the design.
                ClusterKind::Chain => spec.base_depth + 3,
                ClusterKind::Normal => spec.base_depth,
            },
        });
    }

    // Build clusters; collect cross-cluster tap points (outputs of earlier
    // clusters available as extra inputs) and tag endpoints by class.
    //
    // Chain clusters are built first so deep clusters can pair with them
    // into "districts": the deep lanes tap the chain's shared spine. The
    // spine then sits in both cone families with asymmetric ratios —
    // selecting a deep endpoint masks the district's chain endpoints
    // (spine dominates their small stage cones) while selecting a chain
    // endpoint does *not* mask the deep ones (the spine is a sliver of
    // their long lanes). This asymmetry is the decision structure the
    // paper's agent learns to exploit.
    let mut cross_taps: Vec<CellId> = Vec::new();
    let mut all_unused: Vec<CellId> = Vec::new();
    let mut endpoint_class = vec![ClusterClass::Normal; 0];
    let mut spine_tails: Vec<(CellId, Point)> = Vec::new();
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| match plans[i].kind {
        ClusterKind::Chain => 0,
        ClusterKind::Deep => 1,
        ClusterKind::Normal => 2,
    });
    for &pi in &order {
        let plan = &plans[pi];
        let before = b.as_netlist().endpoints().len();
        // Deep clusters pair with the *nearest* unclaimed chain spine; a
        // far-away tap would add a die-spanning wire that dominates the
        // lane delay instead of a small cone overlap.
        let spine_tap = if plan.kind == ClusterKind::Deep {
            let nearest = spine_tails
                .iter()
                .enumerate()
                .min_by(|(_, (_, a)), (_, (_, b))| {
                    a.manhattan(plan.center)
                        .total_cmp(&b.manhattan(plan.center))
                })
                .map(|(i, (_, c))| (i, c.manhattan(plan.center)));
            match nearest {
                Some((i, dist)) if dist < 2.5 * spec.region_um => {
                    Some(spine_tails.swap_remove(i).0)
                }
                _ => None,
            }
        } else {
            None
        };
        let tail = build_cluster(
            &mut b,
            plan,
            spec,
            &mut rng,
            &mut cross_taps,
            &mut all_unused,
            spine_tap,
        );
        if let Some(t) = tail {
            spine_tails.push((t, plan.center));
        }
        let after = b.as_netlist().endpoints().len();
        endpoint_class.extend(std::iter::repeat_n(plan.kind, after - before));
    }

    // Still-unused outputs are left dangling (unconstrained), like logic a
    // real block exports but the current timing context does not constrain.
    // Constraining them as critical primary outputs would flood the design
    // with violations no clock optimization could ever touch.
    drop(all_unused);

    let netlist = b.finish().expect("generator must produce a valid netlist");
    debug_assert_eq!(endpoint_class.len(), netlist.endpoints().len());
    let period_ps = calibrate_period(&netlist, spec.viol_frac);
    GeneratedDesign {
        netlist,
        period_ps,
        spec: spec.clone(),
        endpoint_class,
    }
}

fn jitter(p: Point, r: f32, rng: &mut StdRng) -> Point {
    Point::new(p.x + rng.gen_range(-r..=r), p.y + rng.gen_range(-r..=r))
}

fn cluster_loc(plan: &ClusterPlan, depth_pos: f32, region: f32, rng: &mut StdRng) -> Point {
    // Paths flow left→right within the region; depth_pos in [0,1]. Deep
    // clusters are packed tight (short wires: buffering cannot help them);
    // the others spread across the region.
    let (span, y_spread) = match plan.kind {
        ClusterKind::Deep => (0.4, 0.15),
        _ => (0.8, 0.4),
    };
    let x = plan.center.x + (depth_pos - 0.5) * region * span + rng.gen_range(-3.0..3.0);
    let y = plan.center.y + rng.gen_range(-region * y_spread..region * y_spread);
    Point::new(x, y)
}

/// Chain-cluster gate placement: a zig-zag across the region so every logic
/// level crosses a long wire — the violations buffering is made for.
fn chain_loc(
    plan: &ClusterPlan,
    depth_pos: f32,
    level: usize,
    region: f32,
    rng: &mut StdRng,
) -> Point {
    let zig = if level.is_multiple_of(2) { -0.4 } else { 0.4 };
    let x = plan.center.x + (depth_pos - 0.5) * region * 1.6 + rng.gen_range(-3.0..3.0);
    let y = plan.center.y + zig * region + rng.gen_range(-4.0..4.0);
    Point::new(x, y)
}

/// Random drive strength; deep clusters are fully saturated (X8, the top of
/// the library) so sizing has *no* headroom, chains start weakest (maximal
/// sizing headroom).
fn random_drive(kind: ClusterKind, rng: &mut StdRng) -> Drive {
    match kind {
        ClusterKind::Deep => Drive::X8,
        ClusterKind::Chain => Drive::X1,
        ClusterKind::Normal => {
            if rng.gen_bool(0.7) {
                Drive::X1
            } else {
                Drive::X2
            }
        }
    }
}

/// Builds one cluster. Chain clusters return their spine tail so a deep
/// cluster can pair with them into a district; deep clusters consume
/// `spine_tap` (the partner's spine tail) as an extra lane input.
fn build_cluster(
    b: &mut NetlistBuilder,
    plan: &ClusterPlan,
    spec: &DesignSpec,
    rng: &mut StdRng,
    cross_taps: &mut Vec<CellId>,
    all_unused: &mut Vec<CellId>,
    spine_tap: Option<CellId>,
) -> Option<CellId> {
    match plan.kind {
        ClusterKind::Chain => Some(build_chain_cluster(
            b, plan, spec, rng, cross_taps, all_unused,
        )),
        _ => {
            build_dag_cluster(b, plan, spec, rng, cross_taps, all_unused, spine_tap);
            None
        }
    }
}

/// Picks an input driver: prefer unused outputs of the previous level, then
/// any lower level, then startpoints, then (rarely) a cross-cluster tap.
fn pick_input(
    rng: &mut StdRng,
    prev_unused: &mut Vec<CellId>,
    lower: &[CellId],
    starts: &[CellId],
    cross_taps: &[CellId],
) -> CellId {
    if !prev_unused.is_empty() && rng.gen_bool(0.65) {
        let i = rng.gen_range(0..prev_unused.len());
        return prev_unused.swap_remove(i);
    }
    let roll: f32 = rng.gen_range(0.0..1.0);
    if roll < 0.12 && !cross_taps.is_empty() {
        return cross_taps[rng.gen_range(0..cross_taps.len())];
    }
    if roll < 0.55 && !lower.is_empty() {
        return lower[rng.gen_range(0..lower.len())];
    }
    starts[rng.gen_range(0..starts.len())]
}

/// Builds one strictly-layered logic lane: every input comes from the
/// immediately previous level, so min-path ≈ max-path — the property that
/// keeps deep capture registers hold-safe (genuinely clock-fixable).
/// Returns the last level's cells.
#[allow(clippy::too_many_arguments)]
fn build_strict_lane(
    b: &mut NetlistBuilder,
    plan: &ClusterPlan,
    rng: &mut StdRng,
    starts: &[CellId],
    first_input: Option<CellId>,
    depth: usize,
    per_level: usize,
    region: f32,
    all_unused: &mut Vec<CellId>,
) -> Vec<CellId> {
    let mut prev_level: Vec<CellId> = starts.to_vec();
    let mut prev_unused: Vec<CellId> = starts.to_vec();
    let mut first_input = first_input;
    let mut last = Vec::new();
    for level in 0..depth {
        let mut this_level = Vec::with_capacity(per_level);
        let depth_pos = (level + 1) as f32 / (depth + 1) as f32;
        for _ in 0..per_level {
            // No inverters or buffers in a deep lane: an INV behind a
            // NAND/NOR is a restructuring target (absorbing it removes a
            // level), which would hand the data-path engine exactly the
            // foothold deep lanes must not offer.
            let kind = loop {
                let k = random_gate(rng);
                if !matches!(k, GateKind::Inv | GateKind::Buf) {
                    break k;
                }
            };
            let loc = cluster_loc(plan, depth_pos, region, rng);
            let g = b.gate(kind, random_drive(plan.kind, rng), loc);
            for pin in 0..kind.input_count() {
                // Guarantee the mandated first input (the district spine
                // tail) lands in the lane's cone.
                if pin == 0 {
                    if let Some(tap) = first_input.take() {
                        b.drive(tap, g);
                        continue;
                    }
                }
                let drv = if !prev_unused.is_empty() {
                    let i = rng.gen_range(0..prev_unused.len());
                    prev_unused.swap_remove(i)
                } else {
                    prev_level[rng.gen_range(0..prev_level.len())]
                };
                b.drive(drv, g);
            }
            this_level.push(g);
        }
        all_unused.extend(prev_unused.iter().copied());
        prev_unused = this_level.clone();
        prev_level = this_level.clone();
        last = this_level;
    }
    last
}

/// A shared-DAG cluster.
///
/// *Normal* clusters: half the flops launch into one shared DAG, half
/// capture from its top — their fan-in cones overlap heavily, so selecting
/// one masks its siblings (rich masking dynamics, moderate timing).
///
/// *Deep* clusters: a small number of capture registers, each fed by its
/// **own** strictly-layered lane — cones are disjoint, so deep endpoints
/// never mask each other: each one must be individually prioritized, which
/// is exactly the structure that rewards intelligent selection.
fn build_dag_cluster(
    b: &mut NetlistBuilder,
    plan: &ClusterPlan,
    spec: &DesignSpec,
    rng: &mut StdRng,
    cross_taps: &mut Vec<CellId>,
    all_unused: &mut Vec<CellId>,
    spine_tap: Option<CellId>,
) {
    let region = spec.region_um;
    let n_capture = match plan.kind {
        ClusterKind::Deep => 2.min(plan.flops - 1),
        _ => plan.flops / 2,
    };
    let n_launch = plan.flops - n_capture;
    let mut launchers = Vec::with_capacity(n_launch);
    for _ in 0..n_launch {
        let loc = cluster_loc(plan, 0.0, region, rng);
        launchers.push(b.flop(random_drive(plan.kind, rng), loc));
    }
    let mut starts = launchers.clone();
    for _ in 0..plan.pis {
        let loc = cluster_loc(plan, 0.0, region, rng);
        starts.push(b.input(loc));
    }

    // Registered interfaces are only tapped from nearby clusters: real
    // placement keeps connectivity local, and unbounded taps would create
    // die-spanning wires that dominate timing as the design grows.
    let near_taps: Vec<CellId> = cross_taps
        .iter()
        .copied()
        .filter(|&c| b.as_netlist().cell(c).loc.manhattan(plan.center) < 2.5 * region)
        .collect();

    let depth = plan.depth.max(2);
    let mut capture_drivers: Vec<CellId> = Vec::new();
    if plan.kind == ClusterKind::Deep {
        // One private strict lane per capture register. When the cluster is
        // paired with a chain district, every lane starts from the chain's
        // spine tail: the spine joins the lane cone as a small fraction
        // (< ρ, so chains never mask deep endpoints) while dominating the
        // chain stages' cones (> ρ, so a deep selection masks the chains).
        let per_level = (plan.gates / (depth * n_capture)).max(1);
        for _ in 0..n_capture {
            let top = build_strict_lane(
                b, plan, rng, &starts, spine_tap, depth, per_level, region, all_unused,
            );
            capture_drivers.push(top[rng.gen_range(0..top.len())]);
        }
    } else {
        // One shared loosely-layered DAG; captures read its top level.
        let per_level = (plan.gates / depth).max(1);
        let mut lower: Vec<CellId> = Vec::new();
        let mut prev_unused: Vec<CellId> = starts.clone();
        let mut top: Vec<CellId> = Vec::new();
        for level in 0..depth {
            let mut this_level = Vec::with_capacity(per_level);
            let depth_pos = (level + 1) as f32 / (depth + 1) as f32;
            for _ in 0..per_level {
                let kind = random_gate(rng);
                let loc = cluster_loc(plan, depth_pos, region, rng);
                let g = b.gate(kind, random_drive(plan.kind, rng), loc);
                for _ in 0..kind.input_count() {
                    let drv = pick_input(rng, &mut prev_unused, &lower, &starts, &near_taps);
                    b.drive(drv, g);
                }
                this_level.push(g);
            }
            lower.extend(prev_unused.iter().copied());
            prev_unused = this_level.clone();
            if level == depth - 1 {
                top = this_level;
            }
        }
        all_unused.extend(lower.iter().copied().filter(|&c| {
            b.as_netlist()
                .net(b.output_net(c).expect("has output"))
                .sinks
                .is_empty()
        }));
        for i in 0..n_capture {
            let drv = if !top.is_empty() {
                top[i % top.len()]
            } else {
                starts[i % starts.len()]
            };
            capture_drivers.push(drv);
        }
        all_unused.extend(top.iter().copied().filter(|c| !capture_drivers.contains(c)));
    }

    // Capture flops: Q drives only a light buffer→PO side load, so their
    // launch side has headroom to donate to useful skew.
    for drv in capture_drivers {
        let loc = cluster_loc(plan, 1.0, region, rng);
        let f = b.flop(random_drive(ClusterKind::Normal, rng), loc);
        b.drive(drv, f);
        let buf_loc = jitter(loc, 2.0, rng);
        let buf = b.gate(GateKind::Buf, Drive::X1, buf_loc);
        b.drive(f, buf);
        let po = b.output(jitter(buf_loc, 2.0, rng));
        b.drive(buf, po);
    }

    // Launcher flop D inputs: short side paths (1 gate from a PI/top tap),
    // so launchers are launch-dominated.
    for &f in &launchers {
        let loc = b.as_netlist().cell(f).loc;
        let g = b.gate(GateKind::Buf, Drive::X2, jitter(loc, 2.0, rng));
        let drv = starts[rng.gen_range(launchers.len()..starts.len())]; // a PI
        b.drive(drv, g);
        b.drive(g, f);
    }

    // Expose *registered* interfaces to later clusters: tapping a launcher's
    // Q pin adds load and cross-cluster skew coupling without chaining
    // combinational delay across clusters (real blocks register their
    // interfaces).
    cross_taps.extend(launchers.iter().copied());
    // Keep cross_taps bounded.
    if cross_taps.len() > 256 {
        let excess = cross_taps.len() - 256;
        cross_taps.drain(0..excess);
    }
}

/// A balanced register chain: R0 → logic → R1 → logic → … → Rk. Stage
/// delays are similar, so delaying one register's clock helps its input
/// stage exactly as much as it hurts its output stage — skew is zero-sum,
/// and data-path optimization (unsaturated drives) is the right fix.
fn build_chain_cluster(
    b: &mut NetlistBuilder,
    plan: &ClusterPlan,
    spec: &DesignSpec,
    rng: &mut StdRng,
    cross_taps: &mut Vec<CellId>,
    all_unused: &mut Vec<CellId>,
) -> CellId {
    let region = spec.region_um;
    let stages = plan.flops.max(2);
    let gates_per_stage = (plan.gates / stages).max(2);
    // Stage depth: same for all stages (balanced → skew is zero-sum).
    let depth = plan.depth;
    let per_level = (gates_per_stage / depth).max(1);

    let pi = b.input(cluster_loc(plan, 0.0, region, rng));

    // Shared spine: a buffer chain from the PI whose tail every stage taps.
    // It puts the same combinational cells into every stage's fan-in cone,
    // which is what gives chain endpoints the high cone overlap that lets
    // one selection mask the whole cluster (paper Fig. 3 dynamics).
    // Sized so the spine dominates a stage cone (ratio ≈ 0.4 > ρ = 0.3)
    // yet stays a sliver of a district-paired deep lane, whose size is
    // ≈ 3× a stage (ratio ≈ 0.19 < ρ) — proportional, so the asymmetry
    // survives any design scale.
    // The spine is saturated (X8 buffers): it sits in every stage cone *and*
    // every district-paired deep lane, so if sizing could speed it up, the
    // data-path engine tuning it for the chains would silently erase the
    // deep clusters' violations as a side effect — the decision structure
    // only survives if the shared cells are untunable.
    let spine_len = (gates_per_stage * 7 / 10).max(6);
    let mut spine_tail = pi;
    for i in 0..spine_len {
        let pos = i as f32 / spine_len as f32;
        let g = b.gate(
            GateKind::Buf,
            Drive::X8,
            cluster_loc(plan, pos, region, rng),
        );
        b.drive(spine_tail, g);
        spine_tail = g;
    }

    let mut prev_q: CellId = pi; // source feeding the first stage
    let mut flops = Vec::new();
    // One extra stage seals the chain tail: the last register launches into
    // a full logic stage before the PO, so the tail endpoint violates like
    // every interior stage. Without it the last flop drives the PO through a
    // bare wire, and that ~half-period of slack is a reservoir the skew
    // engine can cascade the whole chain's violations into (shift every
    // register progressively later, retiring each stage's deficit into the
    // idle tail) — chains would be clock-fixable after all.
    for s in 0..=stages {
        let frac = s as f32 / (stages + 1) as f32;
        // Stage wiring keeps the stages *balanced* (the property that makes
        // skew zero-sum on a chain): every gate's first pin continues the
        // chain from the previous level, side pins return to the stage
        // source, and the spine enters the cone exactly once. Tapping
        // random lower cells or cross-cluster interfaces here would give
        // mid-chain cells unpredictable fanout load on their weak drives,
        // spreading stage delays so far apart that chains grow harvestable
        // launch headroom and stop being the skew trap they document.
        let mut prev_level: Vec<CellId> = vec![prev_q];
        let mut prev_unused: Vec<CellId> = vec![prev_q];
        let mut lower: Vec<CellId> = Vec::new();
        let mut spine_pin_pending = true;
        let mut last_level: Vec<CellId> = Vec::new();
        for level in 0..depth {
            let mut this_level = Vec::with_capacity(per_level);
            let pos = frac + (level as f32 / depth as f32) / stages as f32;
            for _ in 0..per_level {
                let kind = random_gate(rng);
                let g = b.gate(
                    kind,
                    random_drive(ClusterKind::Chain, rng),
                    chain_loc(plan, pos, level, region, rng),
                );
                for pin in 0..kind.input_count() {
                    let drv = if pin == 0 {
                        if !prev_unused.is_empty() {
                            let i = rng.gen_range(0..prev_unused.len());
                            prev_unused.swap_remove(i)
                        } else {
                            prev_level[rng.gen_range(0..prev_level.len())]
                        }
                    } else if spine_pin_pending {
                        spine_pin_pending = false;
                        spine_tail
                    } else {
                        prev_q
                    };
                    b.drive(drv, g);
                }
                this_level.push(g);
            }
            lower.extend(prev_unused.iter().copied());
            prev_unused = this_level.clone();
            prev_level = this_level.clone();
            last_level = this_level;
        }
        // Endpoint capturing this stage: a register for interior stages, the
        // sealed PO for the tail stage.
        let drv = last_level[rng.gen_range(0..last_level.len())];
        if s < stages {
            let f = b.flop(
                random_drive(ClusterKind::Chain, rng),
                cluster_loc(plan, (s + 1) as f32 / (stages + 1) as f32, region, rng),
            );
            b.drive(drv, f);
            flops.push(f);
            prev_q = f;
        } else {
            let po = b.output(cluster_loc(plan, 1.0, region, rng));
            b.drive(drv, po);
        }
        // Unused outputs of this stage.
        let unused: Vec<CellId> = lower
            .iter()
            .chain(last_level.iter())
            .copied()
            .filter(|&c| {
                c != drv
                    && b.as_netlist()
                        .net(b.output_net(c).expect("gate output"))
                        .sinks
                        .is_empty()
            })
            .collect();
        all_unused.extend(unused);
    }
    cross_taps.extend(flops.last().copied());
    spine_tail
}

/// Nominal (slew-free) longest-path arrival estimate at every endpoint, used
/// only for period calibration. The real timing engine lives in the `sta`
/// crate; this estimator intentionally uses the same delay structure
/// (intrinsic + resistance·load + wire) without slew so the two agree
/// closely.
fn endpoint_arrivals(netlist: &Netlist) -> Vec<f32> {
    let lib = netlist.library();
    let order = crate::power::topological_comb(netlist);
    let mut out_arrival = vec![0.0f32; netlist.cell_count()];
    // Launch points.
    for id in netlist.cell_ids() {
        out_arrival[id.index()] = match netlist.kind(id) {
            GateKind::Dff => lib.cell(netlist.cell(id).lib).intrinsic,
            GateKind::Input => 0.0,
            _ => 0.0,
        };
    }
    let arrival_at = |netlist: &Netlist, out_arrival: &[f32], cell: CellId| -> f32 {
        let mut worst = 0.0f32;
        for &net in &netlist.cell(cell).inputs {
            let drv = netlist.net(net).driver;
            let seg = netlist.segment_length(net, cell);
            let wire = lib
                .wire()
                .delay(seg, lib.cell(netlist.cell(cell).lib).input_cap);
            let a = out_arrival[drv.index()] + wire;
            worst = worst.max(a);
        }
        worst
    };
    for id in order {
        let lc = lib.cell(netlist.cell(id).lib);
        let load = netlist
            .cell(id)
            .output
            .map(|n| netlist.net_load(n))
            .unwrap_or(0.0);
        let in_arr = arrival_at(netlist, &out_arrival, id);
        out_arrival[id.index()] = in_arr + lc.intrinsic + lc.resistance * load;
    }
    netlist
        .endpoints()
        .iter()
        .map(|ep| {
            let cell = ep.cell();
            let lc = lib.cell(netlist.cell(cell).lib);
            arrival_at(netlist, &out_arrival, cell) + lc.setup
        })
        .collect()
}

/// Chooses the clock period so ≈`viol_frac` of the *constrained* endpoints
/// violate at the nominal-delay estimate.
///
/// Designs contain a mass of trivially-met endpoints (registered interfaces,
/// port-side registers); including them in the quantile would park the
/// period at interface-logic scale and make real paths violate by multiples
/// of the period. The quantile is therefore taken over the endpoints whose
/// estimated arrival exceeds 35 % of the design maximum.
fn calibrate_period(netlist: &Netlist, viol_frac: f32) -> f32 {
    let arrivals = endpoint_arrivals(netlist);
    let max = arrivals.iter().copied().fold(0.0f32, f32::max);
    if max <= 0.0 {
        return 1000.0;
    }
    let mut tail: Vec<f32> = arrivals
        .iter()
        .copied()
        .filter(|&a| a > 0.35 * max)
        .collect();
    tail.sort_by(f32::total_cmp);
    let q = (1.0 - viol_frac.clamp(0.01, 0.95)) as f64;
    let idx = ((tail.len() - 1) as f64 * q).round() as usize;
    // Slew effects (ignored by the estimate) add delay, so bias slightly up.
    (tail[idx] * 1.02).max(1.0)
}

/// The 19-block benchmark suite mirroring Table II's designs, scaled down
/// ~100× in cell count (the paper's blocks are 84 K–1.3 M cells).
///
/// `scale` further multiplies the cell counts; `1.0` gives the default
/// ~800–13 000-cell designs. Relative size ordering, technology mix, and
/// violation-severity profile follow the paper's begin columns.
pub fn block_suite(scale: f32) -> Vec<DesignSpec> {
    // (name, paper cells, tech, viol_frac, deep_frac, chain_frac)
    let rows: [(&str, usize, TechNode, f32, f32, f32); 19] = [
        ("block1", 5770, TechNode::N5, 0.55, 0.30, 0.20),
        ("block2", 13000, TechNode::N5, 0.30, 0.15, 0.35),
        ("block3", 3530, TechNode::N7, 0.60, 0.35, 0.20),
        ("block4", 3700, TechNode::N7, 0.60, 0.35, 0.15),
        ("block5", 1940, TechNode::N7, 0.55, 0.35, 0.20),
        ("block6", 1950, TechNode::N12, 0.50, 0.30, 0.25),
        ("block7", 4160, TechNode::N12, 0.45, 0.20, 0.35),
        ("block8", 1350, TechNode::N5, 0.60, 0.30, 0.25),
        ("block9", 1620, TechNode::N7, 0.20, 0.20, 0.40),
        ("block10", 840, TechNode::N7, 0.65, 0.35, 0.20),
        ("block11", 1800, TechNode::N7, 0.40, 0.25, 0.30),
        ("block12", 2430, TechNode::N12, 0.55, 0.30, 0.25),
        ("block13", 5070, TechNode::N5, 0.35, 0.20, 0.35),
        ("block14", 8160, TechNode::N5, 0.40, 0.20, 0.30),
        ("block15", 8210, TechNode::N7, 0.30, 0.20, 0.35),
        ("block16", 4320, TechNode::N7, 0.35, 0.25, 0.30),
        ("block17", 5070, TechNode::N12, 0.30, 0.25, 0.30),
        ("block18", 4120, TechNode::N5, 0.55, 0.25, 0.25),
        ("block19", 9220, TechNode::N7, 0.30, 0.25, 0.30),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, &(name, cells, tech, viol, deep, chain))| {
            let mut spec = DesignSpec::new(
                name,
                ((cells as f32 * scale) as usize).max(120),
                tech,
                0xCC_D0 + i as u64,
            );
            spec.viol_frac = viol;
            spec.deep_frac = deep;
            spec.chain_frac = chain;
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> DesignSpec {
        DesignSpec::new("t", 600, TechNode::N7, seed)
    }

    #[test]
    fn generated_design_is_structurally_valid() {
        let d = generate(&small_spec(1));
        assert!(d.netlist.check().is_empty(), "{:?}", d.netlist.check());
        assert!(d.period_ps > 0.0);
        // Size lands in the right ballpark.
        let n = d.netlist.cell_count();
        assert!((400..=1200).contains(&n), "cell count {n}");
        assert!(!d.netlist.flops().is_empty());
        assert!(!d.netlist.endpoints().is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec(42));
        let b = generate(&small_spec(42));
        assert_eq!(a.netlist.cell_count(), b.netlist.cell_count());
        assert_eq!(a.netlist.net_count(), b.netlist.net_count());
        assert_eq!(a.period_ps, b.period_ps);
        // Spot-check a location.
        let id = CellId::new(a.netlist.cell_count() / 2);
        assert_eq!(a.netlist.cell(id).loc, b.netlist.cell(id).loc);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_spec(1));
        let b = generate(&small_spec(2));
        assert!(
            a.netlist.cell_count() != b.netlist.cell_count() || a.period_ps != b.period_ps,
            "designs should differ"
        );
    }

    #[test]
    fn most_nets_have_sinks_and_flops_capture() {
        let d = generate(&small_spec(5));
        let dangling = d
            .netlist
            .net_ids()
            .filter(|&n| d.netlist.net(n).sinks.is_empty())
            .count();
        // Unused exports exist but must stay a small minority.
        assert!(
            (dangling as f32) < 0.35 * d.netlist.net_count() as f32,
            "{dangling} of {} nets dangling",
            d.netlist.net_count()
        );
        // Every flop D input is driven.
        for &f in d.netlist.flops() {
            assert_eq!(d.netlist.cell(f).inputs.len(), 1);
        }
    }

    #[test]
    fn violation_fraction_near_target_on_constrained_tail() {
        let mut spec = small_spec(9);
        spec.target_cells = 1500;
        spec.viol_frac = 0.4;
        let d = generate(&spec);
        let arr = super::endpoint_arrivals(&d.netlist);
        let max = arr.iter().copied().fold(0.0f32, f32::max);
        let tail: Vec<f32> = arr.iter().copied().filter(|&a| a > 0.35 * max).collect();
        let viol = tail.iter().filter(|&&a| a > d.period_ps).count() as f32;
        let frac = viol / tail.len() as f32;
        assert!(
            (frac - 0.4).abs() < 0.2,
            "violation fraction {frac} far from 0.4"
        );
    }

    #[test]
    fn suite_has_19_blocks_with_paper_ordering() {
        let suite = block_suite(1.0);
        assert_eq!(suite.len(), 19);
        assert_eq!(suite[0].name, "block1");
        assert_eq!(suite[18].name, "block19");
        // block2 is the largest, block10 the smallest (paper: 1.3M vs 84K).
        let sizes: Vec<usize> = suite.iter().map(|s| s.target_cells).collect();
        assert_eq!(
            *sizes.iter().max().expect("nonempty"),
            suite[1].target_cells
        );
        assert_eq!(
            *sizes.iter().min().expect("nonempty"),
            suite[9].target_cells
        );
        // Scaling shrinks.
        let small = block_suite(0.25);
        assert!(small[0].target_cells < suite[0].target_cells);
    }

    #[test]
    fn class_counts_cover_all_endpoints() {
        let d = generate(&small_spec(3));
        let (n, deep, chain) = d.class_counts();
        assert_eq!(n + deep + chain, d.netlist.endpoints().len());
        assert!(deep > 0 && chain > 0, "default spec mixes all classes");
    }

    #[test]
    fn deep_clusters_saturate_drives() {
        let mut spec = small_spec(11);
        spec.deep_frac = 1.0;
        spec.chain_frac = 0.0;
        let deep = generate(&spec);
        let strong = deep
            .netlist
            .cell_ids()
            .filter(|&c| deep.netlist.kind(c).is_combinational())
            .filter(|&c| deep.netlist.library().cell(deep.netlist.cell(c).lib).drive >= Drive::X4)
            .count();
        let total = deep
            .netlist
            .cell_ids()
            .filter(|&c| deep.netlist.kind(c).is_combinational())
            .count();
        assert!(
            strong as f32 / total as f32 > 0.5,
            "deep clusters should be drive-saturated ({strong}/{total})"
        );
    }
}
