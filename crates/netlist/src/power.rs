//! Power models: toggle-rate propagation, switching, internal and leakage
//! power. Produces the per-cell quantities used by EP-GNN's Table I features
//! and the design totals reported in Table II.

use crate::graph::Netlist;
use crate::ids::{CellId, NetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-cell and per-net activity plus the power breakdown of a design.
#[derive(Clone, Debug)]
pub struct PowerReport {
    /// Toggle rate at each cell's output pin (toggles per clock cycle).
    toggle: Vec<f32>,
    /// Switching power of each net, in mW.
    net_switching: Vec<f32>,
    /// Internal power of each cell, in mW.
    internal: Vec<f32>,
    /// Leakage power of each cell, in mW.
    leakage: Vec<f32>,
    total: f64,
}

impl PowerReport {
    /// Toggle rate at the output pin of `cell` (0 for output ports).
    pub fn toggle(&self, cell: CellId) -> f32 {
        self.toggle[cell.index()]
    }

    /// Switching power of `net` in mW.
    pub fn net_switching(&self, net: NetId) -> f32 {
        self.net_switching[net.index()]
    }

    /// Internal power of `cell` in mW.
    pub fn internal(&self, cell: CellId) -> f32 {
        self.internal[cell.index()]
    }

    /// Leakage power of `cell` in mW.
    pub fn leakage(&self, cell: CellId) -> f32 {
        self.leakage[cell.index()]
    }

    /// Total design power in mW.
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Toggle-rate attenuation per gate: each logic level filters some activity.
fn attenuation(kind: crate::cell::GateKind) -> f32 {
    use crate::cell::GateKind::*;
    match kind {
        Buf | Inv => 1.0,
        Nand2 | Nor2 | And2 | Or2 => 0.75,
        Xor2 => 1.1, // XOR propagates more transitions
        Aoi21 | Oai21 | Mux2 => 0.7,
        Input | Output | Dff => 1.0,
    }
}

/// Analyzes design power at clock frequency `1/period_ps`.
///
/// Toggle rates start at primary inputs (seeded uniformly in `[0.05, 0.35]`
/// from `activity_seed`) and at register outputs (fixed 0.25), then propagate
/// forward with per-gate attenuation. Power:
///
/// * switching: `0.5 · C_net · Vdd² · toggle · f`
/// * internal: `E_int · toggle · f`
/// * leakage: from the library, activity-independent.
pub fn analyze_power(netlist: &Netlist, period_ps: f32, activity_seed: u64) -> PowerReport {
    let lib = netlist.library();
    let n = netlist.cell_count();
    let mut rng = StdRng::seed_from_u64(activity_seed);
    let mut toggle = vec![0.0f32; n];
    // Seed sources. Iterate cells in id order for determinism.
    for id in netlist.cell_ids() {
        match netlist.kind(id) {
            crate::cell::GateKind::Input => toggle[id.index()] = rng.gen_range(0.05..0.35),
            crate::cell::GateKind::Dff => toggle[id.index()] = 0.25,
            _ => {}
        }
    }
    // Propagate in topological order over combinational cells.
    for id in topological_comb(netlist) {
        let cell = netlist.cell(id);
        let mut acc = 0.0f32;
        for &net in &cell.inputs {
            acc += toggle[netlist.net(net).driver.index()];
        }
        let avg = acc / cell.inputs.len().max(1) as f32;
        toggle[id.index()] = (avg * attenuation(netlist.kind(id))).min(1.0);
    }
    let freq_ghz = 1000.0 / period_ps; // GHz when period is in ps
    let vdd = lib.vdd();
    let mut net_switching = vec![0.0f32; netlist.net_count()];
    let mut internal = vec![0.0f32; n];
    let mut leakage = vec![0.0f32; n];
    let mut total = 0.0f64;
    for id in netlist.cell_ids() {
        let cell = netlist.cell(id);
        let lc = lib.cell(cell.lib);
        // Leakage: nW → mW.
        leakage[id.index()] = lc.leakage * 1e-6;
        total += leakage[id.index()] as f64;
        if let Some(net) = cell.output {
            let tog = toggle[id.index()];
            // fF · V² · GHz = µW; →mW with 1e-3.
            let sw = 0.5 * netlist.net_load(net) * vdd * vdd * tog * freq_ghz * 1e-3;
            net_switching[net.index()] = sw;
            total += sw as f64;
            // fJ · GHz = µW; →mW with 1e-3.
            let int = lc.internal_energy * tog * freq_ghz * 1e-3;
            internal[id.index()] = int;
            total += int as f64;
        }
    }
    PowerReport {
        toggle,
        net_switching,
        internal,
        leakage,
        total,
    }
}

/// Topological order over combinational cells (sources first).
///
/// Startpoints (registers and input ports) are treated as level-0 sources;
/// the order contains only combinational cells. Exposed because the timing
/// crate needs the same order.
pub fn topological_comb(netlist: &Netlist) -> Vec<CellId> {
    let n = netlist.cell_count();
    let mut pending = vec![0u32; n];
    let mut order = Vec::new();
    let mut queue: Vec<CellId> = Vec::new();
    for id in netlist.cell_ids() {
        if netlist.kind(id).is_combinational() {
            // Count inputs driven by other combinational cells.
            let cnt = netlist
                .cell(id)
                .inputs
                .iter()
                .filter(|&&net| netlist.kind(netlist.net(net).driver).is_combinational())
                .count() as u32;
            pending[id.index()] = cnt;
            if cnt == 0 {
                queue.push(id);
            }
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        order.push(id);
        if let Some(net) = netlist.cell(id).output {
            for &(sink, _) in &netlist.net(net).sinks {
                if netlist.kind(sink).is_combinational() {
                    pending[sink.index()] -= 1;
                    if pending[sink.index()] == 0 {
                        queue.push(sink);
                    }
                }
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        netlist
            .cell_ids()
            .filter(|&c| netlist.kind(c).is_combinational())
            .count(),
        "combinational logic must be acyclic"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cell::{Drive, GateKind, Point};
    use crate::library::{Library, TechNode};

    fn pipeline() -> Netlist {
        let mut b = NetlistBuilder::new("p", Library::new(TechNode::N7));
        let pi = b.input(Point::new(0.0, 0.0));
        let g1 = b.gate(GateKind::And2, Drive::X1, Point::new(10.0, 0.0));
        let g2 = b.gate(GateKind::Xor2, Drive::X1, Point::new(20.0, 0.0));
        let f = b.flop(Drive::X1, Point::new(30.0, 0.0));
        let po = b.output(Point::new(40.0, 0.0));
        b.drive(pi, g1);
        b.drive(f, g1);
        b.drive(g1, g2);
        b.drive(pi, g2);
        b.drive(g2, f);
        b.drive(f, po);
        b.finish().expect("valid")
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let nl = pipeline();
        let order = topological_comb(&nl);
        assert_eq!(order.len(), 2);
        let pos = |c: CellId| order.iter().position(|&x| x == c).expect("in order");
        // g1 (c1) feeds g2 (c2).
        assert!(pos(CellId::new(1)) < pos(CellId::new(2)));
    }

    #[test]
    fn power_is_positive_and_deterministic() {
        let nl = pipeline();
        let a = analyze_power(&nl, 500.0, 3);
        let b = analyze_power(&nl, 500.0, 3);
        assert!(a.total() > 0.0);
        assert_eq!(a.total(), b.total());
        // Different seed → different PI activity → different total.
        let c = analyze_power(&nl, 500.0, 4);
        assert_ne!(a.total(), c.total());
    }

    #[test]
    fn faster_clock_burns_more_power() {
        let nl = pipeline();
        let slow = analyze_power(&nl, 1000.0, 3);
        let fast = analyze_power(&nl, 500.0, 3);
        assert!(fast.total() > slow.total());
    }

    #[test]
    fn per_item_accessors_cover_design() {
        let nl = pipeline();
        let p = analyze_power(&nl, 500.0, 3);
        for id in nl.cell_ids() {
            assert!(p.leakage(id) >= 0.0);
            assert!(p.internal(id) >= 0.0);
            assert!(p.toggle(id) >= 0.0 && p.toggle(id) <= 1.0);
        }
        for id in nl.net_ids() {
            assert!(p.net_switching(id) >= 0.0);
        }
        // Register output toggles at the fixed rate.
        let f = nl.flops()[0];
        assert_eq!(p.toggle(f), 0.25);
    }
}
