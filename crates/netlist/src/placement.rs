//! Placement utilities: wirelength metrics and placement refinement.
//!
//! The synthetic generator assigns region-clustered locations directly; this
//! module provides the metrics (HPWL) used throughout the flow, plus a
//! deterministic force-directed refinement pass and the small legalization
//! jitter applied at the end of placement optimization.

use crate::cell::Point;
use crate::graph::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total half-perimeter wirelength of the design, in µm.
pub fn total_hpwl(netlist: &Netlist) -> f64 {
    netlist.net_ids().map(|n| netlist.net_hpwl(n) as f64).sum()
}

/// Bounding box of all cell locations: `(min, max)`.
pub fn bounding_box(netlist: &Netlist) -> (Point, Point) {
    let mut min = Point::new(f32::INFINITY, f32::INFINITY);
    let mut max = Point::new(f32::NEG_INFINITY, f32::NEG_INFINITY);
    for id in netlist.cell_ids() {
        let p = netlist.cell(id).loc;
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    (min, max)
}

/// One sweep of force-directed refinement: moves each combinational cell a
/// fraction `alpha` of the way towards the centroid of its connected cells.
/// Ports and registers stay fixed (they anchor the clusters). Returns the
/// HPWL after the sweep.
pub fn refine_step(netlist: &mut Netlist, alpha: f32) -> f64 {
    let n = netlist.cell_count();
    let mut sum = vec![Point::default(); n];
    let mut cnt = vec![0u32; n];
    for net_id in netlist.net_ids() {
        let net = netlist.net(net_id);
        let dp = netlist.cell(net.driver).loc;
        for &(sink, _) in &net.sinks {
            let sp = netlist.cell(sink).loc;
            sum[net.driver.index()].x += sp.x;
            sum[net.driver.index()].y += sp.y;
            cnt[net.driver.index()] += 1;
            sum[sink.index()].x += dp.x;
            sum[sink.index()].y += dp.y;
            cnt[sink.index()] += 1;
        }
    }
    let moves: Vec<(usize, Point)> = netlist
        .cell_ids()
        .filter(|&id| netlist.kind(id).is_combinational() && cnt[id.index()] > 0)
        .map(|id| {
            let i = id.index();
            let c = cnt[i] as f32;
            let centroid = Point::new(sum[i].x / c, sum[i].y / c);
            let cur = netlist.cell(id).loc;
            (
                i,
                Point::new(
                    cur.x + alpha * (centroid.x - cur.x),
                    cur.y + alpha * (centroid.y - cur.y),
                ),
            )
        })
        .collect();
    for (i, p) in moves {
        set_loc(netlist, i, p);
    }
    total_hpwl(netlist)
}

/// Legalization jitter: displaces every combinational cell by a small
/// uniform offset up to `max_disp` µm, modeling the cell spreading done by
/// legalization after optimization. Deterministic given `seed`.
pub fn legalize_jitter(netlist: &mut Netlist, max_disp: f32, seed: u64) {
    rl_ccd_obs::counter!("netlist.placement.legalize_calls", 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<usize> = netlist
        .cell_ids()
        .filter(|&id| netlist.kind(id).is_combinational())
        .map(|id| id.index())
        .collect();
    for i in ids {
        let loc = current_loc(netlist, i);
        let dx = rng.gen_range(-max_disp..=max_disp);
        let dy = rng.gen_range(-max_disp..=max_disp);
        set_loc(netlist, i, Point::new(loc.x + dx, loc.y + dy));
    }
}

fn current_loc(netlist: &Netlist, index: usize) -> Point {
    netlist.cell(crate::ids::CellId::new(index)).loc
}

fn set_loc(netlist: &mut Netlist, index: usize, p: Point) {
    netlist.set_location(crate::ids::CellId::new(index), p);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cell::{Drive, GateKind};
    use crate::library::{Library, TechNode};

    fn spread() -> Netlist {
        let mut b = NetlistBuilder::new("spread", Library::new(TechNode::N7));
        let pi = b.input(Point::new(0.0, 0.0));
        let f = b.flop(Drive::X1, Point::new(100.0, 0.0));
        // A gate placed far from both its neighbours.
        let g = b.gate(GateKind::Buf, Drive::X1, Point::new(50.0, 200.0));
        b.drive(pi, g);
        b.drive(g, f);
        let po = b.output(Point::new(120.0, 0.0));
        b.drive(f, po);
        b.finish().expect("valid")
    }

    #[test]
    fn refine_reduces_hpwl() {
        let mut nl = spread();
        let before = total_hpwl(&nl);
        let after = refine_step(&mut nl, 0.5);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn refine_keeps_anchors_fixed() {
        let mut nl = spread();
        let pi_loc = nl.cell(crate::ids::CellId::new(0)).loc;
        refine_step(&mut nl, 0.9);
        assert_eq!(nl.cell(crate::ids::CellId::new(0)).loc, pi_loc);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut a = spread();
        let mut b = spread();
        let before = a.cell(crate::ids::CellId::new(2)).loc;
        legalize_jitter(&mut a, 2.0, 7);
        legalize_jitter(&mut b, 2.0, 7);
        let la = a.cell(crate::ids::CellId::new(2)).loc;
        let lb = b.cell(crate::ids::CellId::new(2)).loc;
        assert_eq!(la, lb, "same seed, same jitter");
        assert!((la.x - before.x).abs() <= 2.0);
        assert!((la.y - before.y).abs() <= 2.0);
    }

    #[test]
    fn bounding_box_spans_cells() {
        let nl = spread();
        let (min, max) = bounding_box(&nl);
        assert!(min.x <= 0.0 && max.x >= 120.0);
        assert!(min.y <= 0.0 && max.y >= 200.0);
        assert!(total_hpwl(&nl) > 0.0);
    }
}
