//! Gate-level netlist substrate for the RL-CCD reproduction.
//!
//! The paper (*RL-CCD*, DAC 2023) runs inside Synopsys ICC2 on confidential
//! industrial designs. This crate provides the open substrate that replaces
//! both: a typed netlist graph bound to synthetic-but-consistent technology
//! libraries, a seeded generator emitting designs with the structural
//! heterogeneity the paper's decision problem depends on, and the netlist
//! analyses RL-CCD consumes (fan-in cones, cone overlap, GNN message-passing
//! transformation, placement and power metrics).
//!
//! # Quick start
//! ```
//! use rl_ccd_netlist::{generate, DesignSpec, TechNode, DesignStats};
//!
//! let spec = DesignSpec::new("demo", 600, TechNode::N7, 7);
//! let design = generate(&spec);
//! let stats = DesignStats::of(&design.netlist);
//! assert!(stats.flops > 0 && stats.endpoints > 0);
//! println!("{stats}, period {} ps", design.period_ps);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod cell;
pub mod cone;
pub mod generate;
pub mod graph;
pub mod ids;
pub mod library;
pub mod placement;
pub mod power;
pub mod serialize;
pub mod stats;
pub mod transform;
pub mod verilog;

pub use builder::{BuildNetlistError, NetlistBuilder};
pub use cell::{Drive, GateKind, Point};
pub use cone::{fanin_cone, Cone, ConeSet};
pub use generate::{block_suite, generate, ClusterClass, DesignSpec, GeneratedDesign};
pub use graph::{Cell, Endpoint, Net, Netlist, Startpoint};
pub use ids::{CellId, EndpointId, LibCellId, NetId, StartpointId};
pub use library::{LibCell, Library, TechNode, WireModel};
pub use power::{analyze_power, topological_comb, PowerReport};
pub use serialize::{read_netlist, write_netlist, ParseNetlistError};
pub use stats::DesignStats;
pub use transform::{cone_readout, message_graph, Adjacency};
pub use verilog::write_verilog;
