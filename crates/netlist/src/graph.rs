//! The gate-level netlist graph: cells, nets, endpoints, startpoints.
//!
//! Storage is arena-style: cells and nets live in `Vec`s indexed by
//! [`CellId`]/[`NetId`]. Every cell drives at most one output net; nets
//! record their driver and every (sink cell, input pin) pair. The clock
//! network is abstracted: flip-flops carry no clock net — per-register clock
//! arrival times live in the timing crate's clock schedule, which is exactly
//! the abstraction useful-skew optimization manipulates.

use crate::cell::{GateKind, Point};
use crate::ids::{CellId, EndpointId, LibCellId, NetId, StartpointId};
use crate::library::Library;

/// One placed instance: a gate, register, or port.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Library cell implementing this instance.
    pub lib: LibCellId,
    /// Input nets, ordered by pin index (pin 0 is the fastest pin).
    pub inputs: Vec<NetId>,
    /// Output net, if this cell drives one (everything except output ports).
    pub output: Option<NetId>,
    /// Placement location.
    pub loc: Point,
}

/// One net: a driver pin and its sink pins.
#[derive(Clone, Debug, PartialEq)]
pub struct Net {
    /// Driving cell.
    pub driver: CellId,
    /// Sinks as (cell, input pin index) pairs.
    pub sinks: Vec<(CellId, u8)>,
}

/// A timing endpoint: where setup checks are performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The D input of a flip-flop.
    FlopD(CellId),
    /// A primary output port.
    PrimaryOut(CellId),
}

impl Endpoint {
    /// The cell that owns this endpoint pin.
    pub fn cell(self) -> CellId {
        match self {
            Endpoint::FlopD(c) | Endpoint::PrimaryOut(c) => c,
        }
    }

    /// Whether the endpoint is a register D pin (vs. a primary output).
    pub fn is_register(self) -> bool {
        matches!(self, Endpoint::FlopD(_))
    }
}

/// A timing startpoint: where paths begin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Startpoint {
    /// The Q output of a flip-flop.
    FlopQ(CellId),
    /// A primary input port.
    PrimaryIn(CellId),
}

impl Startpoint {
    /// The cell that owns this startpoint pin.
    pub fn cell(self) -> CellId {
        match self {
            Startpoint::FlopQ(c) | Startpoint::PrimaryIn(c) => c,
        }
    }
}

/// A gate-level netlist with placement, bound to a technology [`Library`].
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    library: Library,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    endpoints: Vec<Endpoint>,
    startpoints: Vec<Startpoint>,
    /// All flip-flop cells, in creation order; index here is the register
    /// index used by clock schedules.
    flops: Vec<CellId>,
    /// For each cell, `Some(register index)` if it is a flip-flop.
    flop_index: Vec<Option<u32>>,
}

impl Netlist {
    /// Creates an empty netlist bound to `library`.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        Self {
            name: name.into(),
            library,
            cells: Vec::new(),
            nets: Vec::new(),
            endpoints: Vec::new(),
            startpoints: Vec::new(),
            flops: Vec::new(),
            flop_index: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology library the netlist is bound to.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of cells (including port cells).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Borrow a cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Borrow a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Gate function of a cell (via its library binding).
    pub fn kind(&self, id: CellId) -> GateKind {
        self.library.cell(self.cells[id.index()].lib).kind
    }

    /// Iterate over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len()).map(CellId::new)
    }

    /// Iterate over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len()).map(NetId::new)
    }

    /// All timing endpoints, indexable by [`EndpointId`].
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// All timing startpoints, indexable by [`StartpointId`].
    pub fn startpoints(&self) -> &[Startpoint] {
        &self.startpoints
    }

    /// Endpoint by id.
    pub fn endpoint(&self, id: EndpointId) -> Endpoint {
        self.endpoints[id.index()]
    }

    /// Startpoint by id.
    pub fn startpoint(&self, id: StartpointId) -> Startpoint {
        self.startpoints[id.index()]
    }

    /// All flip-flop cells; the slice position is the register index used by
    /// clock schedules.
    pub fn flops(&self) -> &[CellId] {
        &self.flops
    }

    /// Register index of a cell, if it is a flip-flop.
    pub fn flop_index(&self, id: CellId) -> Option<usize> {
        self.flop_index[id.index()].map(|i| i as usize)
    }

    /// Half-perimeter wirelength of a net in µm (0 for degenerate nets).
    pub fn net_hpwl(&self, id: NetId) -> f32 {
        let net = &self.nets[id.index()];
        let mut min = self.cells[net.driver.index()].loc;
        let mut max = min;
        for &(sink, _) in &net.sinks {
            let p = self.cells[sink.index()].loc;
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (max.x - min.x) + (max.y - min.y)
    }

    /// Manhattan length of the segment from the net driver to one sink, µm.
    pub fn segment_length(&self, net: NetId, sink: CellId) -> f32 {
        let n = &self.nets[net.index()];
        self.cells[n.driver.index()]
            .loc
            .manhattan(self.cells[sink.index()].loc)
    }

    /// Total capacitive load seen by the driver of `net`: sink pin caps plus
    /// wire capacitance over the net HPWL, in fF.
    pub fn net_load(&self, id: NetId) -> f32 {
        let net = &self.nets[id.index()];
        let mut cap = self.library.wire().cap(self.net_hpwl(id));
        for &(sink, _) in &net.sinks {
            cap += self.library.cell(self.cells[sink.index()].lib).input_cap;
        }
        cap
    }

    // ------------------------------------------------------------------
    // Construction (used by the builder & generator)
    // ------------------------------------------------------------------

    pub(crate) fn push_cell(&mut self, lib: LibCellId, loc: Point) -> CellId {
        let id = CellId::new(self.cells.len());
        let kind = self.library.cell(lib).kind;
        self.cells.push(Cell {
            lib,
            inputs: Vec::with_capacity(kind.input_count()),
            output: None,
            loc,
        });
        self.flop_index.push(None);
        match kind {
            GateKind::Dff => {
                self.flop_index[id.index()] = Some(self.flops.len() as u32);
                self.flops.push(id);
                self.endpoints.push(Endpoint::FlopD(id));
                self.startpoints.push(Startpoint::FlopQ(id));
            }
            GateKind::Input => self.startpoints.push(Startpoint::PrimaryIn(id)),
            GateKind::Output => self.endpoints.push(Endpoint::PrimaryOut(id)),
            _ => {}
        }
        id
    }

    pub(crate) fn push_net(&mut self, driver: CellId) -> NetId {
        let id = NetId::new(self.nets.len());
        debug_assert!(self.cells[driver.index()].output.is_none());
        self.cells[driver.index()].output = Some(id);
        self.nets.push(Net {
            driver,
            sinks: Vec::new(),
        });
        id
    }

    pub(crate) fn connect(&mut self, net: NetId, sink: CellId) {
        let pin = self.cells[sink.index()].inputs.len() as u8;
        self.cells[sink.index()].inputs.push(net);
        self.nets[net.index()].sinks.push((sink, pin));
    }

    // ------------------------------------------------------------------
    // Mutation (used by data-path optimization)
    // ------------------------------------------------------------------

    /// Moves a cell to a new placement location.
    pub fn set_location(&mut self, cell: CellId, loc: Point) {
        self.cells[cell.index()].loc = loc;
    }

    /// Rebinds a cell to a different library cell of the same gate function
    /// (gate sizing).
    ///
    /// # Panics
    /// Panics if the new library cell has a different [`GateKind`].
    pub fn resize(&mut self, cell: CellId, lib: LibCellId) {
        let old = self.library.cell(self.cells[cell.index()].lib).kind;
        let new = self.library.cell(lib).kind;
        assert_eq!(old, new, "resize must preserve the gate function");
        self.cells[cell.index()].lib = lib;
    }

    /// Rebinds a cell to a library cell of a *different* function with the
    /// same pin count (logic remapping, e.g. NAND2 → AND2 when absorbing a
    /// downstream inverter).
    ///
    /// # Panics
    /// Panics if the input counts differ or output presence changes.
    pub fn remap(&mut self, cell: CellId, lib: LibCellId) {
        let old = self.library.cell(self.cells[cell.index()].lib).kind;
        let new = self.library.cell(lib).kind;
        assert_eq!(
            old.input_count(),
            new.input_count(),
            "remap must preserve pin count"
        );
        assert_eq!(
            old.has_output(),
            new.has_output(),
            "remap must preserve output presence"
        );
        assert!(
            old.is_combinational() && new.is_combinational(),
            "remap only applies to combinational cells"
        );
        self.cells[cell.index()].lib = lib;
    }

    /// Moves every sink of `from` onto `to` (the bypassed-cell transform:
    /// after absorbing an inverter into its driver, the inverter's loads
    /// re-attach to the driver's net). `from` is left without sinks.
    ///
    /// # Panics
    /// Panics if `from == to`.
    pub fn transfer_sinks(&mut self, from: NetId, to: NetId) {
        assert_ne!(from, to, "cannot transfer a net onto itself");
        let moved = std::mem::take(&mut self.nets[from.index()].sinks);
        for &(sink, pin) in &moved {
            self.cells[sink.index()].inputs[pin as usize] = to;
        }
        self.nets[to.index()].sinks.extend(moved);
    }

    /// Swaps two input pins of a cell, so the net previously on pin `a`
    /// now connects to pin `b` and vice versa (pin swapping: move the
    /// late-arriving signal to the faster pin).
    ///
    /// # Panics
    /// Panics if either pin index is out of range.
    pub fn swap_pins(&mut self, cell: CellId, a: u8, b: u8) {
        if a == b {
            return;
        }
        let net_a = self.cells[cell.index()].inputs[a as usize];
        let net_b = self.cells[cell.index()].inputs[b as usize];
        self.cells[cell.index()].inputs.swap(a as usize, b as usize);
        for &(net, old_pin, new_pin) in &[(net_a, a, b), (net_b, b, a)] {
            for s in &mut self.nets[net.index()].sinks {
                if s.0 == cell && s.1 == old_pin {
                    s.1 = new_pin;
                    break;
                }
            }
        }
    }

    /// Inserts a buffer of library cell `lib` on `net`, re-routing the given
    /// subset of sink pins through it. Returns the new buffer cell.
    ///
    /// The buffer is placed at `loc`; a new net is created from the buffer to
    /// the moved sinks. Sinks not listed remain on the original net.
    ///
    /// # Panics
    /// Panics if `lib` is not a [`GateKind::Buf`], if `moved` is empty, or if
    /// any entry of `moved` is not a sink of `net`.
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        moved: &[(CellId, u8)],
        lib: LibCellId,
        loc: Point,
    ) -> CellId {
        assert_eq!(self.library.cell(lib).kind, GateKind::Buf);
        assert!(!moved.is_empty(), "buffer must drive at least one sink");
        let buf = self.push_cell(lib, loc);
        let new_net = self.push_net(buf);
        // Detach moved sinks from the old net.
        for &(cell, pin) in moved {
            let sinks = &mut self.nets[net.index()].sinks;
            let pos = sinks
                .iter()
                .position(|&s| s == (cell, pin))
                .expect("moved sink must belong to the net");
            sinks.swap_remove(pos);
            // Repoint the sink's input pin at the new net.
            self.cells[cell.index()].inputs[pin as usize] = new_net;
            self.nets[new_net.index()].sinks.push((cell, pin));
        }
        // The buffer itself becomes a sink of the original net (pin 0).
        self.connect(net, buf);
        buf
    }

    /// Validates structural invariants; returns a list of human-readable
    /// violations (empty when consistent). Used by tests and after mutation
    /// passes.
    pub fn check(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId::new(i);
            let kind = self.library.cell(cell.lib).kind;
            if cell.inputs.len() != kind.input_count() {
                errs.push(format!(
                    "{id}: {kind} expects {} inputs, has {}",
                    kind.input_count(),
                    cell.inputs.len()
                ));
            }
            if kind.has_output() != cell.output.is_some() {
                errs.push(format!("{id}: {kind} output presence mismatch"));
            }
            if let Some(net) = cell.output {
                if self.nets[net.index()].driver != id {
                    errs.push(format!("{id}: output net {net} driver mismatch"));
                }
            }
            for (pin, &net) in cell.inputs.iter().enumerate() {
                let ok = self.nets[net.index()].sinks.contains(&(id, pin as u8));
                if !ok {
                    errs.push(format!("{id}: input pin {pin} not registered on {net}"));
                }
            }
        }
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId::new(i);
            for &(sink, pin) in &net.sinks {
                let cell = &self.cells[sink.index()];
                if cell.inputs.get(pin as usize).copied() != Some(id) {
                    errs.push(format!("{id}: sink ({sink},{pin}) does not point back"));
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Drive;
    use crate::library::TechNode;

    fn tiny() -> Netlist {
        // in -> INV -> NAND2 -> DFF ; second NAND2 input from DFF Q.
        let lib = Library::new(TechNode::N7);
        let mut nl = Netlist::new("tiny", lib);
        let l_in = nl.library().variant(GateKind::Input, Drive::X1);
        let l_inv = nl.library().variant(GateKind::Inv, Drive::X1);
        let l_nand = nl.library().variant(GateKind::Nand2, Drive::X1);
        let l_dff = nl.library().variant(GateKind::Dff, Drive::X1);
        let pi = nl.push_cell(l_in, Point::new(0.0, 0.0));
        let inv = nl.push_cell(l_inv, Point::new(10.0, 0.0));
        let nand = nl.push_cell(l_nand, Point::new(20.0, 0.0));
        let dff = nl.push_cell(l_dff, Point::new(30.0, 0.0));
        let n_pi = nl.push_net(pi);
        let n_inv = nl.push_net(inv);
        let n_nand = nl.push_net(nand);
        let n_q = nl.push_net(dff);
        nl.connect(n_pi, inv);
        nl.connect(n_inv, nand);
        nl.connect(n_q, nand);
        nl.connect(n_nand, dff);
        nl
    }

    #[test]
    fn tiny_netlist_is_consistent() {
        let nl = tiny();
        assert!(nl.check().is_empty(), "{:?}", nl.check());
        assert_eq!(nl.cell_count(), 4);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.endpoints().len(), 1);
        assert_eq!(nl.startpoints().len(), 2);
        assert_eq!(nl.flops().len(), 1);
        assert_eq!(nl.flop_index(nl.flops()[0]), Some(0));
    }

    #[test]
    fn hpwl_and_load() {
        let nl = tiny();
        let inv_out = nl.cell(CellId::new(1)).output.expect("inv drives a net");
        assert!(nl.net_hpwl(inv_out) > 0.0);
        assert!(nl.net_load(inv_out) > 0.0);
        assert!(nl.segment_length(inv_out, CellId::new(2)) > 0.0);
    }

    #[test]
    fn pin_swap_keeps_consistency() {
        let mut nl = tiny();
        let nand = CellId::new(2);
        let before = nl.cell(nand).inputs.clone();
        nl.swap_pins(nand, 0, 1);
        assert!(nl.check().is_empty(), "{:?}", nl.check());
        let after = nl.cell(nand).inputs.clone();
        assert_eq!(before[0], after[1]);
        assert_eq!(before[1], after[0]);
        nl.swap_pins(nand, 0, 0); // no-op
        assert!(nl.check().is_empty());
    }

    #[test]
    fn buffer_insertion_reroutes_sinks() {
        let mut nl = tiny();
        let pi_net = nl.cell(CellId::new(0)).output.expect("pi net");
        let moved = nl.net(pi_net).sinks.clone();
        let l_buf = nl.library().variant(GateKind::Buf, Drive::X2);
        let buf = nl.insert_buffer(pi_net, &moved, l_buf, Point::new(5.0, 0.0));
        assert!(nl.check().is_empty(), "{:?}", nl.check());
        // Old net now drives exactly the buffer.
        assert_eq!(nl.net(pi_net).sinks, vec![(buf, 0)]);
        // Buffer output drives the inverter.
        let bnet = nl.cell(buf).output.expect("buffer drives");
        assert_eq!(nl.net(bnet).sinks.len(), 1);
    }

    #[test]
    fn resize_preserves_kind() {
        let mut nl = tiny();
        let inv = CellId::new(1);
        let stronger = nl.library().variant(GateKind::Inv, Drive::X4);
        nl.resize(inv, stronger);
        assert_eq!(nl.kind(inv), GateKind::Inv);
        assert!(nl.check().is_empty());
    }

    #[test]
    #[should_panic(expected = "resize must preserve the gate function")]
    fn resize_to_other_kind_panics() {
        let mut nl = tiny();
        let to_nand = nl.library().variant(GateKind::Nand2, Drive::X1);
        nl.resize(CellId::new(1), to_nand);
    }

    #[test]
    fn remap_changes_function_with_same_arity() {
        let mut nl = tiny();
        let nand = CellId::new(2);
        let to_and = nl.library().variant(GateKind::And2, Drive::X2);
        nl.remap(nand, to_and);
        assert_eq!(nl.kind(nand), GateKind::And2);
        assert!(nl.check().is_empty());
    }

    #[test]
    #[should_panic(expected = "remap must preserve pin count")]
    fn remap_arity_mismatch_panics() {
        let mut nl = tiny();
        let to_mux = nl.library().variant(GateKind::Mux2, Drive::X1);
        nl.remap(CellId::new(1), to_mux); // INV (1 pin) → MUX2 (3 pins)
    }

    #[test]
    fn transfer_sinks_bypasses_a_cell() {
        // inv output currently feeds the NAND; move the NAND input onto the
        // PI net directly (as if the INV were absorbed).
        let mut nl = tiny();
        let pi_net = nl.cell(CellId::new(0)).output.expect("pi net");
        let inv_net = nl.cell(CellId::new(1)).output.expect("inv net");
        nl.transfer_sinks(inv_net, pi_net);
        assert!(nl.net(inv_net).sinks.is_empty());
        // The NAND's input now points at the PI net, consistency holds.
        assert!(nl.check().is_empty(), "{:?}", nl.check());
        assert!(nl
            .net(pi_net)
            .sinks
            .iter()
            .any(|&(c, _)| c == CellId::new(2)));
    }
}
