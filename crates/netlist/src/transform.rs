//! Netlist → GNN message-passing graph transformation.
//!
//! Following the netlist transformation of Lu & Lim (ICCAD'22) referenced by
//! the paper, each net is expanded into driver↔sink message-passing edges
//! (a "star" expansion), made undirected and deduplicated. The result is a
//! CSR adjacency over cells, plus the mean-normalization used by EP-GNN's
//! neighbourhood aggregation (Eq. 2).

use crate::graph::Netlist;
use crate::ids::CellId;

/// Compressed-sparse-row adjacency over netlist cells.
///
/// Row `v` lists the message-passing neighbours `N(v)`. The matching
/// `weights` hold `1/|N(v)|` per entry, so multiplying feature rows by this
/// matrix computes the mean-aggregation of Eq. 2 directly.
#[derive(Clone, Debug, PartialEq)]
pub struct Adjacency {
    indptr: Vec<u32>,
    indices: Vec<u32>,
    weights: Vec<f32>,
}

impl Adjacency {
    /// Number of nodes (rows).
    pub fn node_count(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Total number of directed edges stored.
    pub fn edge_count(&self) -> usize {
        self.indices.len()
    }

    /// Neighbour ids of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let (s, e) = (self.indptr[v] as usize, self.indptr[v + 1] as usize);
        &self.indices[s..e]
    }

    /// Mean-normalization weights aligned with [`Adjacency::neighbors`].
    pub fn weights_of(&self, v: usize) -> &[f32] {
        let (s, e) = (self.indptr[v] as usize, self.indptr[v + 1] as usize);
        &self.weights[s..e]
    }

    /// Raw CSR parts `(indptr, indices, weights)`, for conversion into a
    /// sparse-tensor type.
    pub fn as_csr(&self) -> (&[u32], &[u32], &[f32]) {
        (&self.indptr, &self.indices, &self.weights)
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.indptr[v + 1] - self.indptr[v]) as usize
    }
}

/// Builds the undirected message-passing adjacency for `netlist`.
///
/// Every net contributes edges between its driver and each sink, in both
/// directions. Nets with more than `fanout_cap` sinks only contribute the
/// first `fanout_cap` (high-fanout nets such as resets would otherwise
/// dominate message passing); pass `usize::MAX` to disable the cap.
pub fn message_graph(netlist: &Netlist, fanout_cap: usize) -> Adjacency {
    let n = netlist.cell_count();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for net_id in netlist.net_ids() {
        let net = netlist.net(net_id);
        let d = net.driver.index() as u32;
        for &(sink, _) in net.sinks.iter().take(fanout_cap) {
            let s = sink.index() as u32;
            if s != d {
                pairs.push((d, s));
                pairs.push((s, d));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let mut indptr = vec![0u32; n + 1];
    for &(from, _) in &pairs {
        indptr[from as usize + 1] += 1;
    }
    for v in 0..n {
        indptr[v + 1] += indptr[v];
    }
    let indices: Vec<u32> = pairs.iter().map(|&(_, to)| to).collect();
    let mut weights = vec![0.0f32; indices.len()];
    for v in 0..n {
        let (s, e) = (indptr[v] as usize, indptr[v + 1] as usize);
        let deg = (e - s).max(1) as f32;
        for w in &mut weights[s..e] {
            *w = 1.0 / deg;
        }
    }
    Adjacency {
        indptr,
        indices,
        weights,
    }
}

/// Builds a CSR selection-plus-cone matrix for EP-GNN's readout (Eq. 3):
/// row `i` (one per endpoint in `endpoint_cells`/`cones`) has weight 1.0 on
/// the endpoint's own cell and on every cell of its fan-in cone, so
/// `M · F` computes `f_e + Σ_{j∈cone(e)} f_j` in one sparse product.
pub fn cone_readout(
    node_count: usize,
    endpoint_cells: &[CellId],
    cones: &[crate::cone::Cone],
) -> Adjacency {
    assert_eq!(endpoint_cells.len(), cones.len());
    let mut indptr = vec![0u32; endpoint_cells.len() + 1];
    let mut indices = Vec::new();
    for (i, (&cell, cone)) in endpoint_cells.iter().zip(cones).enumerate() {
        indices.push(cell.index() as u32);
        for &c in cone.cells() {
            debug_assert!(c.index() < node_count);
            if c != cell {
                indices.push(c.index() as u32);
            }
        }
        indptr[i + 1] = indices.len() as u32;
    }
    let weights = vec![1.0f32; indices.len()];
    Adjacency {
        indptr,
        indices,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cell::{Drive, GateKind, Point};
    use crate::cone::fanin_cone;
    use crate::library::{Library, TechNode};

    fn chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain", Library::new(TechNode::N7));
        let pi = b.input(Point::default());
        let g1 = b.gate(GateKind::Inv, Drive::X1, Point::new(1.0, 0.0));
        let g2 = b.gate(GateKind::Buf, Drive::X1, Point::new(2.0, 0.0));
        let f = b.flop(Drive::X1, Point::new(3.0, 0.0));
        let po = b.output(Point::new(4.0, 0.0));
        b.drive(pi, g1);
        b.drive(g1, g2);
        b.drive(g2, f);
        b.drive(f, po);
        b.finish().expect("valid")
    }

    #[test]
    fn star_expansion_is_symmetric() {
        let nl = chain();
        let adj = message_graph(&nl, usize::MAX);
        assert_eq!(adj.node_count(), nl.cell_count());
        // Undirected: every edge appears in both directions.
        for v in 0..adj.node_count() {
            for &u in adj.neighbors(v) {
                assert!(
                    adj.neighbors(u as usize).contains(&(v as u32)),
                    "edge {v}->{u} missing reverse"
                );
            }
        }
        // pi-g1, g1-g2, g2-f, f-po → 4 undirected edges → 8 directed.
        assert_eq!(adj.edge_count(), 8);
    }

    #[test]
    fn weights_are_mean_normalized() {
        let nl = chain();
        let adj = message_graph(&nl, usize::MAX);
        for v in 0..adj.node_count() {
            let ws = adj.weights_of(v);
            if !ws.is_empty() {
                let sum: f32 = ws.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "row {v} sums to {sum}");
                assert_eq!(ws.len(), adj.degree(v));
            }
        }
    }

    #[test]
    fn fanout_cap_limits_edges() {
        // One driver with 5 sinks.
        let mut b = NetlistBuilder::new("fan", Library::new(TechNode::N7));
        let pi = b.input(Point::default());
        for i in 0..5 {
            let g = b.gate(GateKind::Inv, Drive::X1, Point::new(i as f32, 0.0));
            b.drive(pi, g);
            let po = b.output(Point::new(i as f32, 1.0));
            b.drive(g, po);
        }
        let nl = b.finish().expect("valid");
        let full = message_graph(&nl, usize::MAX);
        let capped = message_graph(&nl, 2);
        assert!(capped.edge_count() < full.edge_count());
        assert_eq!(capped.degree(pi.index()), 2);
    }

    #[test]
    fn cone_readout_includes_endpoint_and_cone() {
        let nl = chain();
        let ep = nl.endpoints()[0];
        let cone = fanin_cone(&nl, ep);
        let m = cone_readout(nl.cell_count(), &[ep.cell()], std::slice::from_ref(&cone));
        assert_eq!(m.node_count(), 1);
        let row = m.neighbors(0);
        assert!(row.contains(&(ep.cell().index() as u32)));
        for &c in cone.cells() {
            assert!(row.contains(&(c.index() as u32)));
        }
        assert!(m.weights_of(0).iter().all(|&w| w == 1.0));
    }
}
