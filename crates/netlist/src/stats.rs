//! Design statistics: composition counts and logic-depth profiling.

use crate::graph::Netlist;
use crate::power::topological_comb;
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignStats {
    /// Total cell count including ports.
    pub cells: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub flops: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Net count.
    pub nets: usize,
    /// Timing endpoint count.
    pub endpoints: usize,
    /// Maximum combinational logic depth (in gates).
    pub max_depth: usize,
    /// Average fanout over driven nets.
    pub avg_fanout: f32,
}

impl DesignStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        use crate::cell::GateKind;
        let mut gates = 0;
        let mut inputs = 0;
        let mut outputs = 0;
        for id in netlist.cell_ids() {
            match netlist.kind(id) {
                GateKind::Input => inputs += 1,
                GateKind::Output => outputs += 1,
                GateKind::Dff => {}
                _ => gates += 1,
            }
        }
        // Depth via topological sweep.
        let mut depth = vec![0u32; netlist.cell_count()];
        let mut max_depth = 0usize;
        for id in topological_comb(netlist) {
            let d = netlist
                .cell(id)
                .inputs
                .iter()
                .map(|&n| {
                    let drv = netlist.net(n).driver;
                    if netlist.kind(drv).is_combinational() {
                        depth[drv.index()] + 1
                    } else {
                        1
                    }
                })
                .max()
                .unwrap_or(1);
            depth[id.index()] = d;
            max_depth = max_depth.max(d as usize);
        }
        let total_sinks: usize = netlist.net_ids().map(|n| netlist.net(n).sinks.len()).sum();
        Self {
            cells: netlist.cell_count(),
            gates,
            flops: netlist.flops().len(),
            inputs,
            outputs,
            nets: netlist.net_count(),
            endpoints: netlist.endpoints().len(),
            max_depth,
            avg_fanout: total_sinks as f32 / netlist.net_count().max(1) as f32,
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells ({} gates, {} flops, {} PI, {} PO), {} nets, {} endpoints, depth {}, fanout {:.2}",
            self.cells,
            self.gates,
            self.flops,
            self.inputs,
            self.outputs,
            self.nets,
            self.endpoints,
            self.max_depth,
            self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, DesignSpec};
    use crate::library::TechNode;

    #[test]
    fn stats_are_consistent_with_netlist() {
        let d = generate(&DesignSpec::new("s", 500, TechNode::N7, 3));
        let s = DesignStats::of(&d.netlist);
        assert_eq!(s.cells, d.netlist.cell_count());
        assert_eq!(s.flops, d.netlist.flops().len());
        assert_eq!(s.endpoints, d.netlist.endpoints().len());
        assert_eq!(s.gates + s.flops + s.inputs + s.outputs, s.cells);
        assert!(s.max_depth >= 2);
        assert!(s.avg_fanout >= 1.0);
        let text = s.to_string();
        assert!(text.contains("cells") && text.contains("depth"));
    }
}
