//! Ergonomic netlist construction.
//!
//! [`NetlistBuilder`] wraps the low-level arena operations with validation,
//! so hand-written designs (tests, examples) and the synthetic generator can
//! build netlists without touching internals.

use crate::cell::{Drive, GateKind, Point};
use crate::graph::Netlist;
use crate::ids::{CellId, NetId};
use crate::library::Library;

/// Incremental netlist builder.
///
/// # Examples
/// ```
/// use rl_ccd_netlist::{NetlistBuilder, Library, TechNode, GateKind, Drive, Point};
///
/// let mut b = NetlistBuilder::new("adder_bit", Library::new(TechNode::N7));
/// let a = b.input(Point::new(0.0, 0.0));
/// let q = b.flop(Drive::X1, Point::new(30.0, 0.0));
/// let x = b.gate(GateKind::Xor2, Drive::X1, Point::new(10.0, 0.0));
/// b.drive(a, x);
/// b.drive(q, x);
/// b.drive(x, q);
/// let netlist = b.finish().expect("consistent netlist");
/// assert_eq!(netlist.cell_count(), 3);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
}

/// Error produced when [`NetlistBuilder::finish`] finds structural problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildNetlistError {
    violations: Vec<String>,
}

impl BuildNetlistError {
    /// The individual structural violations found.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

impl std::fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "netlist has {} structural violations (first: {})",
            self.violations.len(),
            self.violations.first().map(String::as_str).unwrap_or("?")
        )
    }
}

impl std::error::Error for BuildNetlistError {}

impl NetlistBuilder {
    /// Starts building a netlist bound to `library`.
    pub fn new(name: impl Into<String>, library: Library) -> Self {
        Self {
            netlist: Netlist::new(name, library),
        }
    }

    /// Adds a primary input port; its output net is created eagerly.
    pub fn input(&mut self, loc: Point) -> CellId {
        let lib = self.netlist.library().variant(GateKind::Input, Drive::X1);
        let id = self.netlist.push_cell(lib, loc);
        self.netlist.push_net(id);
        id
    }

    /// Adds a primary output port (one input pin, no output net).
    pub fn output(&mut self, loc: Point) -> CellId {
        let lib = self.netlist.library().variant(GateKind::Output, Drive::X1);
        self.netlist.push_cell(lib, loc)
    }

    /// Adds a flip-flop; its Q net is created eagerly.
    pub fn flop(&mut self, drive: Drive, loc: Point) -> CellId {
        let lib = self.netlist.library().variant(GateKind::Dff, drive);
        let id = self.netlist.push_cell(lib, loc);
        self.netlist.push_net(id);
        id
    }

    /// Adds a combinational gate; its output net is created eagerly.
    ///
    /// # Panics
    /// Panics if `kind` is not combinational.
    pub fn gate(&mut self, kind: GateKind, drive: Drive, loc: Point) -> CellId {
        assert!(kind.is_combinational(), "use input/output/flop for {kind}");
        let lib = self.netlist.library().variant(kind, drive);
        let id = self.netlist.push_cell(lib, loc);
        self.netlist.push_net(id);
        id
    }

    /// Connects the output net of `from` to the next free input pin of `to`.
    ///
    /// # Panics
    /// Panics if `from` has no output net or `to` has no free input pin.
    pub fn drive(&mut self, from: CellId, to: CellId) {
        let net = self
            .netlist
            .cell(from)
            .output
            .expect("driver cell must have an output net");
        let kind = self.netlist.kind(to);
        assert!(
            self.netlist.cell(to).inputs.len() < kind.input_count(),
            "{to} ({kind}) has no free input pin"
        );
        self.netlist.connect(net, to);
    }

    /// The output net of a cell, if created.
    pub fn output_net(&self, cell: CellId) -> Option<NetId> {
        self.netlist.cell(cell).output
    }

    /// Number of free (unconnected) input pins remaining on `cell`.
    pub fn free_inputs(&self, cell: CellId) -> usize {
        self.netlist.kind(cell).input_count() - self.netlist.cell(cell).inputs.len()
    }

    /// Read-only view of the netlist under construction.
    pub fn as_netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Validates and returns the finished netlist.
    ///
    /// # Errors
    /// Returns [`BuildNetlistError`] if any cell has unconnected input pins
    /// or the connectivity tables are inconsistent.
    pub fn finish(self) -> Result<Netlist, BuildNetlistError> {
        let violations = self.netlist.check();
        if violations.is_empty() {
            Ok(self.netlist)
        } else {
            Err(BuildNetlistError { violations })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::TechNode;

    #[test]
    fn builds_a_two_stage_pipeline() {
        let mut b = NetlistBuilder::new("pipe", Library::new(TechNode::N12));
        let pi = b.input(Point::new(0.0, 0.0));
        let f1 = b.flop(Drive::X1, Point::new(20.0, 0.0));
        let f2 = b.flop(Drive::X1, Point::new(60.0, 0.0));
        let g1 = b.gate(GateKind::And2, Drive::X1, Point::new(10.0, 0.0));
        let g2 = b.gate(GateKind::Or2, Drive::X1, Point::new(40.0, 0.0));
        let po = b.output(Point::new(80.0, 0.0));
        b.drive(pi, g1);
        b.drive(f1, g1); // feedback-style second input
        b.drive(g1, f1);
        b.drive(f1, g2);
        b.drive(f2, g2);
        b.drive(g2, f2);
        b.drive(f2, po);
        // f1 drives g1, g2 and nothing else; every pin is connected.
        let nl = b.finish().expect("valid");
        assert_eq!(nl.flops().len(), 2);
        assert_eq!(nl.endpoints().len(), 3); // 2 FF D + 1 PO
        assert_eq!(nl.startpoints().len(), 3); // 2 FF Q + 1 PI
    }

    #[test]
    fn unconnected_pin_is_an_error() {
        let mut b = NetlistBuilder::new("bad", Library::new(TechNode::N7));
        let pi = b.input(Point::default());
        let g = b.gate(GateKind::Nand2, Drive::X1, Point::default());
        b.drive(pi, g); // second NAND input left dangling
        let err = b.finish().expect_err("must fail");
        assert!(!err.violations().is_empty());
        assert!(err.to_string().contains("structural violations"));
    }

    #[test]
    fn free_inputs_tracks_connections() {
        let mut b = NetlistBuilder::new("t", Library::new(TechNode::N7));
        let pi = b.input(Point::default());
        let g = b.gate(GateKind::Mux2, Drive::X1, Point::default());
        assert_eq!(b.free_inputs(g), 3);
        b.drive(pi, g);
        assert_eq!(b.free_inputs(g), 2);
        assert!(b.output_net(g).is_some());
        assert_eq!(b.as_netlist().cell_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no free input pin")]
    fn overdriving_panics() {
        let mut b = NetlistBuilder::new("t", Library::new(TechNode::N7));
        let pi = b.input(Point::default());
        let g = b.gate(GateKind::Inv, Drive::X1, Point::default());
        b.drive(pi, g);
        b.drive(pi, g);
    }
}
