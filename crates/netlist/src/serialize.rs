//! Plain-text netlist serialization.
//!
//! A structural format sufficient to round-trip a [`Netlist`] exactly —
//! library bindings, placement, connectivity, and pin order — so designs
//! can be exchanged, diffed, and archived:
//!
//! ```text
//! rl-ccd-netlist v1
//! name block11
//! tech 7nm
//! cells 4
//! c0 IN_X1 0 0 :
//! c1 INV_X1 10 0 : n0
//! ...
//! nets 3
//! n0 c0
//! ...
//! ```
//!
//! Each cell line lists its library cell, location, and input nets in pin
//! order; each net line names only its driver (sinks are reconstructed from
//! the cell inputs).

use crate::graph::Netlist;
use crate::ids::{CellId, NetId};
use crate::library::Library;
use crate::Point;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced when parsing a netlist file fails.
#[derive(Debug)]
pub struct ParseNetlistError {
    line: usize,
    message: String,
}

impl ParseNetlistError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseNetlistError {}

/// Writes `netlist` in the text format.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rl_ccd_netlist::{generate, read_netlist, write_netlist, DesignSpec, TechNode};
///
/// let design = generate(&DesignSpec::new("io", 200, TechNode::N12, 2));
/// let mut text = Vec::new();
/// write_netlist(&design.netlist, &mut text)?;
/// let loaded = read_netlist(&text[..])?;
/// assert_eq!(loaded.cell_count(), design.netlist.cell_count());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Propagates I/O errors.
pub fn write_netlist<W: Write>(netlist: &Netlist, mut w: W) -> std::io::Result<()> {
    writeln!(w, "rl-ccd-netlist v1")?;
    writeln!(w, "name {}", netlist.name())?;
    writeln!(w, "tech {}", netlist.library().tech().name())?;
    writeln!(w, "cells {}", netlist.cell_count())?;
    for id in netlist.cell_ids() {
        let cell = netlist.cell(id);
        let lc = netlist.library().cell(cell.lib);
        write!(
            w,
            "c{} {} {} {} :",
            id.index(),
            lc.name(),
            cell.loc.x,
            cell.loc.y
        )?;
        for &net in &cell.inputs {
            write!(w, " n{}", net.index())?;
        }
        writeln!(w)?;
    }
    writeln!(w, "nets {}", netlist.net_count())?;
    for id in netlist.net_ids() {
        writeln!(w, "n{} c{}", id.index(), netlist.net(id).driver.index())?;
    }
    Ok(())
}

struct CellLine {
    lib_name: String,
    loc: Point,
    inputs: Vec<usize>,
}

/// Reads a netlist previously written by [`write_netlist`].
///
/// # Errors
/// Returns [`ParseNetlistError`] on malformed content or unknown library
/// cells.
pub fn read_netlist<R: BufRead>(r: R) -> Result<Netlist, ParseNetlistError> {
    let mut lines = r.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), ParseNetlistError> {
        match lines.next() {
            Some((n, Ok(l))) => Ok((n + 1, l)),
            Some((n, Err(e))) => Err(ParseNetlistError::new(n + 1, e.to_string())),
            None => Err(ParseNetlistError::new(0, format!("missing {expect}"))),
        }
    };
    let (ln, header) = next("header")?;
    if header.trim() != "rl-ccd-netlist v1" {
        return Err(ParseNetlistError::new(ln, "bad header"));
    }
    let (ln, name_line) = next("name")?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or_else(|| ParseNetlistError::new(ln, "expected name"))?
        .to_string();
    let (ln, tech_line) = next("tech")?;
    let tech_name = tech_line
        .strip_prefix("tech ")
        .ok_or_else(|| ParseNetlistError::new(ln, "expected tech"))?;
    let tech = Library::parse_tech(tech_name)
        .ok_or_else(|| ParseNetlistError::new(ln, format!("unknown tech {tech_name}")))?;
    let library = Library::new(tech);

    let (ln, cells_line) = next("cells")?;
    let n_cells: usize = cells_line
        .strip_prefix("cells ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseNetlistError::new(ln, "expected cell count"))?;
    let mut cell_lines = Vec::with_capacity(n_cells);
    for i in 0..n_cells {
        let (ln, line) = next("cell line")?;
        let (head, tail) = line
            .split_once(':')
            .ok_or_else(|| ParseNetlistError::new(ln, "cell line missing ':'"))?;
        let mut parts = head.split_whitespace();
        let id_tok = parts
            .next()
            .ok_or_else(|| ParseNetlistError::new(ln, "missing cell id"))?;
        if id_tok != format!("c{i}") {
            return Err(ParseNetlistError::new(
                ln,
                format!("expected c{i}, got {id_tok}"),
            ));
        }
        let lib_name = parts
            .next()
            .ok_or_else(|| ParseNetlistError::new(ln, "missing library cell"))?
            .to_string();
        let x: f32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseNetlistError::new(ln, "bad x"))?;
        let y: f32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseNetlistError::new(ln, "bad y"))?;
        let inputs = tail
            .split_whitespace()
            .map(|t| {
                t.strip_prefix('n')
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| ParseNetlistError::new(ln, format!("bad input net {t}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        cell_lines.push(CellLine {
            lib_name,
            loc: Point::new(x, y),
            inputs,
        });
    }

    let (ln, nets_line) = next("nets")?;
    let n_nets: usize = nets_line
        .strip_prefix("nets ")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseNetlistError::new(ln, "expected net count"))?;
    let mut drivers = Vec::with_capacity(n_nets);
    for i in 0..n_nets {
        let (ln, line) = next("net line")?;
        let mut parts = line.split_whitespace();
        let id_tok = parts
            .next()
            .ok_or_else(|| ParseNetlistError::new(ln, "missing net id"))?;
        if id_tok != format!("n{i}") {
            return Err(ParseNetlistError::new(
                ln,
                format!("expected n{i}, got {id_tok}"),
            ));
        }
        let driver: usize = parts
            .next()
            .and_then(|t| t.strip_prefix('c'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseNetlistError::new(ln, "bad driver"))?;
        if driver >= n_cells {
            return Err(ParseNetlistError::new(ln, "driver out of range"));
        }
        drivers.push(driver);
    }

    // Rebuild: cells, then nets in id order, then inputs in pin order.
    let mut netlist = Netlist::new(name, library);
    for cl in &cell_lines {
        let lib = netlist
            .library()
            .find(&cl.lib_name)
            .ok_or_else(|| ParseNetlistError::new(0, format!("unknown cell {}", cl.lib_name)))?;
        netlist.push_cell(lib, cl.loc);
    }
    for &driver in &drivers {
        netlist.push_net(CellId::new(driver));
    }
    for (i, cl) in cell_lines.iter().enumerate() {
        for &net in &cl.inputs {
            if net >= n_nets {
                return Err(ParseNetlistError::new(
                    0,
                    format!("c{i}: net n{net} out of range"),
                ));
            }
            netlist.connect(NetId::new(net), CellId::new(i));
        }
    }
    let violations = netlist.check();
    if !violations.is_empty() {
        return Err(ParseNetlistError::new(
            0,
            format!("inconsistent netlist: {}", violations[0]),
        ));
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, DesignSpec};
    use crate::library::TechNode;

    #[test]
    fn roundtrip_preserves_everything() {
        let d = generate(&DesignSpec::new("roundtrip", 400, TechNode::N12, 9));
        let mut buf = Vec::new();
        write_netlist(&d.netlist, &mut buf).expect("write to memory");
        let loaded = read_netlist(&buf[..]).expect("parse back");
        assert_eq!(loaded.name(), d.netlist.name());
        assert_eq!(loaded.cell_count(), d.netlist.cell_count());
        assert_eq!(loaded.net_count(), d.netlist.net_count());
        assert_eq!(loaded.flops().len(), d.netlist.flops().len());
        assert_eq!(loaded.endpoints().len(), d.netlist.endpoints().len());
        for id in d.netlist.cell_ids() {
            assert_eq!(loaded.cell(id), d.netlist.cell(id), "cell {id} differs");
        }
        for id in d.netlist.net_ids() {
            assert_eq!(loaded.net(id).driver, d.netlist.net(id).driver);
            // Sink sets match (order within a net may differ is false: both
            // are built input-by-input in cell order, so exact equality).
            assert_eq!(loaded.net(id).sinks, d.netlist.net(id).sinks);
        }
    }

    #[test]
    fn timing_agrees_after_roundtrip() {
        // The serialized design must time identically — the real proof that
        // nothing (placement, drive strengths, pin order) was lost.
        let d = generate(&DesignSpec::new("timed", 350, TechNode::N7, 4));
        let mut buf = Vec::new();
        write_netlist(&d.netlist, &mut buf).expect("write");
        let loaded = read_netlist(&buf[..]).expect("read");
        let hp_a = crate::placement::total_hpwl(&d.netlist);
        let hp_b = crate::placement::total_hpwl(&loaded);
        assert_eq!(hp_a, hp_b);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(read_netlist(&b"garbage"[..]).is_err());
        assert!(read_netlist(&b"rl-ccd-netlist v1\nname x\ntech 9nm\n"[..]).is_err());
        let err = read_netlist(
            &b"rl-ccd-netlist v1\nname x\ntech 7nm\ncells 1\nc0 NOPE_X9 0 0 :\nnets 0\n"[..],
        )
        .expect_err("unknown lib cell");
        assert!(err.to_string().contains("unknown cell"));
        // Dangling pin: INV with no input.
        let err = read_netlist(
            &b"rl-ccd-netlist v1\nname x\ntech 7nm\ncells 1\nc0 INV_X1 0 0 :\nnets 0\n"[..],
        )
        .expect_err("inconsistent");
        assert!(err.to_string().contains("inconsistent"));
    }
}
