//! Gate functions, drive strengths, and geometric primitives.

use std::fmt;

/// Logic function class of a library cell.
///
/// The set mirrors a small standard-cell library: sequential elements,
/// buffers/inverters used by data-path optimization, and a handful of
/// combinational functions with one to three inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input port (virtual cell, no library timing).
    Input,
    /// Primary output port (virtual cell, no library timing).
    Output,
    /// D flip-flop (the only sequential element in the library).
    Dff,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// AND-OR-INVERT 2-1 (3 inputs).
    Aoi21,
    /// OR-AND-INVERT 2-1 (3 inputs).
    Oai21,
    /// 2-to-1 multiplexer (3 inputs: a, b, select).
    Mux2,
}

impl GateKind {
    /// Number of data input pins for this gate function.
    ///
    /// Ports have zero or one pins: an [`GateKind::Input`] has no inputs and
    /// an [`GateKind::Output`] has exactly one. The [`GateKind::Dff`] has one
    /// data input (D); its clock pin is modeled separately by the clock
    /// schedule, not as a netlist connection.
    pub fn input_count(self) -> usize {
        match self {
            GateKind::Input => 0,
            GateKind::Output | GateKind::Dff | GateKind::Buf | GateKind::Inv => 1,
            GateKind::Nand2 | GateKind::Nor2 | GateKind::And2 | GateKind::Or2 | GateKind::Xor2 => 2,
            GateKind::Aoi21 | GateKind::Oai21 | GateKind::Mux2 => 3,
        }
    }

    /// Whether the cell drives an output net (everything except output ports).
    pub fn has_output(self) -> bool {
        !matches!(self, GateKind::Output)
    }

    /// Whether this is a combinational logic gate (not a port or register).
    pub fn is_combinational(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Output | GateKind::Dff)
    }

    /// All combinational gate functions, used when building libraries.
    pub fn combinational() -> &'static [GateKind] {
        &[
            GateKind::Buf,
            GateKind::Inv,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Xor2,
            GateKind::Aoi21,
            GateKind::Oai21,
            GateKind::Mux2,
        ]
    }

    /// Short library-style name ("INV", "NAND2", ...).
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "IN",
            GateKind::Output => "OUT",
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Inv => "INV",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Aoi21 => "AOI21",
            GateKind::Oai21 => "OAI21",
            GateKind::Mux2 => "MUX2",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Drive strength of a library cell, as a power-of-two multiplier (X1..X8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Drive(u8);

impl Drive {
    /// Smallest drive strength (X1).
    pub const X1: Drive = Drive(0);
    /// X2 drive strength.
    pub const X2: Drive = Drive(1);
    /// X4 drive strength.
    pub const X4: Drive = Drive(2);
    /// Largest drive strength (X8).
    pub const X8: Drive = Drive(3);

    /// All drive strengths in increasing order.
    pub fn all() -> [Drive; 4] {
        [Drive::X1, Drive::X2, Drive::X4, Drive::X8]
    }

    /// The drive multiplier (1, 2, 4, or 8).
    pub fn multiplier(self) -> f32 {
        (1u32 << self.0) as f32
    }

    /// Next stronger drive, if any.
    pub fn upsized(self) -> Option<Drive> {
        (self.0 < 3).then(|| Drive(self.0 + 1))
    }

    /// Next weaker drive, if any.
    pub fn downsized(self) -> Option<Drive> {
        (self.0 > 0).then(|| Drive(self.0 - 1))
    }

    /// Rank in 0..4, useful for indexing.
    pub fn rank(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", 1u32 << self.0)
    }
}

/// A 2-D placement location in micrometres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// X coordinate in µm.
    pub x: f32,
    /// Y coordinate in µm.
    pub y: f32,
}

impl Point {
    /// Creates a point from coordinates in µm.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another point, in µm.
    pub fn manhattan(self, other: Point) -> f32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Midpoint between two locations.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts_match_function() {
        assert_eq!(GateKind::Input.input_count(), 0);
        assert_eq!(GateKind::Inv.input_count(), 1);
        assert_eq!(GateKind::Nand2.input_count(), 2);
        assert_eq!(GateKind::Mux2.input_count(), 3);
        assert_eq!(GateKind::Dff.input_count(), 1);
        assert_eq!(GateKind::Output.input_count(), 1);
    }

    #[test]
    fn combinational_classification() {
        assert!(GateKind::Nand2.is_combinational());
        assert!(!GateKind::Dff.is_combinational());
        assert!(!GateKind::Input.is_combinational());
        for k in GateKind::combinational() {
            assert!(k.is_combinational());
            assert!(k.has_output());
        }
    }

    #[test]
    fn drive_ladder() {
        assert_eq!(Drive::X1.upsized(), Some(Drive::X2));
        assert_eq!(Drive::X8.upsized(), None);
        assert_eq!(Drive::X1.downsized(), None);
        assert_eq!(Drive::X4.downsized(), Some(Drive::X2));
        assert_eq!(Drive::X8.multiplier(), 8.0);
        assert_eq!(format!("{}", Drive::X4), "X4");
    }

    #[test]
    fn manhattan_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.manhattan(b), 7.0);
        let m = a.midpoint(b);
        assert_eq!((m.x, m.y), (2.5, 0.0));
    }
}
