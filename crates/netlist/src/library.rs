//! Technology libraries: per-gate timing, capacitance, and power data.
//!
//! Three technology flavours are provided, loosely mirroring the 5 nm, 7 nm,
//! and 12 nm nodes of the paper's benchmark suite. Absolute numbers are
//! synthetic but internally consistent: finer nodes are faster, have lower
//! capacitance, and leak relatively more.

use crate::cell::{Drive, GateKind};
use crate::ids::LibCellId;

/// Technology node flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 5 nm-flavoured scaling.
    N5,
    /// 7 nm-flavoured scaling.
    N7,
    /// 12 nm-flavoured scaling.
    N12,
}

impl TechNode {
    /// Display name ("5nm", ...).
    pub fn name(self) -> &'static str {
        match self {
            TechNode::N5 => "5nm",
            TechNode::N7 => "7nm",
            TechNode::N12 => "12nm",
        }
    }

    /// Delay scale relative to the 7 nm baseline.
    fn delay_scale(self) -> f32 {
        match self {
            TechNode::N5 => 0.8,
            TechNode::N7 => 1.0,
            TechNode::N12 => 1.45,
        }
    }

    /// Capacitance scale relative to the 7 nm baseline.
    fn cap_scale(self) -> f32 {
        match self {
            TechNode::N5 => 0.85,
            TechNode::N7 => 1.0,
            TechNode::N12 => 1.35,
        }
    }

    /// Leakage scale relative to the 7 nm baseline.
    fn leakage_scale(self) -> f32 {
        match self {
            TechNode::N5 => 1.6,
            TechNode::N7 => 1.0,
            TechNode::N12 => 0.5,
        }
    }
}

/// Interconnect parasitics for a technology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireModel {
    /// Wire capacitance per µm of Manhattan length, in fF/µm.
    pub cap_per_um: f32,
    /// Wire resistance per µm, in (ps/fF)/µm (Elmore-style units).
    pub res_per_um: f32,
}

impl WireModel {
    /// Lumped Elmore-style wire delay for a segment of `len` µm loaded by
    /// `load_cap` fF at the far end, in ps.
    pub fn delay(&self, len: f32, load_cap: f32) -> f32 {
        let wire_cap = self.cap_per_um * len;
        self.res_per_um * len * (0.5 * wire_cap + load_cap)
    }

    /// Total wire capacitance of a segment, in fF.
    pub fn cap(&self, len: f32) -> f32 {
        self.cap_per_um * len
    }
}

/// One library cell: a gate function at a drive strength, with timing,
/// capacitance, and power data.
#[derive(Clone, Debug, PartialEq)]
pub struct LibCell {
    /// Gate function.
    pub kind: GateKind,
    /// Drive strength.
    pub drive: Drive,
    /// Intrinsic (no-load) delay in ps. For a DFF this is the clk→Q delay.
    pub intrinsic: f32,
    /// Output resistance in ps/fF: delay grows by `resistance * load`.
    pub resistance: f32,
    /// Input pin capacitance in fF (per pin; pin asymmetry is modeled in the
    /// delay calculation, not in the capacitance).
    pub input_cap: f32,
    /// Internal (short-circuit + CLK) energy per output toggle, in fJ.
    pub internal_energy: f32,
    /// Leakage power in nW.
    pub leakage: f32,
    /// Maximum load this cell should drive, in fF.
    pub max_load: f32,
    /// Output slew resistance in ps/fF: output transition is
    /// `slew_intrinsic + slew_resistance * load`.
    pub slew_resistance: f32,
    /// Intrinsic output slew in ps.
    pub slew_intrinsic: f32,
    /// Register setup time in ps (DFF only, 0 otherwise).
    pub setup: f32,
    /// Register hold time in ps (DFF only, 0 otherwise).
    pub hold: f32,
}

impl LibCell {
    /// Full library name, e.g. "NAND2_X4".
    pub fn name(&self) -> String {
        format!("{}_{}", self.kind.name(), self.drive)
    }
}

/// A complete technology library: all gate functions at all drive strengths,
/// plus the interconnect model.
#[derive(Clone, Debug)]
pub struct Library {
    tech: TechNode,
    cells: Vec<LibCell>,
    /// `variants[kind_rank][drive_rank]` → LibCellId.
    variants: Vec<[LibCellId; 4]>,
    wire: WireModel,
    /// Supply voltage in volts (used by the power model).
    vdd: f32,
    /// Sensitivity of delay to input slew (dimensionless fraction of slew
    /// added to delay).
    slew_to_delay: f32,
    /// Extra delay fraction per input pin index (pin 0 is fastest).
    pin_asymmetry: f32,
}

fn kind_rank(kind: GateKind) -> usize {
    match kind {
        GateKind::Input => 0,
        GateKind::Output => 1,
        GateKind::Dff => 2,
        GateKind::Buf => 3,
        GateKind::Inv => 4,
        GateKind::Nand2 => 5,
        GateKind::Nor2 => 6,
        GateKind::And2 => 7,
        GateKind::Or2 => 8,
        GateKind::Xor2 => 9,
        GateKind::Aoi21 => 10,
        GateKind::Oai21 => 11,
        GateKind::Mux2 => 12,
    }
}

const ALL_KINDS: [GateKind; 13] = [
    GateKind::Input,
    GateKind::Output,
    GateKind::Dff,
    GateKind::Buf,
    GateKind::Inv,
    GateKind::Nand2,
    GateKind::Nor2,
    GateKind::And2,
    GateKind::Or2,
    GateKind::Xor2,
    GateKind::Aoi21,
    GateKind::Oai21,
    GateKind::Mux2,
];

/// Baseline (7 nm, X1) parameters per gate kind:
/// (intrinsic ps, resistance ps/fF, input cap fF, internal energy fJ,
///  leakage nW, slew intrinsic ps, slew resistance ps/fF)
fn baseline(kind: GateKind) -> (f32, f32, f32, f32, f32, f32, f32) {
    match kind {
        GateKind::Input => (0.0, 1.5, 0.0, 0.0, 0.0, 10.0, 1.0),
        GateKind::Output => (0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0),
        GateKind::Dff => (42.0, 2.6, 1.2, 2.4, 22.0, 16.0, 1.6),
        GateKind::Buf => (9.0, 1.9, 0.8, 0.55, 4.0, 9.0, 1.2),
        GateKind::Inv => (6.0, 1.7, 0.7, 0.38, 3.0, 8.0, 1.1),
        GateKind::Nand2 => (11.0, 2.2, 1.0, 0.62, 5.5, 11.0, 1.4),
        GateKind::Nor2 => (13.0, 2.5, 1.0, 0.65, 5.5, 12.0, 1.5),
        GateKind::And2 => (15.0, 2.1, 1.0, 0.80, 6.5, 11.0, 1.3),
        GateKind::Or2 => (16.0, 2.3, 1.0, 0.82, 6.5, 12.0, 1.4),
        GateKind::Xor2 => (22.0, 2.8, 1.4, 1.30, 9.0, 14.0, 1.7),
        GateKind::Aoi21 => (17.0, 2.6, 1.1, 0.95, 7.5, 13.0, 1.6),
        GateKind::Oai21 => (18.0, 2.7, 1.1, 0.97, 7.5, 13.0, 1.6),
        GateKind::Mux2 => (20.0, 2.6, 1.2, 1.10, 8.5, 13.0, 1.6),
    }
}

impl Library {
    /// Builds the full library for a technology node.
    pub fn new(tech: TechNode) -> Self {
        let ds = tech.delay_scale();
        let cs = tech.cap_scale();
        let ls = tech.leakage_scale();
        let mut cells = Vec::new();
        let mut variants = vec![[LibCellId::new(0); 4]; ALL_KINDS.len()];
        for kind in ALL_KINDS {
            let (t0, r0, c0, e0, l0, s0, sr0) = baseline(kind);
            for drive in Drive::all() {
                let m = drive.multiplier();
                let id = LibCellId::new(cells.len());
                variants[kind_rank(kind)][drive.rank()] = id;
                cells.push(LibCell {
                    kind,
                    drive,
                    // Stronger drives: slightly higher intrinsic delay, much
                    // lower resistance, larger input cap and power.
                    intrinsic: t0 * ds * (1.0 + 0.06 * (m - 1.0).ln_1p()),
                    resistance: r0 * ds / m,
                    input_cap: c0 * cs * (0.55 + 0.45 * m),
                    internal_energy: e0 * cs * (0.5 + 0.5 * m),
                    leakage: l0 * ls * m,
                    max_load: 16.0 * cs * m,
                    slew_resistance: sr0 * ds / m,
                    slew_intrinsic: s0 * ds,
                    setup: if kind == GateKind::Dff {
                        24.0 * ds
                    } else {
                        0.0
                    },
                    hold: if kind == GateKind::Dff { 5.0 * ds } else { 0.0 },
                });
            }
        }
        let wire = match tech {
            TechNode::N5 => WireModel {
                cap_per_um: 0.18,
                res_per_um: 0.065,
            },
            TechNode::N7 => WireModel {
                cap_per_um: 0.20,
                res_per_um: 0.050,
            },
            TechNode::N12 => WireModel {
                cap_per_um: 0.24,
                res_per_um: 0.034,
            },
        };
        Self {
            tech,
            cells,
            variants,
            wire,
            vdd: match tech {
                TechNode::N5 => 0.65,
                TechNode::N7 => 0.70,
                TechNode::N12 => 0.80,
            },
            slew_to_delay: 0.18,
            pin_asymmetry: 0.07,
        }
    }

    /// The technology node of this library.
    pub fn tech(&self) -> TechNode {
        self.tech
    }

    /// Interconnect model.
    pub fn wire(&self) -> &WireModel {
        &self.wire
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f32 {
        self.vdd
    }

    /// Fraction of input slew added to cell delay.
    pub fn slew_to_delay(&self) -> f32 {
        self.slew_to_delay
    }

    /// Extra delay fraction per input pin index (pin swapping exploits this).
    pub fn pin_asymmetry(&self) -> f32 {
        self.pin_asymmetry
    }

    /// Looks up a library cell by id.
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.index()]
    }

    /// Number of library cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty (never true for a built library).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The library cell implementing `kind` at `drive`.
    pub fn variant(&self, kind: GateKind, drive: Drive) -> LibCellId {
        self.variants[kind_rank(kind)][drive.rank()]
    }

    /// The next-stronger variant of `id`, if one exists.
    pub fn upsize(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.drive.upsized().map(|d| self.variant(c.kind, d))
    }

    /// The next-weaker variant of `id`, if one exists.
    pub fn downsize(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.drive.downsized().map(|d| self.variant(c.kind, d))
    }

    /// Iterates over all library cells with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (LibCellId, &LibCell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (LibCellId::new(i), c))
    }

    /// Looks up a library cell by its full name ("NAND2_X4").
    pub fn find(&self, name: &str) -> Option<LibCellId> {
        self.iter()
            .find(|(_, c)| c.name() == name)
            .map(|(id, _)| id)
    }

    /// Parses a technology node from its display name ("7nm").
    pub fn parse_tech(name: &str) -> Option<TechNode> {
        match name {
            "5nm" => Some(TechNode::N5),
            "7nm" => Some(TechNode::N7),
            "12nm" => Some(TechNode::N12),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_all_kinds_and_drives() {
        let lib = Library::new(TechNode::N7);
        for kind in ALL_KINDS {
            for drive in Drive::all() {
                let id = lib.variant(kind, drive);
                let c = lib.cell(id);
                assert_eq!(c.kind, kind);
                assert_eq!(c.drive, drive);
            }
        }
        assert_eq!(lib.len(), ALL_KINDS.len() * 4);
        assert!(!lib.is_empty());
    }

    #[test]
    fn upsizing_reduces_resistance_and_raises_cap() {
        let lib = Library::new(TechNode::N7);
        let x1 = lib.variant(GateKind::Nand2, Drive::X1);
        let x2 = lib.upsize(x1).expect("x2 exists");
        assert!(lib.cell(x2).resistance < lib.cell(x1).resistance);
        assert!(lib.cell(x2).input_cap > lib.cell(x1).input_cap);
        assert!(lib.cell(x2).leakage > lib.cell(x1).leakage);
        let x8 = lib.variant(GateKind::Nand2, Drive::X8);
        assert!(lib.upsize(x8).is_none());
        assert_eq!(lib.downsize(x2), Some(x1));
    }

    #[test]
    fn finer_nodes_are_faster_and_leakier() {
        let n5 = Library::new(TechNode::N5);
        let n12 = Library::new(TechNode::N12);
        let k = GateKind::Inv;
        let d = Drive::X1;
        assert!(n5.cell(n5.variant(k, d)).intrinsic < n12.cell(n12.variant(k, d)).intrinsic);
        assert!(n5.cell(n5.variant(k, d)).leakage > n12.cell(n12.variant(k, d)).leakage);
        assert_eq!(n5.tech().name(), "5nm");
    }

    #[test]
    fn dff_has_setup_hold_and_combs_do_not() {
        let lib = Library::new(TechNode::N12);
        let dff = lib.cell(lib.variant(GateKind::Dff, Drive::X2));
        assert!(dff.setup > 0.0 && dff.hold > 0.0);
        let inv = lib.cell(lib.variant(GateKind::Inv, Drive::X2));
        assert_eq!(inv.setup, 0.0);
        assert_eq!(inv.hold, 0.0);
    }

    #[test]
    fn wire_delay_grows_with_length_and_load() {
        let lib = Library::new(TechNode::N7);
        let w = lib.wire();
        assert!(w.delay(100.0, 2.0) > w.delay(10.0, 2.0));
        assert!(w.delay(50.0, 8.0) > w.delay(50.0, 1.0));
        assert!((w.cap(10.0) - 10.0 * w.cap_per_um).abs() < 1e-6);
    }

    #[test]
    fn lib_cell_names() {
        let lib = Library::new(TechNode::N7);
        let id = lib.variant(GateKind::Aoi21, Drive::X4);
        assert_eq!(lib.cell(id).name(), "AOI21_X4");
    }
}
