//! Fan-in cone tracing and cone-overlap calculation (paper Fig. 3).
//!
//! The fan-in cone of an endpoint is the set of *combinational* cells
//! reachable backwards from the endpoint pin, stopping at startpoints
//! (register Q outputs and primary inputs). The overlap ratio between a
//! selected endpoint `a` and a candidate `b` divides the number of shared
//! cone cells by the size of the candidate's cone; RL-CCD masks candidates
//! whose ratio exceeds the threshold ρ.

use crate::graph::{Endpoint, Netlist};
use crate::ids::{CellId, EndpointId};

/// Fan-in cone of one endpoint: sorted, deduplicated combinational cells.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Cone {
    cells: Vec<CellId>,
}

impl Cone {
    /// Cells in the cone, sorted ascending.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells in the cone.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cone is empty (endpoint fed directly by a startpoint).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `cell` belongs to the cone.
    pub fn contains(&self, cell: CellId) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// Size of the intersection with another cone (sorted-merge, O(n+m)).
    pub fn intersection_size(&self, other: &Cone) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.cells.len() && j < other.cells.len() {
            match self.cells[i].cmp(&other.cells[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// Traces the fan-in cone of `endpoint` in `netlist`.
///
/// Tracing walks input nets backwards from the endpoint cell; it collects
/// combinational cells and stops at flip-flops and primary inputs (the
/// previous startpoints), exactly as in the paper's Fig. 3.
pub fn fanin_cone(netlist: &Netlist, endpoint: Endpoint) -> Cone {
    let mut seen = vec![false; netlist.cell_count()];
    let mut cells = Vec::new();
    let mut stack: Vec<CellId> = Vec::new();
    // Seed with the drivers of the endpoint cell's inputs.
    let ep_cell = endpoint.cell();
    for &net in &netlist.cell(ep_cell).inputs {
        stack.push(netlist.net(net).driver);
    }
    while let Some(cell) = stack.pop() {
        if seen[cell.index()] {
            continue;
        }
        seen[cell.index()] = true;
        if !netlist.kind(cell).is_combinational() {
            continue; // startpoint boundary: FF Q or primary input
        }
        cells.push(cell);
        for &net in &netlist.cell(cell).inputs {
            let driver = netlist.net(net).driver;
            if !seen[driver.index()] {
                stack.push(driver);
            }
        }
    }
    cells.sort_unstable();
    Cone { cells }
}

/// Precomputed fan-in cones for a set of endpoints, with overlap queries.
///
/// # Examples
/// ```
/// use rl_ccd_netlist::{generate, ConeSet, DesignSpec, EndpointId, TechNode};
///
/// let design = generate(&DesignSpec::new("cones", 300, TechNode::N7, 1));
/// let eps: Vec<EndpointId> = (0..design.netlist.endpoints().len())
///     .map(EndpointId::new)
///     .collect();
/// let cones = ConeSet::new(&design.netlist, &eps);
/// // Overlap ratios are always in [0, 1].
/// let r = cones.overlap_ratio(0, 1);
/// assert!((0.0..=1.0).contains(&r));
/// ```
#[derive(Clone, Debug)]
pub struct ConeSet {
    endpoints: Vec<EndpointId>,
    cones: Vec<Cone>,
}

impl ConeSet {
    /// Traces the cones of the given endpoints.
    pub fn new(netlist: &Netlist, endpoints: &[EndpointId]) -> Self {
        let cones = endpoints
            .iter()
            .map(|&e| fanin_cone(netlist, netlist.endpoint(e)))
            .collect();
        Self {
            endpoints: endpoints.to_vec(),
            cones,
        }
    }

    /// The endpoints this set was built for (positions are local indices).
    pub fn endpoints(&self) -> &[EndpointId] {
        &self.endpoints
    }

    /// Number of endpoints in the set.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The cone of the endpoint at local index `i`.
    pub fn cone(&self, i: usize) -> &Cone {
        &self.cones[i]
    }

    /// Overlap ratio of candidate `b` against selected endpoint `a`
    /// (both local indices): `|cone(a) ∩ cone(b)| / |cone(b)|`.
    ///
    /// An empty candidate cone overlaps fully (ratio 1.0) when the selected
    /// cone is also empty and they share a driver region; we define the
    /// empty/empty case as 0.0 so directly-register-fed endpoints are never
    /// masked by each other spuriously.
    pub fn overlap_ratio(&self, a: usize, b: usize) -> f32 {
        let cb = &self.cones[b];
        if cb.is_empty() {
            return 0.0;
        }
        let shared = self.cones[a].intersection_size(cb);
        shared as f32 / cb.len() as f32
    }

    /// Local indices of all candidates whose overlap with `selected`
    /// (a local index) strictly exceeds `rho`. `selected` itself is not
    /// included.
    pub fn overlapping(&self, selected: usize, rho: f32) -> Vec<usize> {
        (0..self.cones.len())
            .filter(|&b| b != selected && self.overlap_ratio(selected, b) > rho)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cell::{Drive, GateKind, Point};
    use crate::library::{Library, TechNode};

    /// Two endpoints sharing part of a logic cone:
    ///   pi1 -> g1 -> g2 -> f_a(D)
    ///   pi2 ----------^
    ///   g1 -> g3 -> f_b(D)      (g1 shared between both cones)
    fn shared_cone_netlist() -> (Netlist, Vec<EndpointId>) {
        let mut b = NetlistBuilder::new("shared", Library::new(TechNode::N7));
        let pi1 = b.input(Point::new(0.0, 0.0));
        let pi2 = b.input(Point::new(0.0, 10.0));
        let g1 = b.gate(GateKind::Buf, Drive::X1, Point::new(10.0, 0.0));
        let g2 = b.gate(GateKind::And2, Drive::X1, Point::new(20.0, 0.0));
        let g3 = b.gate(GateKind::Inv, Drive::X1, Point::new(20.0, 10.0));
        let fa = b.flop(Drive::X1, Point::new(30.0, 0.0));
        let fb = b.flop(Drive::X1, Point::new(30.0, 10.0));
        let po_a = b.output(Point::new(40.0, 0.0));
        let po_b = b.output(Point::new(40.0, 10.0));
        b.drive(pi1, g1);
        b.drive(g1, g2);
        b.drive(pi2, g2);
        b.drive(g2, fa);
        b.drive(g1, g3);
        b.drive(g3, fb);
        b.drive(fa, po_a);
        b.drive(fb, po_b);
        let nl = b.finish().expect("valid");
        let eps: Vec<EndpointId> = (0..nl.endpoints().len()).map(EndpointId::new).collect();
        (nl, eps)
    }

    #[test]
    fn cone_stops_at_startpoints() {
        let (nl, _) = shared_cone_netlist();
        // Endpoint of fa is FlopD(fa): cone = {g1, g2}.
        let fa_ep = nl
            .endpoints()
            .iter()
            .copied()
            .find(|e| e.is_register())
            .expect("has register endpoint");
        let cone = fanin_cone(&nl, fa_ep);
        assert_eq!(cone.len(), 2);
        assert!(!cone.is_empty());
        // Primary inputs are not in the cone.
        for &c in cone.cells() {
            assert!(nl.kind(c).is_combinational());
        }
    }

    #[test]
    fn overlap_ratio_counts_shared_cells() {
        let (nl, eps) = shared_cone_netlist();
        let set = ConeSet::new(&nl, &eps);
        // Find the two register endpoints.
        let regs: Vec<usize> = (0..set.len())
            .filter(|&i| nl.endpoint(set.endpoints()[i]).is_register())
            .collect();
        let (a, b) = (regs[0], regs[1]);
        // cone(fa) = {g1,g2}, cone(fb) = {g1,g3}; shared = {g1}.
        assert_eq!(set.cone(a).intersection_size(set.cone(b)), 1);
        assert!((set.overlap_ratio(a, b) - 0.5).abs() < 1e-6);
        assert!((set.overlap_ratio(b, a) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn po_cone_through_flop_is_empty() {
        let (nl, eps) = shared_cone_netlist();
        let set = ConeSet::new(&nl, &eps);
        let po_idx = (0..set.len())
            .find(|&i| !nl.endpoint(set.endpoints()[i]).is_register())
            .expect("has PO endpoint");
        // PO is fed directly by a flop → empty cone, never masked.
        assert!(set.cone(po_idx).is_empty());
        for other in 0..set.len() {
            if other != po_idx {
                assert_eq!(set.overlap_ratio(other, po_idx), 0.0);
            }
        }
    }

    #[test]
    fn overlapping_respects_threshold() {
        let (nl, eps) = shared_cone_netlist();
        let set = ConeSet::new(&nl, &eps);
        let regs: Vec<usize> = (0..set.len())
            .filter(|&i| nl.endpoint(set.endpoints()[i]).is_register())
            .collect();
        let masked_low = set.overlapping(regs[0], 0.3);
        assert!(masked_low.contains(&regs[1]));
        let masked_high = set.overlapping(regs[0], 0.6);
        assert!(!masked_high.contains(&regs[1]));
        assert!(!masked_low.contains(&regs[0]), "self never masked");
    }

    #[test]
    fn cone_contains_is_consistent() {
        let (nl, eps) = shared_cone_netlist();
        let set = ConeSet::new(&nl, &eps);
        for i in 0..set.len() {
            let cone = set.cone(i);
            for &c in cone.cells() {
                assert!(cone.contains(c));
            }
            assert!(!cone.contains(CellId::new(nl.cell_count())));
        }
        assert!(!set.is_empty());
    }
}
