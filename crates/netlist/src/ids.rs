//! Strongly-typed index newtypes for netlist entities.
//!
//! All netlist storage is arena-style (`Vec`-backed), so entities are
//! referred to by dense integer ids. Newtypes keep cell/net/library-cell
//! indices from being confused with one another (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// Returns the raw index for container access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a cell (gate, register, or port) in a [`crate::Netlist`].
    CellId,
    "c"
);
id_type!(
    /// Identifier of a net (a driver pin plus its sink pins).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a library cell (a gate function at a drive strength).
    LibCellId,
    "L"
);
id_type!(
    /// Identifier of a timing endpoint (register D input or primary output).
    EndpointId,
    "e"
);
id_type!(
    /// Identifier of a timing startpoint (register Q output or primary input).
    StartpointId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn debug_and_display_are_prefixed() {
        assert_eq!(format!("{:?}", NetId::new(7)), "n7");
        assert_eq!(format!("{}", EndpointId::new(3)), "e3");
        assert_eq!(format!("{}", StartpointId::new(1)), "s1");
        assert_eq!(format!("{}", LibCellId::new(9)), "L9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert_eq!(CellId::new(5), CellId::new(5));
    }
}
