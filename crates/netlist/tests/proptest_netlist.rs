//! Property-based tests of the netlist substrate: the generator must emit
//! structurally-valid, deterministic designs for *any* sane spec, and the
//! analyses (cones, overlap, message graph) must uphold their invariants.

use proptest::prelude::*;
use rl_ccd_netlist::{
    fanin_cone, generate, message_graph, ConeSet, DesignSpec, EndpointId, TechNode,
};

fn arb_tech() -> impl Strategy<Value = TechNode> {
    prop_oneof![Just(TechNode::N5), Just(TechNode::N7), Just(TechNode::N12)]
}

fn arb_spec() -> impl Strategy<Value = DesignSpec> {
    (
        200usize..1200,
        arb_tech(),
        0u64..1000,
        0.05f32..0.5,
        0.0f32..0.45,
        0.0f32..0.45,
        3usize..10,
    )
        .prop_map(|(cells, tech, seed, viol, deep, chain, depth)| {
            let mut spec = DesignSpec::new("prop", cells, tech, seed);
            spec.viol_frac = viol;
            spec.deep_frac = deep;
            spec.chain_frac = chain;
            spec.base_depth = depth;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_always_produces_valid_netlists(spec in arb_spec()) {
        let d = generate(&spec);
        prop_assert!(d.netlist.check().is_empty(), "{:?}", d.netlist.check());
        prop_assert!(d.period_ps > 0.0 && d.period_ps.is_finite());
        prop_assert_eq!(d.endpoint_class.len(), d.netlist.endpoints().len());
        prop_assert!(!d.netlist.flops().is_empty());
        // Every flop has exactly one data input and an output net.
        for &f in d.netlist.flops() {
            prop_assert_eq!(d.netlist.cell(f).inputs.len(), 1);
            prop_assert!(d.netlist.cell(f).output.is_some());
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec(spec in arb_spec()) {
        let a = generate(&spec);
        let b = generate(&spec);
        prop_assert_eq!(a.netlist.cell_count(), b.netlist.cell_count());
        prop_assert_eq!(a.netlist.net_count(), b.netlist.net_count());
        prop_assert_eq!(a.period_ps, b.period_ps);
        prop_assert_eq!(a.endpoint_class, b.endpoint_class);
    }

    #[test]
    fn cone_overlap_ratios_are_well_formed(seed in 0u64..500) {
        let d = generate(&DesignSpec::new("cone", 500, TechNode::N7, seed));
        let eps: Vec<EndpointId> = (0..d.netlist.endpoints().len().min(40))
            .map(EndpointId::new)
            .collect();
        let cones = ConeSet::new(&d.netlist, &eps);
        for a in 0..cones.len() {
            for b in 0..cones.len() {
                let r = cones.overlap_ratio(a, b);
                prop_assert!((0.0..=1.0).contains(&r), "ratio {r} out of range");
            }
            // Self-overlap of a non-empty cone is 1.
            if !cones.cone(a).is_empty() {
                prop_assert_eq!(cones.overlap_ratio(a, a), 1.0);
            }
        }
    }

    #[test]
    fn cones_contain_only_combinational_cells(seed in 0u64..500) {
        let d = generate(&DesignSpec::new("cone2", 400, TechNode::N12, seed));
        for ep in d.netlist.endpoints().iter().take(30) {
            let cone = fanin_cone(&d.netlist, *ep);
            for &c in cone.cells() {
                prop_assert!(d.netlist.kind(c).is_combinational());
            }
        }
    }

    #[test]
    fn message_graph_is_symmetric_and_normalized(seed in 0u64..500, cap in 2usize..64) {
        let d = generate(&DesignSpec::new("mg", 400, TechNode::N7, seed));
        let adj = message_graph(&d.netlist, cap);
        prop_assert_eq!(adj.node_count(), d.netlist.cell_count());
        for v in 0..adj.node_count() {
            let w: f32 = adj.weights_of(v).iter().sum();
            if adj.degree(v) > 0 {
                prop_assert!((w - 1.0).abs() < 1e-5);
            }
            // Undirected: every edge has its reverse.
            for &u in adj.neighbors(v) {
                prop_assert!(
                    adj.neighbors(u as usize).contains(&(v as u32)),
                    "edge {v}->{u} missing reverse"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serialization_roundtrips_any_generated_design(spec in arb_spec()) {
        let d = generate(&spec);
        let mut buf = Vec::new();
        rl_ccd_netlist::write_netlist(&d.netlist, &mut buf).expect("write to memory");
        let loaded = rl_ccd_netlist::read_netlist(&buf[..]).expect("parse back");
        prop_assert_eq!(loaded.cell_count(), d.netlist.cell_count());
        prop_assert_eq!(loaded.net_count(), d.netlist.net_count());
        prop_assert_eq!(loaded.flops().len(), d.netlist.flops().len());
        // Spot-check structural identity on a sample of cells.
        for i in (0..d.netlist.cell_count()).step_by(17) {
            let id = rl_ccd_netlist::CellId::new(i);
            prop_assert_eq!(loaded.cell(id), d.netlist.cell(id));
        }
    }

    #[test]
    fn verilog_export_is_wellformed_for_any_design(spec in arb_spec()) {
        let d = generate(&spec);
        let mut buf = Vec::new();
        rl_ccd_netlist::write_verilog(&d.netlist, &mut buf).expect("write to memory");
        let text = String::from_utf8(buf).expect("utf8");
        prop_assert!(text.contains("module "));
        prop_assert!(text.trim_end().ends_with("endmodule"));
        // Instance count matches non-port cells.
        let ports = d
            .netlist
            .cell_ids()
            .filter(|&c| !matches!(
                d.netlist.kind(c),
                rl_ccd_netlist::GateKind::Input | rl_ccd_netlist::GateKind::Output
            ))
            .count();
        let instances = text.lines().filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_uppercase())).count();
        prop_assert_eq!(instances, ports);
    }
}
