//! Criterion benchmarks of the learning stack: EP-GNN forward pass, one
//! complete selection rollout, and a REINFORCE iteration's backward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::{CcdEnv, RlCcd, RlConfig};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_nn::Tape;
use std::time::Duration;

fn gnn_forward(c: &mut Criterion) {
    let d = generate(&DesignSpec::new("bench", 1500, TechNode::N7, 4));
    let env = CcdEnv::new(d, FlowRecipe::default(), 24);
    let (model, params) = RlCcd::init(RlConfig::default());
    c.bench_function("epgnn_forward_1500c", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = tape.leaf(env.features().with_flags(&[]));
            model.gnn_forward(&mut tape, &binding, x, env.adjacency(), env.readout())
        });
    });
}

fn rollout(c: &mut Criterion) {
    let d = generate(&DesignSpec::new("bench", 1000, TechNode::N7, 5));
    let env = CcdEnv::new(d, FlowRecipe::default(), 24);
    let (model, params) = RlCcd::init(RlConfig::default());
    let mut group = c.benchmark_group("rollout");
    group.sample_size(10);
    group.bench_function("selection_trajectory_1k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            model.rollout(&params, &env, &mut rng)
        });
    });
    group.bench_function("trajectory_backward_1k", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let ro = model.rollout(&params, &env, &mut rng);
        b.iter(|| ro.tape.backward(ro.total_log_prob));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = gnn_forward, rollout
}
criterion_main!(benches);
