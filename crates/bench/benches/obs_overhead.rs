//! Criterion benchmark of the observability layer's overhead on the flow.
//!
//! Three cases on the same design:
//! * `uninstrumented_baseline` — the flow with no recorder attached: every
//!   `span!`/`counter!` macro takes the disabled fast path (one relaxed
//!   atomic load) and must cost ~nothing;
//! * `recorder_attached` — the flow with a live recorder collecting spans
//!   and metrics;
//! * `disabled_macro_probe` — a tight loop of disabled macro hits, to put
//!   a number on the fast path itself.
//!
//! The acceptance bar for this PR: `uninstrumented_baseline` within 2% of
//! the pre-instrumentation flow (compare against `flow_bench`'s
//! `full_flow` history).

use criterion::{criterion_group, criterion_main, Criterion};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_obs::Recorder;
use std::time::Duration;

fn flow_overhead(c: &mut Criterion) {
    let design = generate(&DesignSpec::new("obsbench", 1200, TechNode::N7, 9));
    let recipe = FlowRecipe::default();
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    group.bench_function("uninstrumented_baseline", |b| {
        assert!(!rl_ccd_obs::enabled(), "no recorder may leak in");
        b.iter(|| recipe.run(&design, &[]));
    });

    group.bench_function("recorder_attached", |b| {
        b.iter(|| {
            let recorder = Recorder::new();
            let _obs = rl_ccd_obs::attach(&recorder);
            recipe.run(&design, &[])
        });
    });

    group.finish();
}

fn macro_fast_path(c: &mut Criterion) {
    c.bench_function("disabled_macro_probe_1k", |b| {
        assert!(!rl_ccd_obs::enabled(), "no recorder may leak in");
        b.iter(|| {
            for i in 0..1000u64 {
                rl_ccd_obs::counter!("bench.probe.hits", 1);
                rl_ccd_obs::observe!("bench.probe.value", i);
                let _span = rl_ccd_obs::span!("bench.probe", i = i);
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = flow_overhead, macro_fast_path
}
criterion_main!(benches);
