//! Criterion benchmarks of the flow substrate: the useful-skew engine alone
//! and the complete placement-optimization flow (one Table II "default"
//! column entry).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_ccd_flow::{run_useful_skew, FlowRecipe, UsefulSkewOpts};
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_sta::{Constraints, EndpointMargins, TimingGraph};
use std::time::Duration;

fn useful_skew(c: &mut Criterion) {
    let d = generate(&DesignSpec::new("bench", 2000, TechNode::N7, 2));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let cons = Constraints::with_period(d.period_ps);
    let margins = EndpointMargins::zero(&d.netlist);
    c.bench_function("useful_skew_2k", |b| {
        b.iter(|| {
            let mut clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
            run_useful_skew(
                &d.netlist,
                &graph,
                &cons,
                &mut clocks,
                &margins,
                &UsefulSkewOpts::default(),
            )
        });
    });
}

fn full_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("default_flow");
    group.sample_size(10);
    for cells in [800usize, 2500] {
        let d = generate(&DesignSpec::new("bench", cells, TechNode::N7, 3));
        let recipe = FlowRecipe::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(d.netlist.cell_count()),
            &d,
            |b, d| {
                b.iter(|| recipe.run(d, &[]));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = useful_skew, full_flow
}
criterion_main!(benches);
