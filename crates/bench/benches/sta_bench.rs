//! Criterion micro-benchmarks of the STA engine: one full setup+hold
//! analysis pass at three design sizes (the inner loop of everything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph};
use std::time::Duration;

fn sta_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta_full_pass");
    for cells in [500usize, 2000, 8000] {
        let d = generate(&DesignSpec::new("bench", cells, TechNode::N7, 1));
        let graph = TimingGraph::new(&d.netlist);
        let clocks = ClockSchedule::balanced(&d.netlist, 60.0, 3.0, 200.0, 1);
        let cons = Constraints::with_period(d.period_ps);
        let margins = EndpointMargins::zero(&d.netlist);
        group.bench_with_input(
            BenchmarkId::from_parameter(d.netlist.cell_count()),
            &d,
            |b, d| {
                b.iter(|| analyze(&d.netlist, &graph, &cons, &clocks, &margins));
            },
        );
    }
    group.finish();
}

fn timing_graph_build(c: &mut Criterion) {
    let d = generate(&DesignSpec::new("bench", 2000, TechNode::N7, 1));
    c.bench_function("timing_graph_build_2k", |b| {
        b.iter(|| TimingGraph::new(&d.netlist));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = sta_analysis, timing_graph_build
}
criterion_main!(benches);
