//! Benchmark harness shared by the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin` built on these helpers:
//!
//! * `table2` — Table II: default tool flow vs. RL-CCD on the 19-block suite;
//! * `fig5` — histogram of clock-arrival adjustments (block11 analogue);
//! * `fig6` — transfer-learning convergence on block19;
//! * `ablation_rho` — sweep of the overlap-masking threshold ρ;
//! * `ablation_overfix` — over-fix vs. under-fix margin modes (§III-A).
//!
//! Binaries print aligned text tables and write CSV files next to the
//! working directory for plotting.

#![warn(missing_docs)]

pub mod cli;

pub use cli::Cli;

use rl_ccd::{Error, RlConfig, Session, TrainOutcome, TrainSession};
use rl_ccd_flow::FlowResult;
use rl_ccd_netlist::{block_suite, generate, DesignSpec, GeneratedDesign};
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// One row of the Table II reproduction.
#[derive(Clone, Debug)]
pub struct BlockRow {
    /// Design name.
    pub name: String,
    /// Cell count of the generated block.
    pub cells: usize,
    /// Technology name.
    pub tech: &'static str,
    /// Default tool flow result (begin snapshot inside).
    pub default: FlowResult,
    /// RL-CCD enhanced result (best training outcome).
    pub rl: FlowResult,
    /// Endpoints the agent prioritized.
    pub prioritized: usize,
    /// Training iterations executed.
    pub iterations: usize,
    /// RL-CCD wall-clock divided by the default flow's (the paper's
    /// normalized runtime column).
    pub runtime_ratio: f64,
}

/// Builds the scaled 19-block suite.
pub fn build_suite(scale: f32) -> Vec<GeneratedDesign> {
    block_suite(scale).iter().map(generate).collect()
}

/// Builds a single spec'd design (for the figure binaries).
pub fn build_block(spec: &DesignSpec) -> GeneratedDesign {
    generate(spec)
}

/// Trains RL-CCD on one design and assembles the Table II row.
pub fn run_block(design: GeneratedDesign, config: &RlConfig) -> (BlockRow, TrainOutcome) {
    run_block_with(design, config, TrainSession::default())
        .expect("fault-free benchmark run must not fail")
}

/// [`run_block`] with full runtime control: when `session.checkpoint_dir`
/// is set, the block resumes from any committed state there and keeps
/// checkpointing, so an interrupted suite re-run skips straight to where
/// it stopped.
///
/// # Errors
/// Propagates [`rl_ccd::Error`] from training (quorum loss, checkpoint
/// I/O).
pub fn run_block_with(
    design: GeneratedDesign,
    config: &RlConfig,
    session: TrainSession,
) -> Result<(BlockRow, TrainOutcome), Error> {
    let name = design.spec.name.clone();
    let cells = design.netlist.cell_count();
    let tech = design.spec.tech.name();
    let mut builder = Session::builder()
        .design(design)
        .rl_config(config.clone())
        .fault_plan(session.fault_plan);
    if let Some(dir) = session.checkpoint_dir {
        builder = builder.checkpoint(dir, session.checkpoint_every);
    }
    if let Some(params) = session.initial {
        builder = builder.initial_params(params);
    }
    let rl = builder.build()?;
    let t_default = Instant::now();
    let default = rl.env().default_flow();
    let default_secs = t_default.elapsed().as_secs_f64().max(1e-6);
    let t_rl = Instant::now();
    let outcome = rl.train()?;
    let rl_secs = t_rl.elapsed().as_secs_f64();
    let row = BlockRow {
        name,
        cells,
        tech,
        default,
        rl: outcome.best_result.clone(),
        prioritized: outcome.best_selection.len(),
        iterations: outcome.history.len(),
        runtime_ratio: rl_secs / default_secs,
    };
    Ok((row, outcome))
}

/// Formats the Table II header.
pub fn table2_header() -> String {
    format!(
        "{:<10} {:>7} {:>5} | {:>8} {:>10} {:>6} {:>8} | {:>8} {:>10} {:>6} {:>8} | {:>8} {:>18} {:>6} {:>8} {:>6} {:>5}\n{}",
        "design",
        "cells",
        "tech",
        "WNSb",
        "TNSb",
        "NVEb",
        "PWRb",
        "WNSd",
        "TNSd",
        "NVEd",
        "PWRd",
        "WNSr",
        "TNSr(goal)",
        "NVEr",
        "PWRr",
        "#prio",
        "rt",
        "-".repeat(152)
    )
}

/// Formats one Table II row (times in ns, power in mW, like the paper).
pub fn table2_row(r: &BlockRow) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{:<10} {:>7} {:>5} | {:>8.3} {:>10.2} {:>6} {:>8.2} | {:>8.3} {:>10.2} {:>6} {:>8.2} | {:>8.3} {:>9.2} ({:>+5.1}%) {:>6} {:>8.2} {:>6} {:>4.0}x",
        r.name,
        r.cells,
        r.tech,
        r.default.begin.wns_ns(),
        r.default.begin.tns_ns(),
        r.default.begin.nve,
        r.default.begin.power_mw,
        r.default.final_qor.wns_ns(),
        r.default.final_qor.tns_ns(),
        r.default.final_qor.nve,
        r.default.final_qor.power_mw,
        r.rl.final_qor.wns_ns(),
        r.rl.final_qor.tns_ns(),
        r.rl.tns_gain_over(&r.default),
        r.rl.final_qor.nve,
        r.rl.final_qor.power_mw,
        r.prioritized,
        r.runtime_ratio,
    );
    s
}

/// Summary line: average TNS / NVE / power deltas (the paper's last row).
pub fn table2_summary(rows: &[BlockRow]) -> String {
    let n = rows.len().max(1) as f64;
    let tns: f64 = rows
        .iter()
        .map(|r| r.rl.tns_gain_over(&r.default))
        .sum::<f64>()
        / n;
    let nve: f64 = rows
        .iter()
        .map(|r| {
            let d = r.default.final_qor.nve.max(1) as f64;
            (1.0 - r.rl.final_qor.nve as f64 / d) * 100.0
        })
        .sum::<f64>()
        / n;
    let pwr: f64 = rows
        .iter()
        .map(|r| {
            let d = r.default.final_qor.power_mw.max(1e-9);
            (1.0 - r.rl.final_qor.power_mw / d) * 100.0
        })
        .sum::<f64>()
        / n;
    format!(
        "avg TNS gain {tns:+.1}% | avg NVE gain {nve:+.1}% | avg power gain {pwr:+.2}% (paper: 24%, 19.4%, 0.2%)"
    )
}

/// A minimal JSON value for the machine-readable `BENCH_*.json` artifacts
/// the load benches emit alongside their CSV — enough structure for a
/// dashboard to ingest without pulling a serializer into the workspace.
/// Numbers render through Rust's shortest-roundtrip `Display`, so written
/// values parse back bit-exact.
#[derive(Clone, Debug)]
pub enum Json {
    /// A finite number (integers render without a fraction).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object fields.
    pub fn field(key: &str, value: Json) -> (String, Json) {
        (key.to_string(), value)
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a [`Json`] value to `path` with a trailing newline,
/// **atomically**: the text lands in a `.tmp` sibling first and is renamed
/// into place, so a bench killed mid-write can never leave a torn
/// `BENCH_*.json` for the CI regression gate to choke on.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_json(path: &str, value: &Json) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, format!("{}\n", value.render()))?;
    std::fs::rename(&tmp, path)
}

/// Sorts latencies/metrics ascending with a total order — NaN sorts last
/// instead of panicking a finished bench run at the report step.
pub fn sort_metrics(values: &mut [f64]) {
    values.sort_by(f64::total_cmp);
}

impl Json {
    /// Parses compact or whitespace-separated JSON text (the subset
    /// [`Json::render`] emits: objects, arrays, strings with the standard
    /// escapes, numbers, `null` → NaN, plus `true`/`false` rendered as 1/0
    /// for completeness). Used by the `bench_regress` gate to compare a
    /// fresh run against the committed `BENCH_*.json` baselines.
    ///
    /// # Errors
    /// Returns a message describing the first malformed construct.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a dotted path (`"fleets.0.throughput_rps"`): object steps
    /// match keys, array steps parse as indices. Returns `None` on any
    /// missing step.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for step in path.split('.') {
            cur = match cur {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == step).map(|(_, v)| v)?,
                Json::Arr(items) => items.get(step.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (multibyte sequences pass
                        // through untouched).
                        let start = *pos;
                        let mut end = start + 1;
                        while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        s.push_str(
                            std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?,
                        );
                        *pos = end;
                    }
                }
            }
        }
        Some(_) if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Num(f64::NAN))
        }
        Some(_) if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Num(1.0))
        }
        Some(_) if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Num(0.0))
        }
        Some(_) => {
            let start = *pos;
            while let Some(&b) = bytes.get(*pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (`p` in `0..=1`).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Writes rows as a CSV file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(path: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

/// Parses `--key value` style CLI arguments with a default.
pub fn arg_value<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rl_ccd_netlist::TechNode;

    #[test]
    fn run_block_produces_consistent_row() {
        let design = build_block(&DesignSpec::new("rowtest", 400, TechNode::N7, 5));
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 2;
        cfg.patience = 2;
        let (row, outcome) = run_block(design, &cfg);
        assert_eq!(row.name, "rowtest");
        assert!(row.cells > 0);
        assert_eq!(row.iterations, outcome.history.len());
        assert!(row.runtime_ratio > 1.0, "RL must cost more than one flow");
        let line = table2_row(&row);
        assert!(line.contains("rowtest"));
        assert!(table2_header().contains("TNSr"));
        assert!(table2_summary(std::slice::from_ref(&row)).contains("avg TNS gain"));
    }

    #[test]
    fn run_block_with_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join(format!("rl-ccd-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = RlConfig::fast();
        cfg.max_iterations = 2;
        cfg.patience = 2;
        let spec = DesignSpec::new("ckpt", 400, TechNode::N7, 5);
        let (row, outcome) = run_block_with(
            build_block(&spec),
            &cfg,
            TrainSession::checkpointed(&dir, 1),
        )
        .expect("checkpointed run");
        assert!(rl_ccd::training_state_exists(&dir), "state committed");
        // Re-running the same block resumes from the exhausted state and
        // reproduces the same champion without re-training.
        let (row2, outcome2) = run_block_with(
            build_block(&spec),
            &cfg,
            TrainSession::checkpointed(&dir, 1),
        )
        .expect("resumed run");
        assert_eq!(outcome.best_selection, outcome2.best_selection);
        assert_eq!(row.prioritized, row2.prioritized);
        assert_eq!(outcome.history, outcome2.history);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_renders_escapes_and_number_forms() {
        let v = Json::Obj(vec![
            Json::field("bench", Json::Str("dist\"scale\"\n".into())),
            Json::field("count", Json::Num(4.0)),
            Json::field("p99_ms", Json::Num(1.25)),
            Json::field("bad", Json::Num(f64::NAN)),
            Json::field("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"bench":"dist\"scale\"\n","count":4,"p99_ms":1.25,"bad":null,"rows":[1,2.5]}"#
        );
    }

    #[test]
    fn json_parse_roundtrips_render_and_walks_paths() {
        let v = Json::Obj(vec![
            Json::field("bench", Json::Str("serve \"load\"\n".into())),
            Json::field("count", Json::Num(4.0)),
            Json::field("bad", Json::Num(f64::NAN)),
            Json::field(
                "fleets",
                Json::Arr(vec![Json::Obj(vec![Json::field(
                    "throughput_rps",
                    Json::Num(123.5),
                )])]),
            ),
        ]);
        let parsed = Json::parse(&v.render()).expect("roundtrip");
        assert_eq!(parsed.render(), v.render());
        assert_eq!(
            parsed
                .get_path("fleets.0.throughput_rps")
                .and_then(Json::as_num),
            Some(123.5)
        );
        assert_eq!(parsed.get_path("count").and_then(Json::as_num), Some(4.0));
        // null renders from NaN and parses back to NaN.
        assert!(parsed
            .get_path("bad")
            .and_then(Json::as_num)
            .expect("num")
            .is_nan());
        assert!(parsed.get_path("fleets.1.x").is_none());
        assert!(parsed.get_path("nope").is_none());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
    }

    #[test]
    fn write_json_is_atomic_and_leaves_no_tmp() {
        let path = std::env::temp_dir().join(format!("rl-ccd-bench-json-{}", std::process::id()));
        let path = path.to_str().expect("utf8 path").to_string();
        let v = Json::Obj(vec![Json::field("x", Json::Num(1.0))]);
        write_json(&path, &v).expect("write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}\n");
        assert!(
            !std::path::Path::new(&format!("{path}.tmp")).exists(),
            "tmp file must be renamed away"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sort_metrics_tolerates_nan() {
        // Regression: latency sorts used `partial_cmp(..).expect(..)` and
        // panicked at the report step if a single sample went non-finite.
        let mut v = vec![3.0, f64::NAN, 1.0, 2.0];
        sort_metrics(&mut v);
        assert_eq!(&v[..3], &[1.0, 2.0, 3.0]);
        assert!(v[3].is_nan(), "NaN sorts last, run still reports");
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn arg_parsing_defaults_and_overrides() {
        let args: Vec<String> = ["--scale", "0.5", "--iters", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale", 1.0f32), 0.5);
        assert_eq!(arg_value(&args, "--iters", 10usize), 7);
        assert_eq!(arg_value(&args, "--missing", 3usize), 3);
    }
}
