//! Shared CLI parsing for the bench binaries.
//!
//! Every binary used to hand-roll the same `--key value` loop; [`Cli`]
//! centralizes the common flags (`--scale`, `--iters`, `--workers`,
//! `--seed`, `--csv`, `--checkpoint`, `--checkpoint-every`) and wires the
//! observability layer: passing `--trace-out run.jsonl` to *any* binary
//! creates a [`Recorder`], [`Cli::attach`] activates it for the run, and
//! [`Cli::finish`] writes the versioned JSONL trace and prints the
//! human-readable summary table.

use rl_ccd_obs::{AttachGuard, Recorder};
use std::path::PathBuf;
use std::str::FromStr;

/// Parsed command line of one bench binary.
#[derive(Debug)]
pub struct Cli {
    args: Vec<String>,
    trace_out: Option<PathBuf>,
    recorder: Option<Recorder>,
}

impl Cli {
    /// Parses the process arguments (binary name skipped).
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument list; `--trace-out PATH` creates the
    /// run's recorder.
    pub fn new(args: Vec<String>) -> Self {
        let trace_out = args
            .iter()
            .position(|a| a == "--trace-out")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from);
        let recorder = trace_out.as_ref().map(|_| Recorder::new());
        Self {
            args,
            trace_out,
            recorder,
        }
    }

    /// Parses `--key value` with a default (any `FromStr` type).
    pub fn value<T: FromStr>(&self, key: &str, default: T) -> T {
        crate::arg_value(&self.args, key, default)
    }

    /// `--scale` — suite cell-count multiplier.
    pub fn scale(&self, default: f32) -> f32 {
        self.value("--scale", default)
    }

    /// `--iters` — training iteration cap.
    pub fn iters(&self, default: usize) -> usize {
        self.value("--iters", default)
    }

    /// `--workers` — parallel rollouts per iteration.
    pub fn workers(&self, default: usize) -> usize {
        self.value("--workers", default)
    }

    /// `--seed` — base RNG seed.
    pub fn seed(&self, default: u64) -> u64 {
        self.value("--seed", default)
    }

    /// `--cells` — target cell count for single-design studies.
    pub fn cells(&self, default: usize) -> usize {
        self.value("--cells", default)
    }

    /// `--designs` — how many designs a multi-design study runs.
    pub fn designs(&self, default: usize) -> usize {
        self.value("--designs", default)
    }

    /// `--csv` — output CSV path.
    pub fn csv(&self, default: &str) -> String {
        self.value("--csv", default.to_string())
    }

    /// `--checkpoint DIR` — resumable-state root, when given.
    pub fn checkpoint(&self) -> Option<PathBuf> {
        let dir: String = self.value("--checkpoint", String::new());
        (!dir.is_empty()).then(|| PathBuf::from(dir))
    }

    /// `--checkpoint-every K` — commit cadence in iterations.
    pub fn checkpoint_every(&self, default: usize) -> usize {
        self.value("--checkpoint-every", default)
    }

    /// The `--trace-out` path, when given.
    pub fn trace_out(&self) -> Option<&PathBuf> {
        self.trace_out.as_ref()
    }

    /// The run's recorder (present exactly when `--trace-out` was given).
    pub fn recorder(&self) -> Option<Recorder> {
        self.recorder.clone()
    }

    /// Activates the recorder for the caller's scope. Hold the guard for
    /// the duration of the run; without `--trace-out` this is free.
    pub fn attach(&self) -> Option<AttachGuard> {
        self.recorder.as_ref().map(rl_ccd_obs::attach)
    }

    /// Ends the run: with `--trace-out`, writes the JSONL trace and prints
    /// the summary table (no-op otherwise).
    ///
    /// # Errors
    /// [`rl_ccd::Error::Io`] when the trace cannot be written.
    pub fn finish(&self) -> Result<(), rl_ccd::Error> {
        if let (Some(recorder), Some(path)) = (&self.recorder, &self.trace_out) {
            recorder.write_jsonl_to_path(path)?;
            println!("\n{}", recorder.summary());
            println!("wrote trace {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn common_flags_parse_with_defaults() {
        let c = cli(&["--scale", "0.25", "--iters", "3", "--checkpoint", "ck"]);
        assert_eq!(c.scale(1.0), 0.25);
        assert_eq!(c.iters(12), 3);
        assert_eq!(c.workers(8), 8);
        assert_eq!(c.checkpoint(), Some(PathBuf::from("ck")));
        assert_eq!(c.checkpoint_every(5), 5);
        assert!(c.trace_out().is_none());
        assert!(c.recorder().is_none());
        assert!(c.attach().is_none());
        c.finish().expect("finish without trace is a no-op");
    }

    #[test]
    fn trace_out_creates_and_writes_a_recorder() {
        let path = std::env::temp_dir().join(format!("rl-ccd-cli-{}.jsonl", std::process::id()));
        let c = cli(&["--trace-out", path.to_str().unwrap()]);
        {
            let _obs = c.attach();
            rl_ccd_obs::counter!("bench.test.events", 2);
        }
        c.finish().expect("trace written");
        let text = std::fs::read_to_string(&path).expect("trace file");
        rl_ccd_obs::validate_jsonl(text.as_bytes()).expect("schema-valid trace");
        assert!(text.contains("bench.test.events"));
        let _ = std::fs::remove_file(&path);
    }
}
