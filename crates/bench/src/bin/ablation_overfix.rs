//! **Ablation B**: over-fix vs. under-fix margin modes (§III-A).
//!
//! The paper states it empirically observed that letting the useful-skew
//! engine *over-fix* the selected endpoints (worsen them to WNS) works
//! significantly better than the under-fix alternative. This binary
//! compares both margin modes with the *same fixed selection* — the
//! clock-fixable (deep-class) register endpoints, i.e. the selection the
//! agent is supposed to learn — so the comparison isolates the margin
//! mechanism from the search.
//!
//! Usage:
//! ```text
//! ablation_overfix [--cells 1500] [--designs 4] [--csv ablation_overfix.csv]
//!                  [--trace-out run.jsonl]
//! ```

use rl_ccd::CcdEnv;
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::{FlowRecipe, MarginMode};
use rl_ccd_netlist::{generate, ClusterClass, DesignSpec, EndpointId, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let cells = cli.cells(1500);
    let designs = cli.designs(4);
    let csv = cli.csv("ablation_overfix.csv");

    println!(
        "margin-mode ablation: {designs} designs × {cells} cells; the deep-class\n\
         (clock-fixable) selection replayed under each margin mode\n"
    );
    println!(
        "{:<10} {:>12} | {:>12} {:>8} | {:>12} {:>8}",
        "design", "default TNS", "over-fix TNS", "gain %", "under-fix", "gain %"
    );

    let mut csv_rows = Vec::new();
    let mut over_sum = 0.0;
    let mut under_sum = 0.0;
    for i in 0..designs {
        let name = format!("ofx{i}");
        let design = generate(&DesignSpec::new(&name, cells, TechNode::N7, 500 + i as u64));
        let over_recipe = FlowRecipe {
            margin_mode: MarginMode::OverFixToWns,
            ..FlowRecipe::default()
        };
        let env = CcdEnv::new(design.clone(), over_recipe, 24);
        let default = env.default_flow();
        // The fixed selection: violating deep-class register endpoints.
        let selection: Vec<EndpointId> = env
            .pool()
            .iter()
            .copied()
            .filter(|&e| {
                design.endpoint_class[e.index()] == ClusterClass::Deep
                    && design.netlist.endpoints()[e.index()].is_register()
            })
            .collect();
        let over = env.evaluate(&selection);

        let under_recipe = FlowRecipe {
            margin_mode: MarginMode::UnderFix,
            ..FlowRecipe::default()
        };
        let under_env = CcdEnv::new(design, under_recipe, 24);
        let under = under_env.evaluate(&selection);

        let og = over.tns_gain_over(&default);
        let ug = under.tns_gain_over(&default);
        over_sum += og;
        under_sum += ug;
        println!(
            "{:<10} {:>12.0} | {:>12.0} {:>+8.1} | {:>12.0} {:>+8.1}",
            name, default.final_qor.tns_ps, over.final_qor.tns_ps, og, under.final_qor.tns_ps, ug
        );
        csv_rows.push(format!(
            "{name},{:.1},{:.1},{og:.2},{:.1},{ug:.2}",
            default.final_qor.tns_ps, over.final_qor.tns_ps, under.final_qor.tns_ps
        ));
    }
    let n = designs.max(1) as f64;
    println!(
        "\nmean gain: over-fix {:+.1}% vs under-fix {:+.1}% (paper: over-fix \"works significantly better\")",
        over_sum / n,
        under_sum / n
    );
    write_csv(
        &csv,
        "design,default_tns_ps,overfix_tns_ps,overfix_gain_pct,underfix_tns_ps,underfix_gain_pct",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
