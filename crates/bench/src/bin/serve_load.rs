//! **Serve load generator**: throughput and tail latency of the
//! endpoint-selection inference service under concurrent load.
//!
//! Spins up an in-process [`Server`], hammers it from `--workers` client
//! threads alternating greedy and seeded-sample requests across
//! `--designs` distinct designs, and reports throughput plus p50/p99
//! client-observed latency as CSV, along with the server's batch-size
//! census (the dynamic-batching proof: under load the median dispatched
//! batch should exceed one request).
//!
//! Usage:
//! ```text
//! serve_load [--workers 8] [--requests 40] [--designs 2] [--cells 300]
//!            [--max-batch 8] [--window-ms 2] [--queue N]
//!            [--connections N] [--tenants N]
//!            [--csv serve_load.csv] [--json BENCH_serve.json]
//!            [--assert-batching] [--assert-shedding]
//!            [--trace-out run.jsonl]
//! ```
//!
//! With `--assert-batching` the process exits nonzero unless the batch
//! size p50 is at least 2 and the drain left zero in-flight requests
//! behind — the acceptance gate CI can hold the server to.
//!
//! With `--assert-shedding` (meant for an overload run, e.g. `--queue 1`)
//! the process instead demands that the server answered the excess with
//! typed `Overloaded` responses — at least one shed, no untyped failures,
//! and nothing dropped at drain — proving overload degrades gracefully
//! rather than hanging or erroring.
//!
//! With `--connections N` the bench switches to **connection scaling**
//! over real TCP against the epoll reactor front-end: it opens N
//! concurrent connections, fires one pipelined query down every one of
//! them at once, and collects every reply — measuring how one replica
//! behaves holding thousands of sockets. Results merge into the same
//! `--json` artifact as `conn_*` metrics (`connections`, `conn_rps`,
//! `conn_p50_ms`, `conn_p99_ms`, `conn_shed`, …). `--assert-shedding`
//! composes: run with a small `--queue` and the burst must shed typed,
//! drop nothing, and still answer someone.
//!
//! With `--tenants N` the bench instead exercises the **multi-tenant
//! daemon path**: a [`rl_ccd_daemon::Daemon`] fronts the same serving
//! core, N authenticated tenants hammer the tenant port over TCP
//! (credentials checked, token buckets and quotas charged, per-tenant
//! metrics recorded on every request), and the run reports `tenant_rps`
//! plus latency percentiles — the cost of the full admission path,
//! comparable against `throughput_rps` (in-process, no tenancy). Results
//! merge into the same `--json` artifact as `tenant_*` metrics and land
//! in `--csv` (default `serve_tenants.csv`).

use rl_ccd::{RlCcd, RlConfig};
use rl_ccd_bench::{percentile, sort_metrics, write_csv, write_json, Cli, Json};
use rl_ccd_daemon::{Daemon, DaemonConfig, SystemClock, CHAMPION};
use rl_ccd_serve::protocol::{read_frame, write_frame};
use rl_ccd_serve::{
    Credentials, DesignKey, Mode, ModelRegistry, QueryRequest, Request, Response, ServeClient,
    ServeConfig, Server,
};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let workers = cli.workers(8);
    let requests: usize = cli.value("--requests", 40);
    let designs: usize = cli.value("--designs", 2usize).max(1);
    let cells: usize = cli.value("--cells", 300);
    let assert_batching = std::env::args().any(|a| a == "--assert-batching");
    let assert_shedding = std::env::args().any(|a| a == "--assert-shedding");
    let connections: usize = cli.value("--connections", 0usize);
    if connections > 0 {
        return run_connection_scaling(&cli, connections, designs, cells, assert_shedding);
    }
    let tenants: usize = cli.value("--tenants", 0usize);
    if tenants > 0 {
        return run_tenant_load(&cli, tenants, requests, designs, cells);
    }
    let csv = cli.csv("serve_load.csv");

    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let registry = ModelRegistry::new();
    registry
        .insert_params("default", params, rho)
        .expect("register model");

    let serve_config = ServeConfig {
        max_batch: cli.value("--max-batch", 8),
        window: Duration::from_millis(cli.value("--window-ms", 2u64)),
        // Roomy by default (nothing sheds); pin it low with --queue to
        // drive the server into overload on purpose.
        queue_capacity: cli.value("--queue", workers * requests + 1),
        workers: cli.value("--serve-workers", 2usize),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, serve_config);

    let keys: Vec<DesignKey> = (0..designs)
        .map(|d| DesignKey {
            name: format!("load{d}"),
            cells,
            tech: "7nm".into(),
            seed: d as u64 + 1,
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let handle = server.handle();
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests);
                let mut failures = 0usize;
                let mut shed = 0usize;
                for r in 0..requests {
                    let k = (w + r) % keys.len();
                    let mode = if r % 2 == 0 {
                        Mode::Greedy
                    } else {
                        Mode::Sample((w * requests + r) as u64)
                    };
                    let t = Instant::now();
                    let resp = handle.query(QueryRequest {
                        model: "default".into(),
                        design: keys[k].clone(),
                        mode,
                        deadline_ms: None,
                        auth: None,
                    });
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    match resp {
                        Response::Err { .. } => failures += 1,
                        Response::Overloaded { .. } => shed += 1,
                        _ => {}
                    }
                }
                (latencies, failures, shed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut failures = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (l, f, s) = h.join().expect("client thread panicked");
        latencies.extend(l);
        failures += f;
        shed += s;
    }
    let wall_s = started.elapsed().as_secs_f64();
    let report = server.shutdown();

    sort_metrics(&mut latencies);
    let total = latencies.len();
    let throughput = total as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let batch_p50 = report.stats.batch_p50();

    println!(
        "{total} requests from {workers} threads over {designs} designs in {wall_s:.2}s \
         ({throughput:.1} req/s), {failures} failed, {shed} shed"
    );
    println!("latency p50 {p50:.2} ms, p99 {p99:.2} ms");
    print!("batch census (size:count):");
    for (size, count) in &report.stats.batches {
        print!(" {size}:{count}");
    }
    println!(" — p50 {batch_p50}");
    println!(
        "drain: {} accepted, {} completed, {} shed, {} evicted, {} deadline-expired, {} dropped",
        report.stats.accepted,
        report.stats.completed,
        report.stats.shed,
        report.stats.evicted,
        report.stats.deadline_expired,
        report.dropped()
    );

    let rows = vec![format!(
        "{workers},{requests},{designs},{cells},{total},{throughput:.2},{p50:.3},{p99:.3},{batch_p50},{shed},{},{}",
        report.stats.evicted,
        report.dropped()
    )];
    write_csv(
        &csv,
        "workers,requests_per_worker,designs,cells,total,throughput_rps,p50_ms,p99_ms,batch_p50,shed,evicted,dropped",
        &rows,
    )
    .expect("write csv");
    println!("wrote {csv}");

    let json_path: String = cli.value("--json", "BENCH_serve.json".to_string());
    let report_json = Json::Obj(vec![
        Json::field("bench", Json::Str("serve_load".into())),
        Json::field("client_threads", Json::Num(workers as f64)),
        Json::field("requests_per_thread", Json::Num(requests as f64)),
        Json::field("designs", Json::Num(designs as f64)),
        Json::field("cells", Json::Num(cells as f64)),
        Json::field("total_requests", Json::Num(total as f64)),
        Json::field("wall_s", Json::Num(wall_s)),
        Json::field("throughput_rps", Json::Num(throughput)),
        Json::field("p50_ms", Json::Num(p50)),
        Json::field("p99_ms", Json::Num(p99)),
        Json::field("batch_p50", Json::Num(batch_p50 as f64)),
        Json::field("failures", Json::Num(failures as f64)),
        Json::field("shed", Json::Num(shed as f64)),
        Json::field("server_shed", Json::Num(report.stats.shed as f64)),
        Json::field("evicted", Json::Num(report.stats.evicted as f64)),
        Json::field(
            "deadline_expired",
            Json::Num(report.stats.deadline_expired as f64),
        ),
        Json::field(
            "health_probes",
            Json::Num(report.stats.health_probes as f64),
        ),
        Json::field("dropped", Json::Num(report.dropped() as f64)),
    ]);
    write_json(&json_path, &report_json).expect("write json");
    println!("wrote {json_path}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures} request(s) failed");
        return ExitCode::FAILURE;
    }
    if assert_shedding {
        if shed == 0 {
            eprintln!("overload run shed nothing: queue never filled, raise load or lower --queue");
            return ExitCode::FAILURE;
        }
        if report.dropped() > 0 {
            eprintln!("drain dropped {} in-flight request(s)", report.dropped());
            return ExitCode::FAILURE;
        }
    }
    if assert_batching {
        if batch_p50 < 2 {
            eprintln!("batch p50 {batch_p50} < 2: dynamic batching did not engage");
            return ExitCode::FAILURE;
        }
        if report.dropped() > 0 {
            eprintln!("drain dropped {} in-flight request(s)", report.dropped());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Connection-scaling mode: N concurrent TCP connections into the reactor
/// front-end, one pipelined query each — all writes first, then all reads
/// — so the server really holds N sockets with up to N requests in flight
/// at the moment the burst lands.
fn run_connection_scaling(
    cli: &Cli,
    connections: usize,
    designs: usize,
    cells: usize,
    assert_shedding: bool,
) -> ExitCode {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let registry = ModelRegistry::new();
    registry
        .insert_params("default", params, rho)
        .expect("register model");
    let serve_config = ServeConfig {
        max_batch: cli.value("--max-batch", 8),
        window: Duration::from_millis(cli.value("--window-ms", 2u64)),
        // Roomy by default: every query queues. Pin it low with --queue
        // to make the burst overflow into typed shedding.
        queue_capacity: cli.value("--queue", connections + 1),
        workers: cli.value("--serve-workers", 2usize),
        ..ServeConfig::default()
    };
    let mut server = Server::start(registry, serve_config);
    let addr = match server.bind_reactor("127.0.0.1:0") {
        Ok(a) => a,
        Err(e) => {
            // No epoll on this platform: the blocking front-end still
            // speaks the same protocol, one thread per socket.
            eprintln!("reactor front-end unavailable ({e}); falling back to thread-per-connection");
            server.bind("127.0.0.1:0").expect("bind server")
        }
    };

    let keys: Vec<DesignKey> = (0..designs)
        .map(|d| DesignKey {
            name: format!("conn{d}"),
            cells,
            tech: "7nm".into(),
            seed: d as u64 + 1,
        })
        .collect();

    // Warm the env cache through the front door, so burst latencies
    // measure inference + transport, not N redundant design builds.
    {
        let mut warm = TcpStream::connect(addr).expect("warmup connect");
        warm.set_read_timeout(Some(Duration::from_secs(120))).ok();
        for key in &keys {
            let req = Request::Query(QueryRequest {
                model: "default".into(),
                design: key.clone(),
                mode: Mode::Greedy,
                deadline_ms: None,
                auth: None,
            });
            write_frame(&mut warm, &req.encode()).expect("warmup send");
            let reply = read_frame(&mut warm).expect("warmup receive");
            let resp = Response::decode(&reply).expect("warmup decode");
            assert!(matches!(resp, Response::Ok(_)), "warmup query: {resp:?}");
        }
    }

    // Phase 1: open every connection and keep it open.
    let opened = Instant::now();
    let mut conns: Vec<TcpStream> = Vec::with_capacity(connections);
    for i in 0..connections {
        let conn = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connection {i}/{connections} refused: {e}"));
        conn.set_nodelay(true).ok();
        conn.set_read_timeout(Some(Duration::from_secs(300))).ok();
        conn.set_write_timeout(Some(Duration::from_secs(300))).ok();
        conns.push(conn);
    }
    let open_s = opened.elapsed().as_secs_f64();

    // Phase 2: the burst — one query written down every connection before
    // any reply is read.
    let started = Instant::now();
    for (i, conn) in conns.iter_mut().enumerate() {
        let req = Request::Query(QueryRequest {
            model: "default".into(),
            design: keys[i % keys.len()].clone(),
            mode: if i % 2 == 0 {
                Mode::Greedy
            } else {
                Mode::Sample(i as u64)
            },
            // Generous: shedding should come from queue capacity, not
            // from queued work aging out mid-burst.
            deadline_ms: Some(300_000),
            auth: None,
        });
        write_frame(conn, &req.encode()).unwrap_or_else(|e| panic!("send on connection {i}: {e}"));
    }

    // Phase 3: collect every reply. Completion time is measured from the
    // burst start — the client-observed wait under full contention.
    let mut latencies = Vec::with_capacity(connections);
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut failures = 0usize;
    for (i, conn) in conns.iter_mut().enumerate() {
        let outcome = read_frame(conn)
            .map_err(|e| format!("receive on connection {i}: {e}"))
            .and_then(|reply| Response::decode(&reply));
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
        match outcome {
            Ok(Response::Ok(_)) => ok += 1,
            Ok(Response::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms > 0, "backoff hint is a real number");
                shed += 1;
            }
            Ok(other) => {
                eprintln!("connection {i}: unexpected answer {other:?}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("connection {i}: {e}");
                failures += 1;
            }
        }
    }
    let wall_s = started.elapsed().as_secs_f64();
    drop(conns);
    let report = server.shutdown();

    sort_metrics(&mut latencies);
    let conn_rps = connections as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    println!(
        "{connections} connections opened in {open_s:.2}s; burst answered in {wall_s:.2}s \
         ({conn_rps:.1} conn/s): {ok} ok, {shed} shed, {failures} failed"
    );
    println!("completion p50 {p50:.2} ms, p99 {p99:.2} ms");
    println!(
        "drain: {} accepted, {} completed, {} shed, {} evicted, {} deadline-expired, {} dropped",
        report.stats.accepted,
        report.stats.completed,
        report.stats.shed,
        report.stats.evicted,
        report.stats.deadline_expired,
        report.dropped()
    );

    let csv: String = cli.value("--csv", "serve_conns.csv".to_string());
    let rows = vec![format!(
        "{connections},{designs},{cells},{conn_rps:.2},{p50:.3},{p99:.3},{ok},{shed},{failures},{},{}",
        report.stats.evicted,
        report.dropped()
    )];
    write_csv(
        &csv,
        "connections,designs,cells,conn_rps,conn_p50_ms,conn_p99_ms,ok,shed,failures,evicted,dropped",
        &rows,
    )
    .expect("write csv");
    println!("wrote {csv}");

    // Merge the connection metrics into the (possibly existing) bench
    // artifact instead of clobbering the in-process serve_load fields.
    let json_path: String = cli.value("--json", "BENCH_serve.json".to_string());
    let conn_fields = vec![
        Json::field("connections", Json::Num(connections as f64)),
        Json::field("conn_open_s", Json::Num(open_s)),
        Json::field("conn_wall_s", Json::Num(wall_s)),
        Json::field("conn_rps", Json::Num(conn_rps)),
        Json::field("conn_p50_ms", Json::Num(p50)),
        Json::field("conn_p99_ms", Json::Num(p99)),
        Json::field("conn_ok", Json::Num(ok as f64)),
        Json::field("conn_shed", Json::Num(shed as f64)),
        Json::field("conn_failures", Json::Num(failures as f64)),
        Json::field("conn_evicted", Json::Num(report.stats.evicted as f64)),
        Json::field("conn_dropped", Json::Num(report.dropped() as f64)),
    ];
    let mut fields = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    {
        Some(Json::Obj(existing)) => existing
            .into_iter()
            .filter(|(k, _)| !conn_fields.iter().any(|(nk, _)| nk == k))
            .collect(),
        _ => vec![Json::field("bench", Json::Str("serve_load".into()))],
    };
    fields.extend(conn_fields);
    write_json(&json_path, &Json::Obj(fields)).expect("write json");
    println!("wrote {json_path}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures} connection(s) failed");
        return ExitCode::FAILURE;
    }
    if assert_shedding {
        if shed == 0 {
            eprintln!("overload burst shed nothing: queue never filled, lower --queue");
            return ExitCode::FAILURE;
        }
        if ok == 0 {
            eprintln!("burst was shed entirely: capacity gated to zero");
            return ExitCode::FAILURE;
        }
        if report.dropped() > 0 {
            eprintln!("drain dropped {} in-flight request(s)", report.dropped());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Multi-tenant daemon mode: N authenticated tenants over real TCP into
/// a [`Daemon`]'s tenant port, `--requests` queries each. Every request
/// pays for the full admission path — credential check (constant-time),
/// token bucket, quota window, per-tenant metrics — before it reaches the
/// same serving core the other modes measure, so `tenant_rps` vs
/// `throughput_rps` is the price of tenancy.
fn run_tenant_load(
    cli: &Cli,
    tenants: usize,
    requests: usize,
    designs: usize,
    cells: usize,
) -> ExitCode {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let registry = ModelRegistry::new();
    registry
        .insert_params(CHAMPION, params, rho)
        .expect("register model");
    let serve_config = ServeConfig {
        max_batch: cli.value("--max-batch", 8),
        window: Duration::from_millis(cli.value("--window-ms", 2u64)),
        queue_capacity: cli.value("--queue", tenants * requests + 1),
        workers: cli.value("--serve-workers", 2usize),
        ..ServeConfig::default()
    };
    let mut daemon = Daemon::start(
        registry,
        DaemonConfig {
            serve: serve_config,
            rho,
            ..DaemonConfig::default()
        },
        Arc::new(SystemClock),
    );
    // Generous limits: the bench measures the admission path's cost, not
    // its throttling (the tenancy tests pin that behavior).
    for t in 0..tenants {
        daemon.tenants().add(
            format!("bench{t}:tok{t}:1000000:1000000:1000000000")
                .parse()
                .expect("tenant spec"),
        );
    }
    let addr = daemon.bind_query("127.0.0.1:0").expect("bind tenant port");

    let keys: Vec<DesignKey> = (0..designs)
        .map(|d| DesignKey {
            name: format!("tenant{d}"),
            cells,
            tech: "7nm".into(),
            seed: d as u64 + 1,
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = (0..tenants)
        .map(|t| {
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect tenant");
                let mut latencies = Vec::with_capacity(requests);
                let mut ok = 0usize;
                let mut throttled = 0usize;
                let mut failures = 0usize;
                for r in 0..requests {
                    let req = QueryRequest {
                        model: CHAMPION.into(),
                        design: keys[(t + r) % keys.len()].clone(),
                        mode: if r % 2 == 0 {
                            Mode::Greedy
                        } else {
                            Mode::Sample((t * requests + r) as u64)
                        },
                        deadline_ms: Some(300_000),
                        auth: Some(Credentials {
                            tenant: format!("bench{t}"),
                            token: format!("tok{t}"),
                        }),
                    };
                    let at = Instant::now();
                    match client.query(req) {
                        Ok(Response::Ok(_)) => ok += 1,
                        Ok(Response::QuotaExceeded { .. } | Response::Overloaded { .. }) => {
                            throttled += 1
                        }
                        Ok(other) => {
                            eprintln!("tenant bench{t}: unexpected answer {other:?}");
                            failures += 1;
                        }
                        Err(e) => {
                            eprintln!("tenant bench{t}: {e}");
                            failures += 1;
                        }
                    }
                    latencies.push(at.elapsed().as_secs_f64() * 1e3);
                }
                (latencies, ok, throttled, failures)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut ok = 0usize;
    let mut throttled = 0usize;
    let mut failures = 0usize;
    for h in handles {
        let (l, o, t, f) = h.join().expect("tenant thread panicked");
        latencies.extend(l);
        ok += o;
        throttled += t;
        failures += f;
    }
    let wall_s = started.elapsed().as_secs_f64();
    let report = daemon.shutdown();

    sort_metrics(&mut latencies);
    let total = latencies.len();
    let tenant_rps = total as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    println!(
        "{total} authenticated requests from {tenants} tenants over {designs} designs \
         in {wall_s:.2}s ({tenant_rps:.1} req/s): {ok} ok, {throttled} throttled, \
         {failures} failed"
    );
    println!("latency p50 {p50:.2} ms, p99 {p99:.2} ms");
    let accepted: u64 = report.tenants.iter().map(|t| t.usage.accepted).sum();
    println!(
        "drain: {} tenants, {} accepted by the book, {} dropped",
        report.tenants.len(),
        accepted,
        report.drain.dropped()
    );

    let csv: String = cli.value("--csv", "serve_tenants.csv".to_string());
    let rows = vec![format!(
        "{tenants},{requests},{designs},{cells},{total},{tenant_rps:.2},{p50:.3},{p99:.3},{ok},{throttled},{failures},{}",
        report.drain.dropped()
    )];
    write_csv(
        &csv,
        "tenants,requests_per_tenant,designs,cells,total,tenant_rps,tenant_p50_ms,tenant_p99_ms,ok,throttled,failures,dropped",
        &rows,
    )
    .expect("write csv");
    println!("wrote {csv}");

    // Merge into the shared artifact alongside throughput_rps/conn_rps.
    let json_path: String = cli.value("--json", "BENCH_serve.json".to_string());
    let tenant_fields = vec![
        Json::field("tenants", Json::Num(tenants as f64)),
        Json::field("tenant_requests", Json::Num(total as f64)),
        Json::field("tenant_wall_s", Json::Num(wall_s)),
        Json::field("tenant_rps", Json::Num(tenant_rps)),
        Json::field("tenant_p50_ms", Json::Num(p50)),
        Json::field("tenant_p99_ms", Json::Num(p99)),
        Json::field("tenant_ok", Json::Num(ok as f64)),
        Json::field("tenant_throttled", Json::Num(throttled as f64)),
        Json::field("tenant_failures", Json::Num(failures as f64)),
        Json::field("tenant_dropped", Json::Num(report.drain.dropped() as f64)),
    ];
    let mut fields = match std::fs::read_to_string(&json_path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
    {
        Some(Json::Obj(existing)) => existing
            .into_iter()
            .filter(|(k, _)| !tenant_fields.iter().any(|(nk, _)| nk == k))
            .collect(),
        _ => vec![Json::field("bench", Json::Str("serve_load".into()))],
    };
    fields.extend(tenant_fields);
    write_json(&json_path, &Json::Obj(fields)).expect("write json");
    println!("wrote {json_path}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures} request(s) failed");
        return ExitCode::FAILURE;
    }
    if report.drain.dropped() > 0 {
        eprintln!(
            "drain dropped {} in-flight request(s)",
            report.drain.dropped()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
