//! **Serve load generator**: throughput and tail latency of the
//! endpoint-selection inference service under concurrent load.
//!
//! Spins up an in-process [`Server`], hammers it from `--workers` client
//! threads alternating greedy and seeded-sample requests across
//! `--designs` distinct designs, and reports throughput plus p50/p99
//! client-observed latency as CSV, along with the server's batch-size
//! census (the dynamic-batching proof: under load the median dispatched
//! batch should exceed one request).
//!
//! Usage:
//! ```text
//! serve_load [--workers 8] [--requests 40] [--designs 2] [--cells 300]
//!            [--max-batch 8] [--window-ms 2] [--queue N]
//!            [--csv serve_load.csv] [--json BENCH_serve.json]
//!            [--assert-batching] [--assert-shedding]
//!            [--trace-out run.jsonl]
//! ```
//!
//! With `--assert-batching` the process exits nonzero unless the batch
//! size p50 is at least 2 and the drain left zero in-flight requests
//! behind — the acceptance gate CI can hold the server to.
//!
//! With `--assert-shedding` (meant for an overload run, e.g. `--queue 1`)
//! the process instead demands that the server answered the excess with
//! typed `Overloaded` responses — at least one shed, no untyped failures,
//! and nothing dropped at drain — proving overload degrades gracefully
//! rather than hanging or erroring.

use rl_ccd::{RlCcd, RlConfig};
use rl_ccd_bench::{percentile, sort_metrics, write_csv, write_json, Cli, Json};
use rl_ccd_serve::{DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeConfig, Server};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let workers = cli.workers(8);
    let requests: usize = cli.value("--requests", 40);
    let designs: usize = cli.value("--designs", 2usize).max(1);
    let cells: usize = cli.value("--cells", 300);
    let csv = cli.csv("serve_load.csv");
    let assert_batching = std::env::args().any(|a| a == "--assert-batching");
    let assert_shedding = std::env::args().any(|a| a == "--assert-shedding");

    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let mut registry = ModelRegistry::new();
    registry
        .insert_params("default", params, rho)
        .expect("register model");

    let serve_config = ServeConfig {
        max_batch: cli.value("--max-batch", 8),
        window: Duration::from_millis(cli.value("--window-ms", 2u64)),
        // Roomy by default (nothing sheds); pin it low with --queue to
        // drive the server into overload on purpose.
        queue_capacity: cli.value("--queue", workers * requests + 1),
        workers: cli.value("--serve-workers", 2usize),
        ..ServeConfig::default()
    };
    let server = Server::start(registry, serve_config);

    let keys: Vec<DesignKey> = (0..designs)
        .map(|d| DesignKey {
            name: format!("load{d}"),
            cells,
            tech: "7nm".into(),
            seed: d as u64 + 1,
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let handle = server.handle();
            let keys = keys.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests);
                let mut failures = 0usize;
                let mut shed = 0usize;
                for r in 0..requests {
                    let k = (w + r) % keys.len();
                    let mode = if r % 2 == 0 {
                        Mode::Greedy
                    } else {
                        Mode::Sample((w * requests + r) as u64)
                    };
                    let t = Instant::now();
                    let resp = handle.query(QueryRequest {
                        model: "default".into(),
                        design: keys[k].clone(),
                        mode,
                        deadline_ms: None,
                    });
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    match resp {
                        Response::Err { .. } => failures += 1,
                        Response::Overloaded { .. } => shed += 1,
                        _ => {}
                    }
                }
                (latencies, failures, shed)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut failures = 0usize;
    let mut shed = 0usize;
    for h in handles {
        let (l, f, s) = h.join().expect("client thread panicked");
        latencies.extend(l);
        failures += f;
        shed += s;
    }
    let wall_s = started.elapsed().as_secs_f64();
    let report = server.shutdown();

    sort_metrics(&mut latencies);
    let total = latencies.len();
    let throughput = total as f64 / wall_s;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let batch_p50 = report.stats.batch_p50();

    println!(
        "{total} requests from {workers} threads over {designs} designs in {wall_s:.2}s \
         ({throughput:.1} req/s), {failures} failed, {shed} shed"
    );
    println!("latency p50 {p50:.2} ms, p99 {p99:.2} ms");
    print!("batch census (size:count):");
    for (size, count) in &report.stats.batches {
        print!(" {size}:{count}");
    }
    println!(" — p50 {batch_p50}");
    println!(
        "drain: {} accepted, {} completed, {} shed, {} evicted, {} deadline-expired, {} dropped",
        report.stats.accepted,
        report.stats.completed,
        report.stats.shed,
        report.stats.evicted,
        report.stats.deadline_expired,
        report.dropped()
    );

    let rows = vec![format!(
        "{workers},{requests},{designs},{cells},{total},{throughput:.2},{p50:.3},{p99:.3},{batch_p50},{shed},{},{}",
        report.stats.evicted,
        report.dropped()
    )];
    write_csv(
        &csv,
        "workers,requests_per_worker,designs,cells,total,throughput_rps,p50_ms,p99_ms,batch_p50,shed,evicted,dropped",
        &rows,
    )
    .expect("write csv");
    println!("wrote {csv}");

    let json_path: String = cli.value("--json", "BENCH_serve.json".to_string());
    let report_json = Json::Obj(vec![
        Json::field("bench", Json::Str("serve_load".into())),
        Json::field("client_threads", Json::Num(workers as f64)),
        Json::field("requests_per_thread", Json::Num(requests as f64)),
        Json::field("designs", Json::Num(designs as f64)),
        Json::field("cells", Json::Num(cells as f64)),
        Json::field("total_requests", Json::Num(total as f64)),
        Json::field("wall_s", Json::Num(wall_s)),
        Json::field("throughput_rps", Json::Num(throughput)),
        Json::field("p50_ms", Json::Num(p50)),
        Json::field("p99_ms", Json::Num(p99)),
        Json::field("batch_p50", Json::Num(batch_p50 as f64)),
        Json::field("failures", Json::Num(failures as f64)),
        Json::field("shed", Json::Num(shed as f64)),
        Json::field("server_shed", Json::Num(report.stats.shed as f64)),
        Json::field("evicted", Json::Num(report.stats.evicted as f64)),
        Json::field(
            "deadline_expired",
            Json::Num(report.stats.deadline_expired as f64),
        ),
        Json::field(
            "health_probes",
            Json::Num(report.stats.health_probes as f64),
        ),
        Json::field("dropped", Json::Num(report.dropped() as f64)),
    ]);
    write_json(&json_path, &report_json).expect("write json");
    println!("wrote {json_path}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures} request(s) failed");
        return ExitCode::FAILURE;
    }
    if assert_shedding {
        if shed == 0 {
            eprintln!("overload run shed nothing: queue never filled, raise load or lower --queue");
            return ExitCode::FAILURE;
        }
        if report.dropped() > 0 {
            eprintln!("drain dropped {} in-flight request(s)", report.dropped());
            return ExitCode::FAILURE;
        }
    }
    if assert_batching {
        if batch_p50 < 2 {
            eprintln!("batch p50 {batch_p50} < 2: dynamic batching did not engage");
            return ExitCode::FAILURE;
        }
        if report.dropped() > 0 {
            eprintln!("drain dropped {} in-flight request(s)", report.dropped());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
