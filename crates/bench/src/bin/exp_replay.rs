//! **Experience-loop throughput**: the three costs of closing the
//! learning loop, measured on one machine.
//!
//! 1. *Ingest* — events pushed through the [`ExpSink`] hook end to end:
//!    bounded enqueue, environment rebuild (cached), reward realization
//!    (one timing flow per record), content addressing, dedup, and the
//!    JSONL append. This is the full off-request-path pipeline a serving
//!    daemon pays per sampled query.
//! 2. *Dedup* — [`ReplayBuffer::push`] over an already-parsed record set
//!    with duplicates, the in-memory admission cost of retraining.
//! 3. *Retrain step* — one offline importance-weighted REINFORCE step
//!    over the log (teacher-forced replay, gradient step, guarded
//!    commit), amortized over a short run.
//!
//! Absolute rates are machine-bound; the committed `BENCH_exp.json`
//! documents the reference machine and CI gates fresh-vs-fresh for
//! schema, like the serve and dist benches.
//!
//! Usage:
//! ```text
//! exp_replay [--events 48] [--dup 4] [--steps 4] [--cells 360] [--seed 5]
//!            [--json BENCH_exp.json] [--csv exp_replay.csv]
//! ```

use rl_ccd::{save_training_state, InferSession, RlCcd, RlConfig, TrainingState};
use rl_ccd_bench::{write_csv, write_json, Cli, Json};
use rl_ccd_exp::{build_env, retrain, ExpRecord, ExpSink, ReplayBuffer, RetrainConfig};
use rl_ccd_nn::Adam;
use rl_ccd_serve::{DesignKey, ExperienceEvent, ExperienceHook};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let events: usize = cli.value("--events", 48usize).max(1);
    let dup: usize = cli.value("--dup", 4usize).max(1);
    let steps: usize = cli.value("--steps", 4usize).max(1);
    let cells = cli.cells(360);
    let seed = cli.seed(5);
    let json_path: String = cli.value("--json", "BENCH_exp.json".to_string());
    let csv = cli.csv("exp_replay.csv");

    let work = std::env::temp_dir().join(format!("rl-ccd-exp-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    if let Err(e) = std::fs::create_dir_all(&work) {
        eprintln!("{}: {e}", work.display());
        return ExitCode::FAILURE;
    }

    // A base policy checkpoint (version 3, as if trained) and the design
    // every event runs against.
    let config = RlConfig::fast();
    let (model, params) = RlCcd::init(config.clone());
    let base_dir = work.join("base");
    let state = TrainingState {
        next_iteration: 3,
        seed_base: config.seed,
        best_reward: -1.0e9,
        best_mean: -1.0e9,
        stale: 0,
        best_selection: vec![],
        params: params.clone(),
        adam: Adam::new(config.learning_rate),
        history: vec![],
        faults: vec![],
    };
    if let Err(e) = save_training_state(&state, &base_dir) {
        eprintln!("save base checkpoint: {e}");
        return ExitCode::FAILURE;
    }
    let key: DesignKey = format!("exp-bench:{cells}:7nm:{seed}")
        .parse()
        .expect("design key");
    let env = match build_env(&key, config.fanout_cap) {
        Ok(env) => env,
        Err(e) => {
            eprintln!("build env: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "exp_replay: {events} events x{dup} dup, {steps} retrain steps on {cells} cells \
         ({} violating endpoints)",
        env.pool().len()
    );

    // Pre-sample the trajectories so ingest timing excludes the policy
    // forward pass (the server already paid it when answering).
    let mut session = InferSession::new(&model, &params);
    let sampled: Vec<ExperienceEvent> = (0..events as u64)
        .filter_map(|s| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(s);
            let (selection, log_probs) = session.sample_logged(&env, &mut rng);
            if selection.is_empty() {
                return None;
            }
            Some(ExperienceEvent {
                design: key.clone(),
                model: "champion".into(),
                version: 3,
                fingerprint: 0xbeef,
                rho: config.rho,
                fanout_cap: config.fanout_cap,
                seed: s,
                selection,
                log_probs,
            })
        })
        .collect();

    // Stage 1: sink ingest (realization + content addressing + append).
    let log_path = work.join("exp.jsonl");
    let sink = match ExpSink::create(&log_path) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("open sink: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t = Instant::now();
    for event in &sampled {
        sink.on_sample(event.clone());
    }
    let report = sink.finish().expect("first finish returns the report");
    let ingest_s = t.elapsed().as_secs_f64();
    assert_eq!(report.dropped, 0, "bounded queue must not overflow here");
    assert_eq!(report.failed, 0, "all realizations must succeed");
    let ingest_rps = report.written as f64 / ingest_s.max(1e-9);

    // Stage 2: in-memory dedup admission over a duplicated record set.
    let text = std::fs::read_to_string(&log_path).expect("read log back");
    let records: Vec<ExpRecord> = text
        .lines()
        .map(|l| ExpRecord::parse(l).expect("own log parses"))
        .collect();
    let mut buffer = ReplayBuffer::new(3, 16);
    let t = Instant::now();
    for _ in 0..dup {
        for record in &records {
            buffer.push(record.clone());
        }
    }
    let dedup_s = t.elapsed().as_secs_f64();
    let pushes = records.len() * dup;
    let dedup_rps = pushes as f64 / dedup_s.max(1e-9);
    assert_eq!(
        buffer.len(),
        records.len(),
        "duplicates must not be admitted"
    );

    // Stage 3: offline retraining over the log.
    let out_dir = work.join("retrained");
    let cfg = RetrainConfig {
        steps,
        ..RetrainConfig::default()
    };
    let t = Instant::now();
    let retrained = match retrain(&base_dir, &log_path, &out_dir, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("retrain: {e}");
            return ExitCode::FAILURE;
        }
    };
    let retrain_s = t.elapsed().as_secs_f64();
    let step_ms = retrain_s / retrained.steps_taken.max(1) as f64 * 1e3;

    println!(
        "ingest  {:>10.1} records/s  ({} written, {} deduped at the sink)",
        ingest_rps, report.written, report.deduped
    );
    println!(
        "dedup   {:>10.1} pushes/s   ({} pushes, {} admitted)",
        dedup_rps,
        pushes,
        buffer.len()
    );
    println!(
        "retrain {:>10.1} ms/step    ({} steps, mean importance weight {:.3})",
        step_ms, retrained.steps_taken, retrained.mean_importance_weight
    );

    let json = Json::Obj(vec![
        Json::field("bench", Json::Str("exp_replay".into())),
        Json::field("cells", Json::Num(cells as f64)),
        Json::field("events", Json::Num(sampled.len() as f64)),
        Json::field("written", Json::Num(report.written as f64)),
        Json::field("ingest_rps", Json::Num(ingest_rps)),
        Json::field("dedup_pushes", Json::Num(pushes as f64)),
        Json::field("dedup_rps", Json::Num(dedup_rps)),
        Json::field("retrain_steps", Json::Num(retrained.steps_taken as f64)),
        Json::field("retrain_step_ms", Json::Num(step_ms)),
        Json::field(
            "mean_importance_weight",
            Json::Num(retrained.mean_importance_weight),
        ),
    ]);
    if let Err(e) = write_json(&json_path, &json) {
        eprintln!("{json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {json_path}");

    let row = format!(
        "{},{},{:.2},{},{:.2},{},{:.3}",
        sampled.len(),
        report.written,
        ingest_rps,
        pushes,
        dedup_rps,
        retrained.steps_taken,
        step_ms
    );
    if let Err(e) = write_csv(
        &csv,
        "events,written,ingest_rps,dedup_pushes,dedup_rps,retrain_steps,retrain_step_ms",
        &[row],
    ) {
        eprintln!("{csv}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {csv}");
    let _ = std::fs::remove_dir_all(&work);
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
