//! **Scaling study**: how every pipeline stage grows with design size.
//!
//! The paper notes RL's runtime "may be prohibitive" and answers with
//! transfer learning; this harness quantifies where our reproduction's time
//! goes — STA pass, full default flow, one GNN forward, one selection
//! trajectory — across a size sweep.
//!
//! Usage:
//! ```text
//! scaling [--max-cells 8000] [--csv scaling.csv] [--trace-out run.jsonl]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::{CcdEnv, RlCcd, RlConfig};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};
use std::time::Instant;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let max_cells: usize = cli.value("--max-cells", 8000);
    let csv = cli.csv("scaling.csv");

    println!(
        "{:>8} {:>8} {:>8} | {:>10} {:>10} {:>10} {:>12}",
        "cells", "nets", "pool", "sta (ms)", "flow (ms)", "gnn (ms)", "rollout (ms)"
    );
    let mut csv_rows = Vec::new();
    let mut cells = 500usize;
    while cells <= max_cells {
        let d = generate(&DesignSpec::new("scale", cells, TechNode::N7, 7));
        let n_cells = d.netlist.cell_count();
        let n_nets = d.netlist.net_count();

        // STA pass.
        let graph = TimingGraph::new(&d.netlist);
        let recipe = FlowRecipe::default();
        let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let cons = Constraints::with_period(d.period_ps);
        let margins = EndpointMargins::zero(&d.netlist);
        let t = Instant::now();
        for _ in 0..5 {
            let _ = analyze(&d.netlist, &graph, &cons, &clocks, &margins);
        }
        let sta_ms = ms(t) / 5.0;

        // Full default flow.
        let t = Instant::now();
        let _ = recipe.run(&d, &[]);
        let flow_ms = ms(t);

        // GNN forward + one rollout.
        let env = CcdEnv::new(d, recipe, 24);
        let (model, params) = RlCcd::init(RlConfig::default());
        let t = Instant::now();
        {
            let mut tape = rl_ccd_nn::Tape::new();
            let binding = params.bind(&mut tape);
            let x = tape.leaf(env.features().with_flags(&[]));
            let _ = model.gnn_forward(&mut tape, &binding, x, env.adjacency(), env.readout());
        }
        let gnn_ms = ms(t);
        let t = Instant::now();
        let ro = model.rollout(&params, &env, &mut StdRng::seed_from_u64(1));
        let rollout_ms = ms(t);

        println!(
            "{:>8} {:>8} {:>8} | {:>10.2} {:>10.1} {:>10.2} {:>12.1}",
            n_cells,
            n_nets,
            env.pool().len(),
            sta_ms,
            flow_ms,
            gnn_ms,
            rollout_ms
        );
        csv_rows.push(format!(
            "{n_cells},{n_nets},{},{sta_ms:.3},{flow_ms:.2},{gnn_ms:.3},{rollout_ms:.2},{}",
            env.pool().len(),
            ro.steps()
        ));
        cells *= 2;
    }
    write_csv(
        &csv,
        "cells,nets,pool,sta_ms,flow_ms,gnn_forward_ms,rollout_ms,trajectory_steps",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
