//! **Bench regression gate**: compares a fresh benchmark JSON against a
//! committed baseline and fails on throughput regressions.
//!
//! Every metric named in `--metrics` is read from both files via
//! dotted-path lookup (`kernels.speedup`, `fleets.0.throughput_rps`) and
//! treated as **higher-is-better** (throughputs, speedups, batch sizes —
//! don't gate latencies with this): the gate fails when
//! `current < baseline × (1 − tolerance)`. Improvements never fail — the
//! point is to catch the kernel rewrite that quietly loses its speedup,
//! not to freeze the numbers. When a run beats its baseline, refresh the
//! committed JSON in the same PR (see DESIGN.md §14).
//!
//! Usage:
//! ```text
//! bench_regress --baseline BENCH_nn.json --current fresh.json \
//!               --metrics kernels.speedup,train.speedup [--tolerance 0.15]
//! ```

use rl_ccd_bench::{Cli, Json};
use std::process::ExitCode;

fn metric(doc: &Json, path: &str, file: &str) -> Result<f64, String> {
    let node = doc
        .get_path(path)
        .ok_or_else(|| format!("{file}: no metric at path `{path}`"))?;
    let v = node
        .as_num()
        .ok_or_else(|| format!("{file}: metric `{path}` is not a number"))?;
    if !v.is_finite() {
        return Err(format!("{file}: metric `{path}` is {v}"));
    }
    Ok(v)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let baseline_path: String = cli.value("--baseline", String::new());
    let current_path: String = cli.value("--current", String::new());
    let metrics: String = cli.value("--metrics", String::new());
    let tolerance: f64 = cli.value("--tolerance", 0.15f64);
    if baseline_path.is_empty() || current_path.is_empty() || metrics.is_empty() {
        eprintln!("usage: bench_regress --baseline <json> --current <json> --metrics a.b,c.d");
        return ExitCode::FAILURE;
    }

    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench_regress: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for path in metrics.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let pair = metric(&baseline, path, &baseline_path)
            .and_then(|b| metric(&current, path, &current_path).map(|c| (b, c)));
        let (base, cur) = match pair {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bench_regress: {e}");
                failed = true;
                continue;
            }
        };
        let floor = base * (1.0 - tolerance);
        let ratio = if base.abs() > f64::EPSILON {
            cur / base
        } else {
            1.0
        };
        let verdict = if cur < floor { "REGRESSED" } else { "ok" };
        println!(
            "{path}: baseline {base:.3}, current {cur:.3} ({:+.1}%) — {verdict}",
            (ratio - 1.0) * 100.0
        );
        if cur < floor {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "bench_regress: regression beyond {:.0}% against {baseline_path}",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
