//! **Extension experiment**: RL-CCD vs. non-learning selection heuristics.
//!
//! The paper only compares against the native tool flow; this harness adds
//! the bounding baselines (worst-first, mildest-first, random,
//! headroom-first), all run through the same masking loop and the same
//! flow, so the value of *learning* the selection is isolated.
//!
//! Usage:
//! ```text
//! baselines [--cells 1500] [--designs 4] [--iters 10] [--csv baselines.csv]
//!           [--trace-out run.jsonl]
//! ```

use rl_ccd::{try_train, Baseline, CcdEnv, RlConfig, TrainSession};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let cells = cli.cells(1500);
    let designs = cli.designs(4);
    let iters = cli.iters(10);
    let csv = cli.csv("baselines.csv");

    println!("RL-CCD vs selection heuristics ({designs} designs × {cells} cells)\n");
    println!(
        "{:<8} {:>12} | {:>9} {:>9} {:>9} {:>9} | {:>9}",
        "design", "default TNS", "worst", "mildest", "random", "headroom", "RL-CCD"
    );

    let mut csv_rows = Vec::new();
    let mut sums = [0.0f64; 5];
    for i in 0..designs {
        let name = format!("bl{i}");
        let design = generate(&DesignSpec::new(&name, cells, TechNode::N7, 900 + i as u64));
        let config = RlConfig {
            max_iterations: iters,
            ..RlConfig::default()
        };
        let env = CcdEnv::new(design, FlowRecipe::default(), config.fanout_cap);
        let default = env.default_flow();
        let gain_of = |b: Baseline| -> f64 {
            let sel = b.select(&env, config.rho, 7);
            env.evaluate(&sel).tns_gain_over(&default)
        };
        let g_worst = gain_of(Baseline::WorstFirst);
        let g_mild = gain_of(Baseline::MildestFirst);
        let g_rand = gain_of(Baseline::Random);
        let g_head = gain_of(Baseline::HeadroomFirst);
        let outcome = try_train(&env, &config, TrainSession::default())?;
        let g_rl = outcome.best_result.tns_gain_over(&default);
        for (s, g) in sums.iter_mut().zip([g_worst, g_mild, g_rand, g_head, g_rl]) {
            *s += g;
        }
        println!(
            "{:<8} {:>12.0} | {:>+8.1}% {:>+8.1}% {:>+8.1}% {:>+8.1}% | {:>+8.1}%",
            name, default.final_qor.tns_ps, g_worst, g_mild, g_rand, g_head, g_rl
        );
        csv_rows.push(format!(
            "{name},{:.1},{g_worst:.2},{g_mild:.2},{g_rand:.2},{g_head:.2},{g_rl:.2}",
            default.final_qor.tns_ps
        ));
    }
    let n = designs.max(1) as f64;
    println!(
        "\nmean gains: worst {:+.1}% | mildest {:+.1}% | random {:+.1}% | headroom {:+.1}% | RL {:+.1}%",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n
    );
    write_csv(
        &csv,
        "design,default_tns_ps,worst_first_pct,mildest_first_pct,random_pct,headroom_pct,rl_pct",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
