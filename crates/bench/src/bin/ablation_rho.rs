//! **Ablation A**: sweep of the fan-in-cone overlap-masking threshold ρ.
//!
//! The paper fixes ρ = 0.3 and credits the masking technique for part of
//! RL-CCD's success (§IV-C). This sweep shows why the default works: small
//! ρ lets poisonous selections mask the valuable ones, large ρ disables
//! masking so the agent is forced to select (and margin) every violating
//! endpoint.
//!
//! Usage:
//! ```text
//! ablation_rho [--cells 1500] [--seed 77] [--iters 10] [--csv ablation_rho.csv]
//!              [--trace-out run.jsonl]
//! ```

use rl_ccd::{try_train, CcdEnv, RlConfig, TrainSession};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let cells = cli.cells(1500);
    let seed = cli.seed(77);
    let iters = cli.iters(10);
    let csv = cli.csv("ablation_rho.csv");

    let design = generate(&DesignSpec::new("rho_sweep", cells, TechNode::N7, seed));
    println!(
        "ρ ablation on {} cells (pool rebuilt per run; default flow as baseline)",
        design.netlist.cell_count()
    );
    let env = CcdEnv::new(
        design,
        FlowRecipe::default(),
        RlConfig::default().fanout_cap,
    );
    let default = env.default_flow();
    println!(
        "default flow TNS {:.0} ps\n\n{:>5} {:>14} {:>10} {:>10} {:>8}",
        default.final_qor.tns_ps, "rho", "best TNS ps", "gain %", "#selected", "iters"
    );

    let mut csv_rows = Vec::new();
    for rho in [0.1f32, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let config = RlConfig {
            rho,
            max_iterations: iters,
            ..RlConfig::default()
        };
        let outcome = try_train(&env, &config, TrainSession::default())?;
        let gain = outcome.best_result.tns_gain_over(&default);
        println!(
            "{rho:>5.1} {:>14.0} {:>+10.1} {:>10} {:>8}",
            outcome.best_result.final_qor.tns_ps,
            gain,
            outcome.best_selection.len(),
            outcome.history.len()
        );
        csv_rows.push(format!(
            "{rho},{:.1},{gain:.2},{},{}",
            outcome.best_result.final_qor.tns_ps,
            outcome.best_selection.len(),
            outcome.history.len()
        ));
    }
    write_csv(
        &csv,
        "rho,best_tns_ps,gain_pct,selected,iterations",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
