//! Regenerates **Fig. 6**: transfer learning on the block19 analogue.
//!
//! A donor EP-GNN is first trained on other same-technology designs
//! (block15 and block17 are the suite's other N7 blocks of similar size);
//! its weights are reloaded with a fresh encoder/decoder and training on
//! block19 is compared against training everything from scratch. The paper
//! shows the transferred run converging to comparable TNS in far fewer
//! iterations.
//!
//! Usage:
//! ```text
//! fig6 [--scale 0.5] [--iters 16] [--donor-iters 8] [--csv fig6.csv]
//!      [--checkpoint DIR] [--checkpoint-every K] [--trace-out run.jsonl]
//! ```
//!
//! With `--checkpoint DIR`, each of the four training runs (two donors,
//! scratch, transfer) keeps resumable state under its own `DIR/<run>/`
//! subdirectory, so an interrupted regeneration continues where it stopped.

use rl_ccd::{with_pretrained_gnn, RlConfig, Session, TrainOutcome};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_netlist::{generate, GeneratedDesign};
use std::path::PathBuf;

/// Trains with per-run resumable checkpoints when `root` is set.
fn run(
    design: GeneratedDesign,
    config: &RlConfig,
    initial: Option<rl_ccd_nn::ParamSet>,
    root: Option<&PathBuf>,
    sub: &str,
    every: usize,
) -> Result<TrainOutcome, rl_ccd::Error> {
    let mut builder = Session::builder().design(design).rl_config(config.clone());
    if let Some(params) = initial {
        builder = builder.initial_params(params);
    }
    if let Some(root) = root {
        builder = builder.checkpoint(root.join(sub), every);
    }
    builder.build()?.train()
}

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let scale = cli.scale(0.5);
    let iters = cli.iters(16);
    let donor_iters: usize = cli.value("--donor-iters", 8);
    let csv = cli.csv("fig6.csv");
    let checkpoint = cli.checkpoint();
    let every = cli.checkpoint_every(5);

    let suite = rl_ccd_netlist::block_suite(scale);
    let config = RlConfig {
        max_iterations: iters,
        patience: iters, // plot full curves, no early stop
        ..RlConfig::default()
    };

    // Pre-train the EP-GNN on the other 7 nm blocks (indices 14, 16).
    let mut donor_cfg = config.clone();
    donor_cfg.max_iterations = donor_iters;
    donor_cfg.patience = donor_iters;
    let mut donor_params = None;
    for &idx in &[14usize, 16usize] {
        let design = generate(&suite[idx]);
        println!(
            "pre-training EP-GNN on {} ({} cells)…",
            suite[idx].name,
            design.netlist.cell_count()
        );
        let sub = format!("donor-{}", suite[idx].name);
        let outcome = run(
            design,
            &donor_cfg,
            donor_params.take(),
            checkpoint.as_ref(),
            &sub,
            every,
        )?;
        donor_params = Some(outcome.params);
    }
    let donor = donor_params.expect("donor training ran");

    // Target: block19 (index 18), the suite's largest 7 nm design.
    let design = generate(&suite[18]);
    println!(
        "\nFig. 6 reproduction on {} ({} cells)",
        suite[18].name,
        design.netlist.cell_count()
    );
    let default = Session::builder()
        .design(design.clone())
        .rl_config(config.clone())
        .build()?
        .run_flow()?;

    let scratch = run(
        design.clone(),
        &config,
        None,
        checkpoint.as_ref(),
        "scratch",
        every,
    )?;
    let (_, transfer_params, adopted) = with_pretrained_gnn(config.clone(), &donor);
    println!("transferred {adopted} EP-GNN tensors; encoder/decoder fresh");
    let transferred = run(
        design,
        &config,
        Some(transfer_params),
        checkpoint.as_ref(),
        "transfer",
        every,
    )?;

    println!(
        "\n{:>5} {:>14} {:>14} {:>14} {:>14}   (TNS ps; default flow {:.0})",
        "iter",
        "scratch-greedy",
        "scratch-best",
        "xfer-greedy",
        "xfer-best",
        default.final_qor.tns_ps
    );
    let n = scratch.history.len().max(transferred.history.len());
    let mut csv_rows = Vec::new();
    for i in 0..n {
        let sg = scratch
            .history
            .get(i)
            .map(|h| h.greedy_reward)
            .unwrap_or(f64::NAN);
        let s = scratch
            .history
            .get(i)
            .map(|h| h.best_so_far)
            .unwrap_or(f64::NAN);
        let tg = transferred
            .history
            .get(i)
            .map(|h| h.greedy_reward)
            .unwrap_or(f64::NAN);
        let t = transferred
            .history
            .get(i)
            .map(|h| h.best_so_far)
            .unwrap_or(f64::NAN);
        println!("{i:>5} {sg:>14.0} {s:>14.0} {tg:>14.0} {t:>14.0}");
        csv_rows.push(format!("{i},{sg:.1},{s:.1},{tg:.1},{t:.1}"));
    }
    // Convergence speed: first iteration reaching within 2% of the final
    // best, per curve.
    let first_hit = |hist: &[rl_ccd::IterationStats]| {
        let best = hist.last().map(|h| h.best_so_far).unwrap_or(0.0);
        hist.iter()
            .position(|h| h.best_so_far <= best * 0.98 || h.best_so_far >= best)
            .unwrap_or(hist.len())
    };
    println!(
        "\nscratch best {:.0} (reached ~iter {}), transfer best {:.0} (reached ~iter {})",
        scratch.best_result.final_qor.tns_ps,
        first_hit(&scratch.history),
        transferred.best_result.final_qor.tns_ps,
        first_hit(&transferred.history),
    );
    write_csv(
        &csv,
        "iteration,scratch_greedy_tns_ps,scratch_best_tns_ps,transfer_greedy_tns_ps,transfer_best_tns_ps",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
