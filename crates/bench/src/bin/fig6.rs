//! Regenerates **Fig. 6**: transfer learning on the block19 analogue.
//!
//! A donor EP-GNN is first trained on other same-technology designs
//! (block15 and block17 are the suite's other N7 blocks of similar size);
//! its weights are reloaded with a fresh encoder/decoder and training on
//! block19 is compared against training everything from scratch. The paper
//! shows the transferred run converging to comparable TNS in far fewer
//! iterations.
//!
//! Usage:
//! ```text
//! fig6 [--scale 0.5] [--iters 16] [--donor-iters 8] [--csv fig6.csv]
//!      [--checkpoint DIR] [--checkpoint-every K]
//! ```
//!
//! With `--checkpoint DIR`, each of the four training runs (two donors,
//! scratch, transfer) keeps resumable state under its own `DIR/<run>/`
//! subdirectory, so an interrupted regeneration continues where it stopped.

use rl_ccd::{train, train_or_resume, with_pretrained_gnn, CcdEnv, RlConfig, TrainSession};
use rl_ccd_bench::{arg_value, write_csv};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{block_suite, generate};

/// Trains with per-run resumable checkpoints when `root` is non-empty.
fn run(
    env: &CcdEnv,
    config: &RlConfig,
    initial: Option<rl_ccd_nn::ParamSet>,
    root: &str,
    sub: &str,
    every: usize,
) -> rl_ccd::TrainOutcome {
    if root.is_empty() {
        return train(env, config, initial);
    }
    let dir = std::path::Path::new(root).join(sub);
    let session = TrainSession {
        initial,
        ..TrainSession::checkpointed(dir.clone(), every)
    };
    match train_or_resume(env, config, &dir, session) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("{sub}: training aborted: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f32 = arg_value(&args, "--scale", 0.5);
    let iters: usize = arg_value(&args, "--iters", 16);
    let donor_iters: usize = arg_value(&args, "--donor-iters", 8);
    let csv: String = arg_value(&args, "--csv", "fig6.csv".to_string());
    let checkpoint: String = arg_value(&args, "--checkpoint", String::new());
    let every: usize = arg_value(&args, "--checkpoint-every", 5);

    let suite = block_suite(scale);
    let config = RlConfig {
        max_iterations: iters,
        patience: iters, // plot full curves, no early stop
        ..RlConfig::default()
    };

    // Pre-train the EP-GNN on the other 7 nm blocks (indices 14, 16).
    let mut donor_cfg = config.clone();
    donor_cfg.max_iterations = donor_iters;
    donor_cfg.patience = donor_iters;
    let mut donor_params = None;
    for &idx in &[14usize, 16usize] {
        let design = generate(&suite[idx]);
        println!(
            "pre-training EP-GNN on {} ({} cells)…",
            suite[idx].name,
            design.netlist.cell_count()
        );
        let env = CcdEnv::new(design, FlowRecipe::default(), donor_cfg.fanout_cap);
        let sub = format!("donor-{}", suite[idx].name);
        let outcome = run(
            &env,
            &donor_cfg,
            donor_params.take(),
            &checkpoint,
            &sub,
            every,
        );
        donor_params = Some(outcome.params);
    }
    let donor = donor_params.expect("donor training ran");

    // Target: block19 (index 18), the suite's largest 7 nm design.
    let design = generate(&suite[18]);
    println!(
        "\nFig. 6 reproduction on {} ({} cells)",
        suite[18].name,
        design.netlist.cell_count()
    );
    let env = CcdEnv::new(design, FlowRecipe::default(), config.fanout_cap);
    let default = env.default_flow();

    let scratch = run(&env, &config, None, &checkpoint, "scratch", every);
    let (_, transfer_params, adopted) = with_pretrained_gnn(config.clone(), &donor);
    println!("transferred {adopted} EP-GNN tensors; encoder/decoder fresh");
    let transferred = run(
        &env,
        &config,
        Some(transfer_params),
        &checkpoint,
        "transfer",
        every,
    );

    println!(
        "\n{:>5} {:>14} {:>14} {:>14} {:>14}   (TNS ps; default flow {:.0})",
        "iter",
        "scratch-greedy",
        "scratch-best",
        "xfer-greedy",
        "xfer-best",
        default.final_qor.tns_ps
    );
    let n = scratch.history.len().max(transferred.history.len());
    let mut csv_rows = Vec::new();
    for i in 0..n {
        let sg = scratch
            .history
            .get(i)
            .map(|h| h.greedy_reward)
            .unwrap_or(f64::NAN);
        let s = scratch
            .history
            .get(i)
            .map(|h| h.best_so_far)
            .unwrap_or(f64::NAN);
        let tg = transferred
            .history
            .get(i)
            .map(|h| h.greedy_reward)
            .unwrap_or(f64::NAN);
        let t = transferred
            .history
            .get(i)
            .map(|h| h.best_so_far)
            .unwrap_or(f64::NAN);
        println!("{i:>5} {sg:>14.0} {s:>14.0} {tg:>14.0} {t:>14.0}");
        csv_rows.push(format!("{i},{sg:.1},{s:.1},{tg:.1},{t:.1}"));
    }
    // Convergence speed: first iteration reaching within 2% of the final
    // best, per curve.
    let first_hit = |hist: &[rl_ccd::IterationStats]| {
        let best = hist.last().map(|h| h.best_so_far).unwrap_or(0.0);
        hist.iter()
            .position(|h| h.best_so_far <= best * 0.98 || h.best_so_far >= best)
            .unwrap_or(hist.len())
    };
    println!(
        "\nscratch best {:.0} (reached ~iter {}), transfer best {:.0} (reached ~iter {})",
        scratch.best_result.final_qor.tns_ps,
        first_hit(&scratch.history),
        transferred.best_result.final_qor.tns_ps,
        first_hit(&transferred.history),
    );
    match write_csv(
        &csv,
        "iteration,scratch_greedy_tns_ps,scratch_best_tns_ps,transfer_greedy_tns_ps,transfer_best_tns_ps",
        &csv_rows,
    ) {
        Ok(()) => println!("wrote {csv}"),
        Err(e) => eprintln!("could not write {csv}: {e}"),
    }
}
