//! **Extension ablation**: past-actions encoder architecture.
//!
//! The paper motivates the LSTM encoder by arguing selections "should not
//! be independent of each other" (§III-B.2). This ablation trains the full
//! framework with three encoders — the paper's LSTM, a GRU, and no history
//! at all (constant zero query) — on the same designs.
//!
//! Usage:
//! ```text
//! ablation_encoder [--cells 1500] [--designs 3] [--iters 10] [--seed 700]
//!                  [--csv ablation_encoder.csv] [--trace-out run.jsonl]
//! ```

use rl_ccd::{try_train, CcdEnv, EncoderKind, RlConfig, TrainSession};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let cells = cli.cells(1500);
    let designs = cli.designs(3);
    let iters = cli.iters(10);
    let seed0 = cli.seed(700);
    let csv = cli.csv("ablation_encoder.csv");

    println!("encoder ablation ({designs} designs × {cells} cells, {iters} iterations)\n");
    println!(
        "{:<8} {:>12} | {:>10} {:>10} {:>10}",
        "design", "default TNS", "LSTM", "GRU", "none"
    );

    let mut csv_rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for i in 0..designs {
        let name = format!("enc{i}");
        let design = generate(&DesignSpec::new(
            &name,
            cells,
            TechNode::N7,
            seed0 + i as u64,
        ));
        let env = CcdEnv::new(
            design,
            FlowRecipe::default(),
            RlConfig::default().fanout_cap,
        );
        let default = env.default_flow();
        let mut gains = [0.0f64; 3];
        for (k, kind) in [EncoderKind::Lstm, EncoderKind::Gru, EncoderKind::None]
            .into_iter()
            .enumerate()
        {
            let config = RlConfig {
                max_iterations: iters,
                encoder: kind,
                ..RlConfig::default()
            };
            let outcome = try_train(&env, &config, TrainSession::default())?;
            gains[k] = outcome.best_result.tns_gain_over(&default);
            sums[k] += gains[k];
        }
        println!(
            "{:<8} {:>12.0} | {:>+9.1}% {:>+9.1}% {:>+9.1}%",
            name, default.final_qor.tns_ps, gains[0], gains[1], gains[2]
        );
        csv_rows.push(format!(
            "{name},{:.1},{:.2},{:.2},{:.2}",
            default.final_qor.tns_ps, gains[0], gains[1], gains[2]
        ));
    }
    let n = designs.max(1) as f64;
    println!(
        "\nmean gains: LSTM {:+.1}% | GRU {:+.1}% | none {:+.1}%",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    write_csv(
        &csv,
        "design,default_tns_ps,lstm_pct,gru_pct,none_pct",
        &csv_rows,
    )?;
    println!("wrote {csv}");
    cli.finish()
}
