//! Regenerates **Fig. 5**: histogram of clock-arrival adjustments on the
//! block11 analogue, default flow vs. RL-CCD (juxtaposed bars per bucket).
//!
//! The paper's point: by prioritizing a few dozen critical endpoints, RL-CCD
//! visibly shifts how the useful-skew engine allocates adjustments.
//!
//! Usage:
//! ```text
//! fig5 [--scale 1.0] [--iters 12] [--block 10] [--buckets 8] [--csv fig5.csv]
//!      [--trace-out run.jsonl]
//! ```

use rl_ccd::{RlConfig, Session};
use rl_ccd_bench::{write_csv, Cli};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{block_suite, generate};

fn bucketize(skews: &[f32], bound: f32, buckets: usize) -> Vec<usize> {
    let width = 2.0 * bound / buckets as f32;
    let mut counts = vec![0usize; buckets];
    for &s in skews {
        let idx = (((s + bound) / width) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    counts
}

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let scale = cli.scale(1.0);
    let iters = cli.iters(12);
    let buckets: usize = cli.value("--buckets", 8usize) * 2;
    let csv = cli.csv("fig5.csv");
    let block: usize = cli.value("--block", 10);

    // block11 is index 10 in the suite (the paper's Fig. 5 subject).
    let spec = block_suite(scale).swap_remove(block.min(18));
    let design = generate(&spec);
    let recipe = FlowRecipe::default();
    let bound = recipe.skew_bound_frac * design.period_ps;
    println!(
        "Fig. 5 reproduction on {} ({} cells, period {:.0} ps, skew bound ±{:.0} ps)",
        spec.name,
        design.netlist.cell_count(),
        design.period_ps,
        bound
    );

    let config = RlConfig {
        max_iterations: iters,
        ..RlConfig::default()
    };
    let session = Session::builder()
        .design(design)
        .recipe(recipe)
        .rl_config(config)
        .build()?;
    let default = session.run_flow()?;
    let outcome = session.train()?;
    let rl = session.env().evaluate(&outcome.best_selection);
    println!(
        "RL-CCD prioritizes {} endpoints before useful skew (paper: 74)",
        outcome.best_selection.len()
    );
    println!(
        "TNS: default {:.2} ns → RL {:.2} ns ({:+.1}%)",
        default.final_qor.tns_ns(),
        rl.final_qor.tns_ns(),
        rl.tns_gain_over(&default)
    );

    let d_hist = bucketize(&default.skews, bound, buckets);
    let r_hist = bucketize(&rl.skews, bound, buckets);
    let width = 2.0 * bound / buckets as f32;
    println!(
        "\n{:>22} {:>10} {:>10}",
        "arrival adj (ps)", "default", "RL-CCD"
    );
    let max_count = d_hist.iter().chain(&r_hist).copied().max().unwrap_or(1);
    let mut csv_rows = Vec::new();
    for i in 0..buckets {
        let lo = -bound + i as f32 * width;
        let hi = lo + width;
        let bar = |c: usize| "#".repeat((c * 30 / max_count.max(1)).max(usize::from(c > 0)));
        println!(
            "[{lo:>8.1}, {hi:>8.1}) {:>10} {:>10}   |{:<30}|{:<30}",
            d_hist[i],
            r_hist[i],
            bar(d_hist[i]),
            bar(r_hist[i])
        );
        csv_rows.push(format!("{lo:.1},{hi:.1},{},{}", d_hist[i], r_hist[i]));
    }
    write_csv(&csv, "bucket_lo_ps,bucket_hi_ps,default,rl_ccd", &csv_rows)?;
    println!("wrote {csv}");
    cli.finish()
}
