//! Regenerates **Fig. 5**: histogram of clock-arrival adjustments on the
//! block11 analogue, default flow vs. RL-CCD (juxtaposed bars per bucket).
//!
//! The paper's point: by prioritizing a few dozen critical endpoints, RL-CCD
//! visibly shifts how the useful-skew engine allocates adjustments.
//!
//! Usage:
//! ```text
//! fig5 [--scale 1.0] [--iters 12] [--block 10] [--buckets 8] [--csv fig5.csv]
//! ```

use rl_ccd::{train, CcdEnv, RlConfig};
use rl_ccd_bench::{arg_value, write_csv};
use rl_ccd_flow::{run_flow, FlowRecipe};
use rl_ccd_netlist::{block_suite, generate};

fn bucketize(skews: &[f32], bound: f32, buckets: usize) -> Vec<usize> {
    let width = 2.0 * bound / buckets as f32;
    let mut counts = vec![0usize; buckets];
    for &s in skews {
        let idx = (((s + bound) / width) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    counts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f32 = arg_value(&args, "--scale", 1.0);
    let iters: usize = arg_value(&args, "--iters", 12);
    let buckets: usize = arg_value(&args, "--buckets", 8) * 2;
    let csv: String = arg_value(&args, "--csv", "fig5.csv".to_string());
    let block: usize = arg_value(&args, "--block", 10);

    // block11 is index 10 in the suite (the paper's Fig. 5 subject).
    let spec = block_suite(scale).swap_remove(block.min(18));
    let design = generate(&spec);
    let recipe = FlowRecipe::default();
    let bound = recipe.skew_bound_frac * design.period_ps;
    println!(
        "Fig. 5 reproduction on {} ({} cells, period {:.0} ps, skew bound ±{:.0} ps)",
        spec.name,
        design.netlist.cell_count(),
        design.period_ps,
        bound
    );

    let default = run_flow(&design, &recipe, &[]);
    let config = RlConfig {
        max_iterations: iters,
        ..RlConfig::default()
    };
    let env = CcdEnv::new(design, recipe, config.fanout_cap);
    let outcome = train(&env, &config, None);
    let rl = env.evaluate(&outcome.best_selection);
    println!(
        "RL-CCD prioritizes {} endpoints before useful skew (paper: 74)",
        outcome.best_selection.len()
    );
    println!(
        "TNS: default {:.2} ns → RL {:.2} ns ({:+.1}%)",
        default.final_qor.tns_ns(),
        rl.final_qor.tns_ns(),
        rl.tns_gain_over(&default)
    );

    let d_hist = bucketize(&default.skews, bound, buckets);
    let r_hist = bucketize(&rl.skews, bound, buckets);
    let width = 2.0 * bound / buckets as f32;
    println!(
        "\n{:>22} {:>10} {:>10}",
        "arrival adj (ps)", "default", "RL-CCD"
    );
    let max_count = d_hist.iter().chain(&r_hist).copied().max().unwrap_or(1);
    let mut csv_rows = Vec::new();
    for i in 0..buckets {
        let lo = -bound + i as f32 * width;
        let hi = lo + width;
        let bar = |c: usize| "#".repeat((c * 30 / max_count.max(1)).max(usize::from(c > 0)));
        println!(
            "[{lo:>8.1}, {hi:>8.1}) {:>10} {:>10}   |{:<30}|{:<30}",
            d_hist[i],
            r_hist[i],
            bar(d_hist[i]),
            bar(r_hist[i])
        );
        csv_rows.push(format!("{lo:.1},{hi:.1},{},{}", d_hist[i], r_hist[i]));
    }
    match write_csv(&csv, "bucket_lo_ps,bucket_hi_ps,default,rl_ccd", &csv_rows) {
        Ok(()) => println!("wrote {csv}"),
        Err(e) => eprintln!("could not write {csv}: {e}"),
    }
}
