//! **Distributed rollout scaling**: throughput of the coordinator/worker
//! executor as the fleet grows.
//!
//! Spawns in-process worker fleets (real TCP on ephemeral loopback ports)
//! of 1, 2 and 4 workers, shards identical rollout batches over each via
//! [`DistExecutor`], and reports rollouts/s plus p50/p99 batch latency per
//! fleet size — the scaling evidence for the distributed subsystem. A
//! [`LocalExecutor`] row anchors the comparison, and every fleet's rewards
//! are asserted bit-identical to the local run's (the determinism
//! contract, measured rather than assumed).
//!
//! Worker Init (netlist transfer, per-worker env rebuild) is amortized by
//! an untimed warm-up batch, so the numbers are steady-state. When every
//! worker shares one host the curve is bounded by that host's cores —
//! flat near the local row on a single-core box (the residual gap is wire
//! overhead); fleet sizes only separate when workers own their own cores.
//!
//! Usage:
//! ```text
//! dist_scale [--slots 8] [--batches 6] [--cells 400] [--seed 71]
//!            [--json BENCH_dist.json] [--csv dist_scale.csv]
//! ```

use rl_ccd::{CcdEnv, FaultPlan, LocalExecutor, RlCcd, RlConfig, RolloutExecutor, RolloutRequest};
use rl_ccd_bench::{percentile, sort_metrics, write_csv, write_json, Cli, Json};
use rl_ccd_dist::{serve_worker, DistExecutor, NetStats};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Instant;

/// One fleet size's measurement.
struct Row {
    label: String,
    workers: usize,
    rollouts: usize,
    wall_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Transport-recovery counters; all-zero for the local row, and for
    /// any clean distributed run (the bench asserts no quarantines, but a
    /// flaky host may still retry its way to success — worth surfacing).
    net: NetStats,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.rollouts as f64 / self.wall_s.max(1e-9)
    }
}

/// Runs `batches` iterations of `slots` rollouts through `executor` and
/// returns the measurement plus the reward trace (for the determinism
/// assert).
#[allow(clippy::too_many_arguments)]
fn measure(
    label: &str,
    workers: usize,
    executor: &mut dyn RolloutExecutor,
    model: &RlCcd,
    env: &CcdEnv,
    config: &RlConfig,
    slots: usize,
    batches: usize,
) -> (Row, Vec<f64>) {
    let (_, params) = RlCcd::init(config.clone());
    let plan = FaultPlan::none();
    // Untimed warm-up: the distributed executor initializes workers lazily
    // on the first batch (netlist transfer, per-worker env rebuild), which
    // is a one-off cost — steady-state throughput is what scales.
    let warmup_pairs: Vec<(usize, u64)> = (0..slots)
        .map(|s| (s, (batches * slots + s) as u64 + 1))
        .collect();
    executor.run_batch(&RolloutRequest {
        iteration: batches,
        pairs: &warmup_pairs,
        params: &params,
        model,
        env,
        config,
        plan: &plan,
    });
    let mut latencies = Vec::with_capacity(batches);
    let mut rewards = Vec::with_capacity(batches * slots);
    let mut rollouts = 0usize;
    let started = Instant::now();
    for iteration in 0..batches {
        let pairs: Vec<(usize, u64)> = (0..slots)
            .map(|s| (s, (iteration * slots + s) as u64 + 1))
            .collect();
        let req = RolloutRequest {
            iteration,
            pairs: &pairs,
            params: &params,
            model,
            env,
            config,
            plan: &plan,
        };
        let t = Instant::now();
        let batch = executor.run_batch(&req);
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(
            batch.faults.is_empty(),
            "{label}: clean bench run must not quarantine rollouts"
        );
        assert_eq!(batch.rollouts.len(), slots, "{label}: all slots survive");
        rollouts += batch.rollouts.len();
        rewards.extend(batch.rollouts.iter().map(|r| r.reward));
    }
    let wall_s = started.elapsed().as_secs_f64();
    sort_metrics(&mut latencies);
    let row = Row {
        label: label.to_string(),
        workers,
        rollouts,
        wall_s,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        net: NetStats::default(),
    };
    (row, rewards)
}

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let slots: usize = cli.value("--slots", 8);
    let batches: usize = cli.value("--batches", 6usize).max(1);
    let cells = cli.cells(400);
    let seed = cli.seed(71);
    let json_path: String = cli.value("--json", "BENCH_dist.json".to_string());
    let csv = cli.csv("dist_scale.csv");

    let design = generate(&DesignSpec::new("dist-scale", cells, TechNode::N7, seed));
    let config = RlConfig {
        workers: slots,
        ..RlConfig::fast()
    };
    let env = CcdEnv::new(design, FlowRecipe::default(), config.fanout_cap);
    let (model, _) = RlCcd::init(config.clone());
    println!(
        "dist_scale: {slots} slots x {batches} batches on {} cells ({} violating endpoints)",
        cells,
        env.pool().len()
    );

    let (local_row, local_rewards) = measure(
        "local",
        0,
        &mut LocalExecutor,
        &model,
        &env,
        &config,
        slots,
        batches,
    );
    let mut rows = vec![local_row];

    for n in [1usize, 2, 4] {
        // Real workers on ephemeral loopback ports, one thread each.
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            addrs.push(listener.local_addr().expect("local addr").to_string());
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker(listener);
            }));
        }
        let mut executor = DistExecutor::connect(&addrs).expect("connect fleet");
        let (mut row, rewards) = measure(
            &format!("dist-{n}"),
            n,
            &mut executor,
            &model,
            &env,
            &config,
            slots,
            batches,
        );
        assert_eq!(
            rewards, local_rewards,
            "dist-{n}: distributed rewards must be bit-identical to local"
        );
        row.net = executor.net_stats();
        rows.push(row);
        executor.shutdown();
        for handle in handles {
            let _ = handle.join();
        }
    }

    println!(
        "{:<8} {:>7} {:>9} {:>12} {:>9} {:>9}",
        "fleet", "workers", "rollouts", "rollouts/s", "p50 ms", "p99 ms"
    );
    let base = rows[0].throughput();
    for r in &rows {
        println!(
            "{:<8} {:>7} {:>9} {:>12.2} {:>9.1} {:>9.1}  ({:.2}x local)",
            r.label,
            r.workers,
            r.rollouts,
            r.throughput(),
            r.p50_ms,
            r.p99_ms,
            r.throughput() / base.max(1e-9),
        );
    }

    let fleets = rows
        .iter()
        .map(|r| {
            Json::Obj(vec![
                Json::field("fleet", Json::Str(r.label.clone())),
                Json::field("workers", Json::Num(r.workers as f64)),
                Json::field("rollouts", Json::Num(r.rollouts as f64)),
                Json::field("wall_s", Json::Num(r.wall_s)),
                Json::field("throughput_rps", Json::Num(r.throughput())),
                Json::field("p50_ms", Json::Num(r.p50_ms)),
                Json::field("p99_ms", Json::Num(r.p99_ms)),
                Json::field("net_retries", Json::Num(r.net.retries as f64)),
                Json::field("net_reconnects", Json::Num(r.net.reconnects as f64)),
                Json::field("net_requeued", Json::Num(r.net.requeued as f64)),
                Json::field("net_quarantined", Json::Num(r.net.quarantined as f64)),
                Json::field("net_probes_failed", Json::Num(r.net.probes_failed as f64)),
            ])
        })
        .collect();
    let report = Json::Obj(vec![
        Json::field("bench", Json::Str("dist_scale".into())),
        Json::field("slots", Json::Num(slots as f64)),
        Json::field("batches", Json::Num(batches as f64)),
        Json::field("cells", Json::Num(cells as f64)),
        Json::field("fleets", Json::Arr(fleets)),
    ]);
    if let Err(e) = write_json(&json_path, &report) {
        eprintln!("{json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {json_path}");

    let csv_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{:.4},{:.2},{:.3},{:.3}",
                r.label,
                r.workers,
                r.rollouts,
                r.wall_s,
                r.throughput(),
                r.p50_ms,
                r.p99_ms
            )
        })
        .collect();
    if let Err(e) = write_csv(
        &csv,
        "fleet,workers,rollouts,wall_s,throughput_rps,p50_ms,p99_ms",
        &csv_rows,
    ) {
        eprintln!("{csv}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {csv}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
