//! **NN kernel throughput**: fast batched kernels vs the pinned scalar
//! reference at policy-sized shapes.
//!
//! Three measurements, all fast-vs-[`KernelMode::Scalar`]:
//!
//! 1. **kernels** — the dense-layer forward+backward op sets the policy
//!    executes (attention projection, attention scores, LSTM input and
//!    recurrent products: `x·w`, `g·wᵀ`, `xᵀ·g`, column-sum) at its exact
//!    shapes. This is the gated headline number: `--min-speedup 3.0`
//!    makes the process exit nonzero unless the fast kernels deliver 3×.
//! 2. **train** — a full policy-shaped trajectory (LSTM encoder step,
//!    additive-attention decoder, masked log-softmax, greedy pick) plus
//!    backprop of the summed action log-probability. The fast lane reuses
//!    one arena-backed [`Tape`] across repetitions (what training does);
//!    the scalar lane builds a fresh [`Tape::scalar_reference`] per
//!    repetition, reproducing the pre-rewrite per-op allocation behavior
//!    op for op. End-to-end this is bounded by `tanh`/`exp` (parity-pinned
//!    to libm, not vectorizable), so expect a smaller ratio than (1).
//! 3. **infer** — the same trajectory without gradients: bind-once
//!    no-grad session vs per-request rebind.
//!
//! Both trajectory lanes run the same graph, and the bench asserts their
//! losses agree **bitwise** before timing — the speedup is real, not a
//! different computation. All three measurements alternate the two lanes
//! in blocks and score each lane by its *best* block, so VM steal time
//! and frequency drift (which only ever inflate a block) cancel out of
//! the ratio.
//!
//! Usage:
//! ```text
//! nn_kernels [--endpoints 96] [--steps 48] [--iters 30] [--infer-iters 60]
//!            [--kernel-iters 2000] [--csv nn_kernels.csv]
//!            [--json BENCH_nn.json] [--min-speedup 0.0]
//!            [--min-train-speedup 0.0] [--min-infer-speedup 0.0]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::RlConfig;
use rl_ccd_bench::{write_csv, write_json, Cli, Json};
use rl_ccd_nn::kernels::{self, BufferPool, KernelMode};
use rl_ccd_nn::{
    xavier, Linear, LstmCell, NoGradTape, ParamBinding, ParamSet, Tape, TapeOps, Tensor,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Deterministic dense test tensor (no zeros, so the kernels' zero-skip
/// takes its common path).
fn filled(r: usize, c: usize, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(r, c);
    for (i, x) in t.data_mut().iter_mut().enumerate() {
        *x = (((i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed) % 997) as f32 - 498.0)
            * 0.002
            + 0.001;
    }
    t
}

/// One dense layer's forward+backward op set at a given shape: the
/// product `x·w`, then the three backward products `g·wᵀ`, `xᵀ·g`, and
/// the bias column-sum. This is exactly what [`Tape::backward`] executes
/// per `Linear`, so timing it *is* timing the layer's kernel work.
struct LayerShape {
    x: Tensor,
    w: Tensor,
    g: Tensor,
}

impl LayerShape {
    fn new(m: usize, k: usize, n: usize, seed: u64) -> Self {
        Self {
            x: filled(m, k, seed),
            w: filled(k, n, seed + 1),
            g: filled(m, n, seed + 2),
        }
    }

    /// Runs the four ops once in `mode`. Fast outputs recycle through
    /// `pool`; scalar outputs drop, matching the scalar lane's no-pool
    /// allocation story (and keeping the pool from growing without bound).
    fn pass(&self, mode: KernelMode, pool: &mut BufferPool) {
        let y = kernels::matmul(mode, pool, &self.x, &self.w);
        let gx = kernels::matmul_t(mode, pool, &self.g, &self.w);
        let gw = kernels::t_matmul(mode, pool, &self.x, &self.g);
        let gb = kernels::col_sum(mode, pool, &self.g);
        for t in [y, gx, gw, gb] {
            let t = std::hint::black_box(t);
            if mode == KernelMode::Fast {
                pool.give_tensor(t);
            }
        }
    }
}

/// The policy-shaped workload: dims from the paper config, endpoint count
/// and trajectory length from the CLI.
struct Workload {
    endpoints: usize,
    steps: usize,
    embeddings: Tensor,
    lstm: LstmCell,
    w1: Linear,
    w2: Linear,
    params: ParamSet,
}

impl Workload {
    fn build(endpoints: usize, steps: usize) -> Self {
        let cfg = RlConfig::default();
        let mut rng = StdRng::seed_from_u64(0xBE2C);
        let mut params = ParamSet::new();
        let lstm = LstmCell::init("enc", cfg.embed_dim, cfg.lstm_hidden, &mut params, &mut rng);
        let w1 = Linear::init("dec.w1", cfg.embed_dim, cfg.attn_dim, &mut params, &mut rng);
        let w2 = Linear::init(
            "dec.w2",
            cfg.lstm_hidden,
            cfg.attn_dim,
            &mut params,
            &mut rng,
        );
        params.insert("dec.v", xavier(cfg.attn_dim, 1, &mut rng));
        let mut embeddings = Tensor::zeros(endpoints, cfg.embed_dim);
        for (i, x) in embeddings.data_mut().iter_mut().enumerate() {
            *x = ((i * 37 % 113) as f32 - 56.0) * 0.02;
        }
        Self {
            endpoints,
            steps: steps.min(endpoints),
            embeddings,
            lstm,
            w1,
            w2,
            params,
        }
    }

    /// One full trajectory on `tape`: encoder + decoder per step, greedy
    /// action, running sum of the picked log-probs. Returns the loss var.
    fn trajectory<T: TapeOps>(&self, tape: &mut T, binding: &ParamBinding) -> rl_ccd_nn::Var {
        let emb = tape.leaf(self.embeddings.clone());
        let mut state = self.lstm.zero_state(tape);
        let mut valid = vec![true; self.endpoints];
        let mut last = 0u32;
        let mut loss: Option<rl_ccd_nn::Var> = None;
        for _ in 0..self.steps {
            let x = tape.gather_rows(emb, Arc::new(vec![last]));
            state = self.lstm.step(tape, binding, x, state);
            let f_proj = self.w1.forward(tape, binding, emb);
            let q_proj = self.w2.forward(tape, binding, state.h);
            let pre = tape.add_row(f_proj, q_proj);
            let act = tape.tanh(pre);
            let v = binding.var("dec.v");
            let scores = tape.matmul(act, v);
            let log_probs = tape.masked_log_softmax(scores, Arc::new(valid.clone()));
            let lp = tape.value(log_probs);
            let action = (0..self.endpoints)
                .filter(|&i| valid[i])
                .max_by(|&a, &b| lp.at(a, 0).total_cmp(&lp.at(b, 0)))
                .expect("valid endpoint");
            valid[action] = false;
            last = action as u32;
            let picked = tape.pick(log_probs, action, 0);
            loss = Some(match loss {
                Some(acc) => tape.add(acc, picked),
                None => picked,
            });
        }
        loss.expect("at least one step")
    }

    /// Forward + backward once on `tape`; returns the scalar loss.
    fn train_pass(&self, tape: &mut Tape) -> f32 {
        let binding = self.params.bind(tape);
        let loss = self.trajectory(tape, &binding);
        let grads = tape.backward(loss);
        std::hint::black_box(&grads);
        tape.value(loss).data()[0]
    }

    /// Forward only on `tape` (inference lane); returns the scalar loss.
    fn infer_pass(&self, tape: &mut NoGradTape, binding: &ParamBinding) -> f32 {
        let loss = self.trajectory(tape, binding);
        tape.value(loss).data()[0]
    }
}

fn main() -> ExitCode {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let endpoints: usize = cli.value("--endpoints", 96usize).max(1);
    let steps: usize = cli.value("--steps", 48usize).max(1);
    let iters: usize = cli.value("--iters", 30usize).max(1);
    let infer_iters: usize = cli.value("--infer-iters", 60usize).max(1);
    let kernel_iters: usize = cli.value("--kernel-iters", 2000usize).max(1);
    let min_speedup: f64 = cli.value("--min-speedup", 0.0f64);
    let min_train_speedup: f64 = cli.value("--min-train-speedup", 0.0f64);
    let min_infer_speedup: f64 = cli.value("--min-infer-speedup", 0.0f64);
    let csv = cli.csv("nn_kernels.csv");

    let w = Workload::build(endpoints, steps);
    println!(
        "policy shapes: {} endpoints × {} steps, dims embed=16 lstm=32 attn=32",
        w.endpoints, w.steps
    );

    // Kernel suite: the dense-layer forward+backward op sets the policy
    // executes, at its exact shapes — attention projection, attention
    // scores, and the two LSTM gate products.
    let suite = [
        LayerShape::new(endpoints, 16, 32, 11), // W1·F: embeddings → attention space
        LayerShape::new(endpoints, 32, 1, 22),  // tanh(…)·v: attention scores
        LayerShape::new(1, 16, 32, 33),         // x·Wx: LSTM input product
        LayerShape::new(1, 32, 32, 44),         // h·Wh: LSTM recurrent product
    ];
    // Timing discipline for noisy single-core boxes (VM steal time,
    // frequency drift): the two lanes alternate in blocks, and each
    // lane's rate comes from its *best* block — transient stalls inflate
    // a block's time, never deflate it, so min-of-blocks converges on
    // the machine's true steady-state rate for both lanes.
    const BLOCKS: usize = 10;
    let mut pool = BufferPool::new();
    for s in &suite {
        s.pass(KernelMode::Fast, &mut pool);
        s.pass(KernelMode::Scalar, &mut pool);
    }
    let reps = (kernel_iters / BLOCKS).max(1);
    let mut fast_kernel_s = f64::INFINITY;
    let mut scalar_kernel_s = f64::INFINITY;
    for _ in 0..BLOCKS {
        let t = Instant::now();
        for _ in 0..reps {
            for s in &suite {
                s.pass(KernelMode::Fast, &mut pool);
            }
        }
        fast_kernel_s = fast_kernel_s.min(t.elapsed().as_secs_f64() / reps as f64);
        let t = Instant::now();
        for _ in 0..reps {
            for s in &suite {
                s.pass(KernelMode::Scalar, &mut pool);
            }
        }
        scalar_kernel_s = scalar_kernel_s.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    let fast_kernel = 1.0 / fast_kernel_s;
    let scalar_kernel = 1.0 / scalar_kernel_s;
    let kernel_speedup = fast_kernel / scalar_kernel;
    println!(
        "kernels (fwd+bwd op sets): fast {fast_kernel:.0} passes/s, \
         scalar {scalar_kernel:.0} passes/s — {kernel_speedup:.2}×"
    );

    // Parity pin before timing: both lanes must produce the same bits.
    let fast_loss = w.train_pass(&mut Tape::new());
    let scalar_loss = w.train_pass(&mut Tape::scalar_reference());
    assert_eq!(
        fast_loss.to_bits(),
        scalar_loss.to_bits(),
        "fast and scalar lanes diverged — bench would be meaningless"
    );

    // Training lane: fast reuses one tape (reset between reps), scalar
    // rebuilds per rep — exactly the before/after allocation stories.
    // Same alternating best-of-blocks discipline as the kernel suite.
    let mut tape = Tape::new();
    w.train_pass(&mut tape); // warm the buffer pool
    tape.reset();
    let train_reps = (iters / BLOCKS).max(1);
    let mut fast_train_s = f64::INFINITY;
    let mut scalar_train_s = f64::INFINITY;
    for _ in 0..BLOCKS {
        let t = Instant::now();
        for _ in 0..train_reps {
            std::hint::black_box(w.train_pass(&mut tape));
            tape.reset();
        }
        fast_train_s = fast_train_s.min(t.elapsed().as_secs_f64() / train_reps as f64);
        let t = Instant::now();
        for _ in 0..train_reps {
            let mut scalar_tape = Tape::scalar_reference();
            std::hint::black_box(w.train_pass(&mut scalar_tape));
        }
        scalar_train_s = scalar_train_s.min(t.elapsed().as_secs_f64() / train_reps as f64);
    }

    // Inference lane: fast binds once and truncates back to the bound
    // params between requests (the serve path); scalar rebinds per request.
    let mut ng = NoGradTape::new();
    let binding = w.params.bind(&mut ng);
    let base = ng.len();
    w.infer_pass(&mut ng, &binding); // warm the pool
    ng.truncate(base);
    let infer_reps = (infer_iters / BLOCKS).max(1);
    let mut fast_infer_s = f64::INFINITY;
    let mut scalar_infer_s = f64::INFINITY;
    for _ in 0..BLOCKS {
        let t = Instant::now();
        for _ in 0..infer_reps {
            std::hint::black_box(w.infer_pass(&mut ng, &binding));
            ng.truncate(base);
        }
        fast_infer_s = fast_infer_s.min(t.elapsed().as_secs_f64() / infer_reps as f64);
        let t = Instant::now();
        for _ in 0..infer_reps {
            let mut scalar_ng = NoGradTape::scalar_reference();
            let scalar_binding = w.params.bind(&mut scalar_ng);
            std::hint::black_box(w.infer_pass(&mut scalar_ng, &scalar_binding));
        }
        scalar_infer_s = scalar_infer_s.min(t.elapsed().as_secs_f64() / infer_reps as f64);
    }

    let per_sec = |secs_per_rep: f64| w.steps as f64 / secs_per_rep;
    let fast_train = per_sec(fast_train_s);
    let scalar_train = per_sec(scalar_train_s);
    let train_speedup = fast_train / scalar_train;
    let fast_infer = per_sec(fast_infer_s);
    let scalar_infer = per_sec(scalar_infer_s);
    let infer_speedup = fast_infer / scalar_infer;

    println!(
        "train (fwd+bwd): fast {fast_train:.0} steps/s, scalar {scalar_train:.0} steps/s \
         — {train_speedup:.2}×"
    );
    println!(
        "infer (no-grad): fast {fast_infer:.0} steps/s, scalar {scalar_infer:.0} steps/s \
         — {infer_speedup:.2}×"
    );

    let rows = vec![format!(
        "{endpoints},{steps},{kernel_speedup:.3},{fast_train:.1},{scalar_train:.1},\
         {train_speedup:.3},{fast_infer:.1},{scalar_infer:.1},{infer_speedup:.3}"
    )];
    write_csv(
        &csv,
        "endpoints,steps,kernel_speedup,train_fast_sps,train_scalar_sps,train_speedup,\
         infer_fast_sps,infer_scalar_sps,infer_speedup",
        &rows,
    )
    .expect("write csv");
    println!("wrote {csv}");

    let json_path: String = cli.value("--json", "BENCH_nn.json".to_string());
    let report = Json::Obj(vec![
        Json::field("bench", Json::Str("nn_kernels".into())),
        Json::field("endpoints", Json::Num(endpoints as f64)),
        Json::field("steps", Json::Num(w.steps as f64)),
        Json::field("iters", Json::Num(iters as f64)),
        Json::field("infer_iters", Json::Num(infer_iters as f64)),
        Json::field(
            "kernels",
            Json::Obj(vec![
                Json::field("fast_passes_per_s", Json::Num(fast_kernel)),
                Json::field("scalar_passes_per_s", Json::Num(scalar_kernel)),
                Json::field("speedup", Json::Num(kernel_speedup)),
            ]),
        ),
        Json::field(
            "train",
            Json::Obj(vec![
                Json::field("fast_steps_per_s", Json::Num(fast_train)),
                Json::field("scalar_steps_per_s", Json::Num(scalar_train)),
                Json::field("speedup", Json::Num(train_speedup)),
            ]),
        ),
        Json::field(
            "infer",
            Json::Obj(vec![
                Json::field("fast_steps_per_s", Json::Num(fast_infer)),
                Json::field("scalar_steps_per_s", Json::Num(scalar_infer)),
                Json::field("speedup", Json::Num(infer_speedup)),
            ]),
        ),
    ]);
    write_json(&json_path, &report).expect("write json");
    println!("wrote {json_path}");
    if let Err(e) = cli.finish() {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    if kernel_speedup < min_speedup {
        eprintln!("kernel speedup {kernel_speedup:.2}× below required {min_speedup:.2}×");
        return ExitCode::FAILURE;
    }
    if train_speedup < min_train_speedup {
        eprintln!("train speedup {train_speedup:.2}× below required {min_train_speedup:.2}×");
        return ExitCode::FAILURE;
    }
    if infer_speedup < min_infer_speedup {
        eprintln!("infer speedup {infer_speedup:.2}× below required {min_infer_speedup:.2}×");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
