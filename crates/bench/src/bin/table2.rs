//! Regenerates **Table II**: default tool flow vs. RL-CCD over the 19-block
//! suite — WNS / TNS (goal %) / NVE / power / normalized runtime per block,
//! plus the average-gain summary row.
//!
//! Usage:
//! ```text
//! table2 [--scale 0.5] [--iters 12] [--workers 8] [--blocks 19] [--csv table2.csv]
//!        [--checkpoint DIR] [--checkpoint-every K] [--trace-out run.jsonl]
//! ```
//!
//! `--scale` multiplies the suite cell counts (1.0 ≈ paper sizes ÷ 100);
//! `--blocks` limits how many of the 19 designs run (in paper order).
//! With `--checkpoint DIR` each block trains under `DIR/<block>/` with
//! resumable state every K iterations — re-running an interrupted suite
//! picks up mid-block instead of starting over.

use rl_ccd::{RlConfig, TrainSession};
use rl_ccd_bench::{run_block_with, table2_header, table2_row, table2_summary, write_csv, Cli};
use rl_ccd_netlist::{block_suite, generate};

fn main() -> Result<(), rl_ccd::Error> {
    let cli = Cli::from_env();
    let _obs = cli.attach();
    let scale = cli.scale(0.5);
    let iters = cli.iters(12);
    let workers = cli.workers(8);
    let blocks: usize = cli.value("--blocks", 19);
    let csv = cli.csv("table2.csv");
    let checkpoint = cli.checkpoint();
    let every = cli.checkpoint_every(5);

    let config = RlConfig {
        max_iterations: iters,
        workers,
        ..RlConfig::default()
    };

    println!(
        "Table II reproduction: {blocks} blocks at scale {scale}, {iters} iterations × {workers} workers"
    );
    println!("{}", table2_header());
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for spec in block_suite(scale).into_iter().take(blocks) {
        let design = generate(&spec);
        let session = match &checkpoint {
            None => TrainSession::default(),
            Some(root) => TrainSession::checkpointed(root.join(&spec.name), every),
        };
        let (row, _) = match run_block_with(design, &config, session) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: training aborted: {e}", spec.name);
                continue;
            }
        };
        println!("{}", table2_row(&row));
        csv_rows.push(format!(
            "{},{},{},{:.3},{:.2},{},{:.2},{:.3},{:.2},{},{:.2},{:.3},{:.2},{:.2},{},{:.2},{},{:.1}",
            row.name,
            row.cells,
            row.tech,
            row.default.begin.wns_ns(),
            row.default.begin.tns_ns(),
            row.default.begin.nve,
            row.default.begin.power_mw,
            row.default.final_qor.wns_ns(),
            row.default.final_qor.tns_ns(),
            row.default.final_qor.nve,
            row.default.final_qor.power_mw,
            row.rl.final_qor.wns_ns(),
            row.rl.final_qor.tns_ns(),
            row.rl.tns_gain_over(&row.default),
            row.rl.final_qor.nve,
            row.rl.final_qor.power_mw,
            row.prioritized,
            row.runtime_ratio,
        ));
        rows.push(row);
    }
    println!("{}", "-".repeat(152));
    println!("{}", table2_summary(&rows));
    let header = "design,cells,tech,wns_begin_ns,tns_begin_ns,nve_begin,power_begin_mw,\
wns_default_ns,tns_default_ns,nve_default,power_default_mw,\
wns_rl_ns,tns_rl_ns,tns_gain_pct,nve_rl,power_rl_mw,prioritized,runtime_ratio";
    write_csv(&csv, header, &csv_rows)?;
    println!("wrote {csv}");
    cli.finish()
}
