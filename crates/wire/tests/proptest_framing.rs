//! Property tests: the framing layer under adversarial segmentation.
//!
//! A hostile (or merely congested) network may deliver a frame stream in
//! arbitrarily small pieces and accept writes in arbitrarily small
//! pieces. These properties pin that:
//!
//! 1. any short-read split of a valid frame stream decodes to exactly the
//!    frames that were written, in order;
//! 2. any short-write split produces exactly the bytes a straight write
//!    produces;
//! 3. truncating a stream at any interior byte yields `UnexpectedEof`,
//!    never a misparse;
//! 4. oversized frames are rejected with the offending size in the error
//!    message, on both the write and read side.
//!
//! Cases are generated from a seeded RNG rather than nested strategies:
//! one `u64` pins the whole case, which keeps failures reproducible under
//! the vendored proptest (no shrinking).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl_ccd_wire::{read_frame_limited, write_frame_limited, MAX_FRAME_LEN};
use std::io::{self, Read, Write};

/// A reader that yields at most a pseudorandom, seeded number of bytes per
/// call — every call a differently-sized short read.
struct ShreddingReader<'a> {
    data: &'a [u8],
    pos: usize,
    rng: StdRng,
    max_chunk: usize,
}

impl Read for ShreddingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let chunk = self.rng.gen_range(1usize..=self.max_chunk);
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that accepts at most a pseudorandom, seeded number of bytes
/// per call — every call a differently-sized short write.
struct ShreddingWriter {
    data: Vec<u8>,
    rng: StdRng,
    max_chunk: usize,
    flushes: usize,
}

impl Write for ShreddingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let chunk = self.rng.gen_range(1usize..=self.max_chunk);
        let n = chunk.min(buf.len());
        self.data.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.flushes += 1;
        Ok(())
    }
}

fn random_frames(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let count = rng.gen_range(1usize..8);
    (0..count)
        .map(|_| {
            let len = match rng.gen_range(0u32..4) {
                0 => 0,
                1 => rng.gen_range(1usize..8),
                2 => rng.gen_range(8usize..300),
                _ => rng.gen_range(300usize..5000),
            };
            (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
        })
        .collect()
}

proptest! {
    /// Short reads of any segmentation decode the stream identically.
    #[test]
    fn short_read_splits_decode_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = random_frames(&mut rng);
        let mut stream = Vec::new();
        for f in &frames {
            write_frame_limited(&mut stream, f, MAX_FRAME_LEN).unwrap();
        }
        let mut reader = ShreddingReader {
            data: &stream,
            pos: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x5eed),
            max_chunk: rng.gen_range(1usize..17),
        };
        for (i, expect) in frames.iter().enumerate() {
            let got = read_frame_limited(&mut reader, MAX_FRAME_LEN)
                .unwrap_or_else(|e| panic!("frame {i} under segmentation: {e}"));
            prop_assert_eq!(&got, expect, "frame {} differs", i);
        }
        // Stream exhausted exactly at the last frame boundary.
        prop_assert!(read_frame_limited(&mut reader, MAX_FRAME_LEN).is_err());
    }

    /// Short writes of any segmentation produce byte-identical streams.
    #[test]
    fn short_write_splits_encode_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = random_frames(&mut rng);
        let mut straight = Vec::new();
        let mut shredded = ShreddingWriter {
            data: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xdead_beef),
            max_chunk: rng.gen_range(1usize..17),
            flushes: 0,
        };
        for f in &frames {
            write_frame_limited(&mut straight, f, MAX_FRAME_LEN).unwrap();
            write_frame_limited(&mut shredded, f, MAX_FRAME_LEN).unwrap();
        }
        prop_assert_eq!(&shredded.data, &straight);
        prop_assert_eq!(shredded.flushes, frames.len(), "one flush per frame");
    }

    /// Truncating a valid stream at any interior byte is an
    /// `UnexpectedEof`, never a misparse into a different frame.
    #[test]
    fn truncation_is_always_unexpected_eof(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = random_frames(&mut rng);
        let mut stream = Vec::new();
        for f in &frames {
            write_frame_limited(&mut stream, f, MAX_FRAME_LEN).unwrap();
        }
        let cut = rng.gen_range(0..stream.len());
        let truncated = &stream[..cut];
        let mut r = truncated;
        let mut decoded = 0usize;
        let err = loop {
            match read_frame_limited(&mut r, MAX_FRAME_LEN) {
                Ok(frame) => {
                    prop_assert_eq!(&frame, &frames[decoded], "prefix frames intact");
                    decoded += 1;
                }
                Err(e) => break e,
            }
        };
        prop_assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        prop_assert!(decoded < frames.len(), "a cut stream cannot decode fully");
    }

    /// Oversized frames are rejected with the offending size in the error
    /// message, on both sides, under any cap.
    #[test]
    fn oversized_frames_report_their_size(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cap = rng.gen_range(1usize..4096);
        let over = cap + rng.gen_range(1usize..1000);
        // Write side: payload over the cap.
        let payload = vec![0xA5u8; over];
        let mut sink = Vec::new();
        let err = write_frame_limited(&mut sink, &payload, cap).unwrap_err();
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let msg = err.to_string();
        prop_assert!(msg.contains(&over.to_string()), "write error names the size: {}", msg);
        prop_assert!(msg.contains(&cap.to_string()), "write error names the cap: {}", msg);
        prop_assert!(sink.is_empty(), "nothing emitted for a rejected frame");
        // Read side: forged length prefix over the cap.
        let forged = (over as u32).to_be_bytes();
        let err = read_frame_limited(&mut &forged[..], cap).unwrap_err();
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        prop_assert!(msg.contains(&over.to_string()), "read error names the size: {}", msg);
        prop_assert!(msg.contains(&cap.to_string()), "read error names the cap: {}", msg);
    }
}
