//! A hashed timer wheel for reactor loops: per-connection deadlines,
//! write-stall eviction timers, and [`RetryPolicy`] backoff timers, all
//! under one `O(1)`-schedule / `O(slots)`-scan structure that converts
//! into a single `epoll_wait` timeout.
//!
//! Timers hash into `SLOTS` buckets by deadline tick (tick granularity is
//! chosen at construction; 1 ms suits socket timeouts). Cancellation is
//! lazy — a cancelled id is dropped from the live set and skipped at
//! expiry — so [`TimerWheel::cancel`] never searches a bucket. Expiry
//! order is deterministic: fired timers come out sorted by (deadline
//! tick, schedule order), so two timers on the same tick fire in the
//! order they were scheduled.
//!
//! [`RetryPolicy`]: crate::RetryPolicy

use std::collections::HashSet;
use std::time::{Duration, Instant};

const SLOTS: usize = 256;

/// Handle to one scheduled timer, for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Clone, Copy, Debug)]
struct Entry {
    id: u64,
    tick: u64,
    key: u64,
}

/// The wheel. Single-threaded by design: it lives inside a reactor loop.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick: Duration,
    base: Instant,
    /// First tick not yet swept by [`TimerWheel::poll_expired`].
    cursor: u64,
    /// Ids scheduled and neither fired nor cancelled.
    live: HashSet<u64>,
    next_id: u64,
}

impl TimerWheel {
    /// A wheel with `tick` granularity (timers fire no finer than this;
    /// sub-tick deadlines round up so they never fire early).
    #[must_use]
    pub fn new(tick: Duration) -> Self {
        TimerWheel {
            slots: vec![Vec::new(); SLOTS],
            tick: tick.max(Duration::from_micros(100)),
            base: Instant::now(),
            cursor: 0,
            live: HashSet::new(),
            next_id: 0,
        }
    }

    /// A wheel with 1 ms ticks — the right scale for socket deadlines.
    #[must_use]
    pub fn with_ms_ticks() -> Self {
        Self::new(Duration::from_millis(1))
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.base);
        // Round up: a timer never fires before its deadline.
        let ticks = elapsed.as_nanos().div_ceil(self.tick.as_nanos().max(1));
        (ticks as u64).max(self.cursor)
    }

    /// Schedules `key` to fire at `deadline` and returns the handle.
    /// `key` is caller vocabulary (a connection token, an encoded
    /// (worker, kind) pair) and is handed back verbatim on expiry.
    pub fn schedule(&mut self, deadline: Instant, key: u64) -> TimerId {
        let tick = self.tick_of(deadline);
        self.next_id += 1;
        let id = self.next_id;
        self.live.insert(id);
        self.slots[(tick % SLOTS as u64) as usize].push(Entry { id, tick, key });
        TimerId(id)
    }

    /// Schedules `key` to fire `after` from now.
    pub fn schedule_after(&mut self, after: Duration, key: u64) -> TimerId {
        self.schedule(Instant::now() + after, key)
    }

    /// Cancels a timer. Returns false when it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.live.remove(&id.0)
    }

    /// Timers scheduled and not yet fired or cancelled.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The earliest live deadline, for the poll timeout. `None` when the
    /// wheel is empty (poll may block indefinitely).
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.live.is_empty() {
            return None;
        }
        let earliest = self
            .slots
            .iter()
            .flatten()
            .filter(|e| self.live.contains(&e.id))
            .map(|e| e.tick)
            .min()?;
        let nanos = (self.tick.as_nanos() as u64).saturating_mul(earliest);
        Some(self.base + Duration::from_nanos(nanos))
    }

    /// How long until the earliest live deadline (zero when overdue);
    /// `None` when the wheel is empty.
    #[must_use]
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        self.next_deadline()
            .map(|d| d.saturating_duration_since(now))
    }

    /// Appends the keys of every timer due at `now` to `fired`, in
    /// deterministic (deadline tick, schedule order) order, and retires
    /// them. Cancelled entries are purged silently.
    pub fn poll_expired(&mut self, now: Instant, fired: &mut Vec<u64>) {
        let now_tick = {
            let elapsed = now.saturating_duration_since(self.base);
            (elapsed.as_nanos() / self.tick.as_nanos().max(1)) as u64
        };
        if now_tick < self.cursor {
            return;
        }
        let mut due: Vec<Entry> = Vec::new();
        // Sweep each slot between the cursor and now once (a full lap
        // caps the work when the loop slept a long time).
        let sweep = (now_tick - self.cursor + 1).min(SLOTS as u64);
        for slot_tick in self.cursor..self.cursor + sweep {
            let slot = &mut self.slots[(slot_tick % SLOTS as u64) as usize];
            let mut keep = Vec::new();
            for entry in slot.drain(..) {
                if !self.live.contains(&entry.id) {
                    continue; // lazily-cancelled
                }
                if entry.tick <= now_tick {
                    due.push(entry);
                } else {
                    keep.push(entry); // a later lap of the wheel
                }
            }
            *slot = keep;
        }
        self.cursor = now_tick + 1;
        due.sort_by_key(|e| (e.tick, e.id));
        for entry in due {
            self.live.remove(&entry.id);
            fired.push(entry.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_across_slots_and_laps() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        // Deliberately schedule out of order, including two ticks that
        // hash to the same slot one lap apart (1 and 1+256 ms).
        wheel.schedule(start + Duration::from_millis(257), 40);
        wheel.schedule(start + Duration::from_millis(1), 10);
        wheel.schedule(start + Duration::from_millis(90), 30);
        wheel.schedule(start + Duration::from_millis(5), 20);
        let mut fired = Vec::new();
        wheel.poll_expired(start + Duration::from_millis(400), &mut fired);
        assert_eq!(fired, vec![10, 20, 30, 40]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn same_tick_fires_in_schedule_order() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let at = Instant::now() + Duration::from_millis(3);
        wheel.schedule(at, 1);
        wheel.schedule(at, 2);
        wheel.schedule(at, 3);
        let mut fired = Vec::new();
        wheel.poll_expired(at + Duration::from_millis(1), &mut fired);
        assert_eq!(fired, vec![1, 2, 3]);
    }

    #[test]
    fn cancellation_is_honored_and_idempotent() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        let keep = wheel.schedule(start + Duration::from_millis(2), 1);
        let gone = wheel.schedule(start + Duration::from_millis(2), 2);
        assert_eq!(wheel.len(), 2);
        assert!(wheel.cancel(gone));
        assert!(!wheel.cancel(gone), "second cancel is a no-op");
        assert_eq!(wheel.len(), 1);
        let mut fired = Vec::new();
        wheel.poll_expired(start + Duration::from_millis(10), &mut fired);
        assert_eq!(fired, vec![1]);
        assert!(!wheel.cancel(keep), "fired timers cannot be cancelled");
    }

    #[test]
    fn never_fires_early_and_reports_next_deadline() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let start = Instant::now();
        wheel.schedule(start + Duration::from_millis(50), 9);
        let mut fired = Vec::new();
        wheel.poll_expired(start + Duration::from_millis(10), &mut fired);
        assert!(fired.is_empty(), "48ms early must not fire");
        let next = wheel.next_deadline().expect("one timer live");
        assert!(next >= start + Duration::from_millis(50));
        let timeout = wheel.next_timeout(start).expect("one timer live");
        assert!(timeout >= Duration::from_millis(49));
        wheel.poll_expired(start + Duration::from_millis(51), &mut fired);
        assert_eq!(fired, vec![9]);
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn overdue_deadlines_fire_immediately_with_zero_timeout() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let past = Instant::now() - Duration::from_millis(20);
        wheel.schedule(past, 5);
        let now = Instant::now();
        assert_eq!(wheel.next_timeout(now), Some(Duration::ZERO));
        let mut fired = Vec::new();
        wheel.poll_expired(now, &mut fired);
        assert_eq!(fired, vec![5]);
    }
}
