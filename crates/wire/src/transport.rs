//! The unified [`Transport`] API: one place where chaos wrapping, retry
//! reconnects, and deadline arming happen, instead of three hand-rolled
//! stream stacks (`serve::client`, `dist::coordinator`, `dist::worker`).
//!
//! Two implementations stand behind the trait:
//!
//! * **Blocking**: [`FramedTcp`], a [`ChaosTransport`]-wrapped
//!   `TcpStream` dialed from an [`Endpoint`] (resolved addresses + chaos
//!   addressing). [`FramedTcp::reconnect`] dials a fresh socket and
//!   resumes the old connection's frame numbering, so [`NetFaultPlan`]
//!   coordinates stay stable across retries. Accepted (server-side)
//!   sockets get the same wrapping through [`FramedListener`], which
//!   assigns each accepted connection a sequential chaos connection id —
//!   that is what lets a fault plan cover a worker's accept path.
//! * **Reactor**: [`FramedConn`] (see [`frames`]), the non-blocking
//!   state-machine counterpart driven by a [`reactor::Poller`]. It speaks
//!   the identical frames; the loop owns readiness and deadlines (via the
//!   [`timer`] wheel) instead of socket timeouts.
//!
//! [`frames`]: crate::frames
//! [`timer`]: crate::timer
//! [`reactor::Poller`]: crate::reactor::Poller
//! [`FramedConn`]: crate::FramedConn

use crate::{ChaosTransport, DeadlineBudget, NetFault, NetFaultPlan};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A blocking framed byte pipe with deadline arming: the least interface
/// a protocol client needs, implemented identically for plain and
/// chaos-wrapped connections.
pub trait Transport {
    /// Writes one length-prefixed frame under `max_len`.
    ///
    /// # Errors
    /// `InvalidInput` for an oversized payload; transport errors
    /// (including injected chaos faults).
    fn write_frame_limited(&mut self, payload: &[u8], max_len: usize) -> io::Result<()>;

    /// Reads one length-prefixed frame under `max_len`.
    ///
    /// # Errors
    /// `InvalidData` for an oversized prefix; transport errors
    /// (including injected chaos faults).
    fn read_frame_limited(&mut self, max_len: usize) -> io::Result<Vec<u8>>;

    /// Sets the read and write timeouts bounding every subsequent
    /// blocking frame operation (`None` = block indefinitely).
    ///
    /// # Errors
    /// The socket's timeout-setting failure.
    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Arms the transport with a deadline budget: timeouts are clamped to
    /// the budget's remaining time, with `fallback` as the cap when the
    /// budget is unbounded.
    ///
    /// # Errors
    /// `TimedOut` when the budget is already spent; otherwise the
    /// timeout-setting failure.
    fn arm(&self, budget: &DeadlineBudget, fallback: Option<Duration>) -> io::Result<()> {
        self.set_io_timeout(budget.timeout_with(fallback)?)
    }
}

/// Where a client dials and how chaos addresses the connection — the
/// reusable part of a connection, kept across reconnects.
#[derive(Clone, Debug, Default)]
pub struct Endpoint {
    addrs: Vec<SocketAddr>,
    chaos: Option<(Arc<NetFaultPlan>, u64)>,
}

impl Endpoint {
    /// Resolves `addr` once; every (re)connect tries the resolved
    /// addresses in order.
    ///
    /// # Errors
    /// Resolution failures, or `InvalidInput` when nothing resolves.
    pub fn resolve(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ));
        }
        Ok(Endpoint { addrs, chaos: None })
    }

    /// Addresses chaos injections at this endpoint's connections as
    /// connection `conn` of `plan`.
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<NetFaultPlan>, conn: u64) -> Self {
        self.chaos = Some((plan, conn));
        self
    }

    /// The resolved addresses.
    #[must_use]
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The chaos addressing, if any.
    #[must_use]
    pub fn chaos(&self) -> Option<(&Arc<NetFaultPlan>, u64)> {
        self.chaos.as_ref().map(|(p, c)| (p, *c))
    }

    /// Dials the first reachable address (nodelay set), wrapped per this
    /// endpoint's chaos addressing. `timeout` bounds each connect attempt.
    ///
    /// # Errors
    /// The last address's connection failure.
    pub fn connect(&self, timeout: Option<Duration>) -> io::Result<FramedTcp> {
        let stream = connect_any(&self.addrs, timeout)?;
        Ok(FramedTcp {
            inner: wrap(stream, &self.chaos),
            endpoint: self.clone(),
        })
    }
}

fn wrap(stream: TcpStream, chaos: &Option<(Arc<NetFaultPlan>, u64)>) -> ChaosTransport<TcpStream> {
    let t = ChaosTransport::new(stream);
    match chaos {
        Some((plan, conn)) => t.with_plan(Arc::clone(plan), *conn),
        None => t,
    }
}

/// Connects to the first reachable address, with nodelay set.
///
/// # Errors
/// The last address's failure, or `InvalidInput` when `addrs` is empty.
pub fn connect_any(addrs: &[SocketAddr], timeout: Option<Duration>) -> io::Result<TcpStream> {
    let mut last_err = None;
    for addr in addrs {
        let attempt = match timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to connect to")))
}

/// The blocking transport: a chaos-wrapped framed `TcpStream` that knows
/// how to replace itself on reconnect without losing chaos coordinates.
#[derive(Debug)]
pub struct FramedTcp {
    inner: ChaosTransport<TcpStream>,
    endpoint: Endpoint,
}

impl FramedTcp {
    /// Wraps an accepted (server-side) stream. `chaos` addresses the
    /// connection in a server-side fault plan; `None` is a plain wire.
    pub fn from_accepted(stream: TcpStream, chaos: Option<(Arc<NetFaultPlan>, u64)>) -> Self {
        stream.set_nodelay(true).ok();
        let endpoint = Endpoint {
            addrs: Vec::new(),
            chaos: chaos.clone(),
        };
        FramedTcp {
            inner: wrap(stream, &chaos),
            endpoint,
        }
    }

    /// Dials a fresh connection to the endpoint and resumes this
    /// connection's frame numbering, so plan coordinates stay stable.
    ///
    /// # Errors
    /// Connection failures, or `Unsupported` for an accepted transport
    /// (there is nothing to dial back to).
    pub fn reconnect(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        if self.endpoint.addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "an accepted connection cannot reconnect",
            ));
        }
        let stream = connect_any(&self.endpoint.addrs, timeout)?;
        let frame = self.inner.frame_index();
        self.inner = wrap(stream, &self.endpoint.chaos).resume_at(frame);
        Ok(())
    }

    /// Re-addresses chaos on the live connection (keeps the socket and
    /// the frame counter). Supports the legacy builder methods that
    /// attach a plan after connecting.
    pub fn rewire_chaos(&mut self, plan: Arc<NetFaultPlan>, conn: u64) {
        self.inner.set_plan(Arc::clone(&plan), conn);
        self.endpoint.chaos = Some((plan, conn));
    }

    /// The endpoint this transport dials.
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Queues a one-shot fault ahead of any plan schedule.
    pub fn inject_once(&mut self, fault: NetFault) {
        self.inner.inject_once(fault);
    }

    /// The frame index the next frame operation will carry.
    #[must_use]
    pub fn frame_index(&self) -> u64 {
        self.inner.frame_index()
    }

    /// The underlying socket.
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        self.inner.get_ref()
    }
}

impl Transport for FramedTcp {
    fn write_frame_limited(&mut self, payload: &[u8], max_len: usize) -> io::Result<()> {
        self.inner.write_frame_limited(payload, max_len)
    }

    fn read_frame_limited(&mut self, max_len: usize) -> io::Result<Vec<u8>> {
        self.inner.read_frame_limited(max_len)
    }

    fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.inner.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }
}

/// One blocking request/response exchange: arm the deadline, send, read.
///
/// # Errors
/// Whatever arming, the write, or the read reports.
pub fn roundtrip<T: Transport + ?Sized>(
    transport: &mut T,
    payload: &[u8],
    max_len: usize,
    budget: &DeadlineBudget,
    fallback: Option<Duration>,
) -> io::Result<Vec<u8>> {
    transport.arm(budget, fallback)?;
    transport.write_frame_limited(payload, max_len)?;
    transport.read_frame_limited(max_len)
}

/// A listener whose accepted connections come back as [`FramedTcp`] with
/// server-side chaos addressing: connection ids are assigned
/// sequentially from `base_conn`, so a [`NetFaultPlan`] can target "the
/// second connection this worker accepts" deterministically.
#[derive(Debug)]
pub struct FramedListener {
    inner: TcpListener,
    chaos: Option<Arc<NetFaultPlan>>,
    base_conn: u64,
    accepted: u64,
}

impl FramedListener {
    /// Wraps a bound listener with no chaos attached.
    pub fn new(listener: TcpListener) -> Self {
        FramedListener {
            inner: listener,
            chaos: None,
            base_conn: 0,
            accepted: 0,
        }
    }

    /// Applies `plan` to every accepted connection, numbering them
    /// `base_conn`, `base_conn + 1`, … in accept order.
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<NetFaultPlan>, base_conn: u64) -> Self {
        self.chaos = Some(plan);
        self.base_conn = base_conn;
        self
    }

    /// Accepts one connection, wrapped per the chaos plan.
    ///
    /// # Errors
    /// The underlying accept failure (including `WouldBlock` on a
    /// non-blocking listener).
    pub fn accept(&mut self) -> io::Result<(FramedTcp, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        let chaos = self
            .chaos
            .as_ref()
            .map(|plan| (Arc::clone(plan), self.base_conn + self.accepted));
        self.accepted += 1;
        Ok((FramedTcp::from_accepted(stream, chaos), peer))
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// The wrapped listener (for registration with a poller).
    #[must_use]
    pub fn get_ref(&self) -> &TcpListener {
        &self.inner
    }

    /// The bound address.
    ///
    /// # Errors
    /// The underlying `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MAX_FRAME_LEN;

    fn echo_once(listener: TcpListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::from_accepted(stream, None);
            let frame = t.read_frame_limited(MAX_FRAME_LEN).unwrap();
            t.write_frame_limited(&frame, MAX_FRAME_LEN).unwrap();
        })
    }

    #[test]
    fn endpoint_dials_and_roundtrips_through_the_trait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = echo_once(listener);
        let mut t = Endpoint::resolve(addr).unwrap().connect(None).unwrap();
        let reply = roundtrip(
            &mut t,
            b"ping",
            MAX_FRAME_LEN,
            &DeadlineBudget::from_ms(5_000),
            None,
        )
        .unwrap();
        assert_eq!(reply, b"ping");
        server.join().unwrap();
    }

    #[test]
    fn reconnect_resumes_frame_numbering_for_chaos_coordinates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Plan: reset the client's frame 1 (its second op), then delay
        // frame 2 — which must still fire on the reconnected socket.
        let plan = Arc::new(NetFaultPlan::none().with_reset(4, 1).with_delay(4, 2, 1));
        let server = std::thread::spawn(move || {
            // First connection: one frame arrives, then the client's
            // injected reset kills its second op client-side.
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::from_accepted(stream, None);
            assert_eq!(t.read_frame_limited(MAX_FRAME_LEN).unwrap(), b"one");
            // Second connection: the resumed transport's frame 2.
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::from_accepted(stream, None);
            assert_eq!(t.read_frame_limited(MAX_FRAME_LEN).unwrap(), b"two");
        });
        let mut t = Endpoint::resolve(addr)
            .unwrap()
            .with_chaos(Arc::clone(&plan), 4)
            .connect(None)
            .unwrap();
        t.write_frame_limited(b"one", MAX_FRAME_LEN).unwrap();
        let err = t.write_frame_limited(b"never", MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        t.reconnect(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(t.frame_index(), 2, "frame numbering resumed");
        t.write_frame_limited(b"two", MAX_FRAME_LEN).unwrap();
        assert_eq!(plan.fired(), 2, "reset and delay both hit");
        server.join().unwrap();
    }

    #[test]
    fn accepted_transports_cannot_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _c = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = FramedTcp::from_accepted(stream, None);
        let err = t.reconnect(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        client.join().unwrap();
    }

    #[test]
    fn framed_listener_numbers_accepted_connections_for_the_plan() {
        // Fault the *second* accepted connection's first read.
        let plan = Arc::new(NetFaultPlan::none().with_reset(11, 0));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut flistener = FramedListener::new(listener).with_chaos(Arc::clone(&plan), 10);
        let client = std::thread::spawn(move || {
            let mut a = Endpoint::resolve(addr).unwrap().connect(None).unwrap();
            a.write_frame_limited(b"first conn", MAX_FRAME_LEN).unwrap();
            let mut b = Endpoint::resolve(addr).unwrap().connect(None).unwrap();
            b.write_frame_limited(b"second conn", MAX_FRAME_LEN)
                .unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut first, _) = flistener.accept().unwrap();
        assert_eq!(
            first.read_frame_limited(MAX_FRAME_LEN).unwrap(),
            b"first conn",
            "conn 10 is untouched by the plan"
        );
        let (mut second, _) = flistener.accept().unwrap();
        let err = second.read_frame_limited(MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(flistener.accepted(), 2);
        assert_eq!(plan.fired(), 1);
        client.join().unwrap();
    }
}
