//! Deadline budgets: a remaining-time budget that a request carries across
//! hops and that converts into socket read/write timeouts at each blocking
//! boundary.
//!
//! A [`DeadlineBudget`] is created once at the edge (CLI flag, request
//! field) and consulted before every blocking operation: [`arm`] clamps
//! the socket's read **and** write timeouts to the time left, and
//! [`remaining_ms`] re-encodes the shrunken budget for the next hop. An
//! exhausted budget fails fast with `TimedOut` instead of issuing a
//! blocking call that can no longer finish in time.
//!
//! [`arm`]: DeadlineBudget::arm
//! [`remaining_ms`]: DeadlineBudget::remaining_ms

use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Floor for armed socket timeouts: `set_read_timeout(Some(0))` is an
/// error, and sub-millisecond timeouts are scheduler noise.
const MIN_TIMEOUT: Duration = Duration::from_millis(1);

/// A remaining-time budget, or unbounded when the caller set no deadline.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBudget {
    deadline: Option<Instant>,
}

impl DeadlineBudget {
    /// No deadline: every blocking call may take as long as it takes.
    #[must_use]
    pub fn unbounded() -> Self {
        DeadlineBudget { deadline: None }
    }

    /// A budget of `timeout` from now; `None` is unbounded.
    #[must_use]
    pub fn new(timeout: Option<Duration>) -> Self {
        DeadlineBudget {
            deadline: timeout.map(|t| Instant::now() + t),
        }
    }

    /// A budget of `ms` milliseconds from now.
    #[must_use]
    pub fn from_ms(ms: u64) -> Self {
        Self::new(Some(Duration::from_millis(ms)))
    }

    /// True when the budget exists and is spent.
    #[must_use]
    pub fn expired(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// Time left: `Ok(None)` when unbounded, `Err(TimedOut)` when spent.
    ///
    /// # Errors
    /// `TimedOut` when the budget is exhausted.
    pub fn remaining(&self) -> io::Result<Option<Duration>> {
        match self.deadline {
            None => Ok(None),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "deadline budget exhausted",
                    ))
                } else {
                    Ok(Some((d - now).max(MIN_TIMEOUT)))
                }
            }
        }
    }

    /// Milliseconds left (rounded up, at least 1) for re-encoding the
    /// budget onto the next hop; `Ok(None)` when unbounded.
    ///
    /// # Errors
    /// `TimedOut` when the budget is exhausted.
    pub fn remaining_ms(&self) -> io::Result<Option<u64>> {
        Ok(self.remaining()?.map(|d| {
            (d.as_millis() as u64)
                .saturating_add(u64::from(d.subsec_nanos() % 1_000_000 != 0))
                .max(1)
        }))
    }

    /// The socket timeout this budget implies: the time left clamped by
    /// `fallback`, or `fallback` alone when unbounded (`None` = leave the
    /// socket blocking). This is the single clamping rule every
    /// transport's deadline arming shares.
    ///
    /// # Errors
    /// `TimedOut` when the budget is exhausted.
    pub fn timeout_with(&self, fallback: Option<Duration>) -> io::Result<Option<Duration>> {
        Ok(match self.remaining()? {
            Some(left) => Some(match fallback {
                Some(f) => left.min(f).max(MIN_TIMEOUT),
                None => left,
            }),
            None => fallback,
        })
    }

    /// Clamps the socket's read and write timeouts to the time left, so no
    /// blocking call on `stream` can outlive the budget. Unbounded budgets
    /// apply `fallback` instead (pass `None` to leave the socket blocking).
    ///
    /// # Errors
    /// `TimedOut` when the budget is exhausted; otherwise any socket
    /// error from setting the timeouts.
    pub fn arm(&self, stream: &TcpStream, fallback: Option<Duration>) -> io::Result<()> {
        let timeout = self.timeout_with(fallback)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_never_expires() {
        let b = DeadlineBudget::unbounded();
        assert!(!b.expired());
        assert_eq!(b.remaining().unwrap(), None);
        assert_eq!(b.remaining_ms().unwrap(), None);
    }

    #[test]
    fn budget_counts_down_and_expires() {
        let b = DeadlineBudget::from_ms(50);
        let left = b.remaining().unwrap().expect("bounded");
        assert!(left <= Duration::from_millis(50));
        let ms = b.remaining_ms().unwrap().expect("bounded");
        assert!((1..=50).contains(&ms), "{ms}");
        let spent = DeadlineBudget::new(Some(Duration::ZERO));
        assert!(spent.expired());
        assert_eq!(
            spent.remaining().unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
        assert_eq!(
            spent.remaining_ms().unwrap_err().kind(),
            io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn arm_clamps_socket_timeouts_to_the_budget() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        DeadlineBudget::from_ms(40)
            .arm(&stream, Some(Duration::from_secs(10)))
            .unwrap();
        let rt = stream.read_timeout().unwrap().expect("read timeout set");
        assert!(rt <= Duration::from_millis(40) && rt >= MIN_TIMEOUT);
        let wt = stream.write_timeout().unwrap().expect("write timeout set");
        assert!(wt <= Duration::from_millis(40));
        // Unbounded budget falls back to the caller's default (the kernel
        // may round the stored timeout to its own clock granularity).
        DeadlineBudget::unbounded()
            .arm(&stream, Some(Duration::from_millis(7)))
            .unwrap();
        let rt = stream.read_timeout().unwrap().expect("fallback set");
        assert!(
            rt >= Duration::from_millis(7) && rt <= Duration::from_millis(10),
            "{rt:?}"
        );
        // Spent budget refuses to arm at all.
        assert!(DeadlineBudget::from_ms(0).arm(&stream, None).is_err());
    }
}
