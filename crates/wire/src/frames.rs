//! The non-blocking framed-stream state machine: incremental decode and
//! buffered write of the same 4-byte-big-endian-length frames the
//! blocking [`read_frame_limited`]/[`write_frame_limited`] speak, for
//! connections driven by the readiness [`reactor`].
//!
//! [`RecvBuf`] accumulates whatever bytes the kernel has — one byte of a
//! header or a dozen pipelined frames — and yields complete frames;
//! [`SendBuf`] queues encoded frames and flushes as much as the socket
//! accepts. Neither ever blocks: `WouldBlock` is a normal return, and the
//! caller re-arms interest with the poller. [`FramedConn`] bundles both
//! around a non-blocking `TcpStream` as the per-connection unit every
//! reactor loop in the workspace uses.
//!
//! Memory is bounded by construction: a frame beyond the cap is rejected
//! from its header alone (the payload is never buffered), and a fill
//! stops once [`RecvBuf`] holds a cap's worth of unparsed bytes — with a
//! level-triggered poller the remainder re-announces itself on the next
//! poll, so a pipelining peer cannot balloon the buffer.
//!
//! [`reactor`]: crate::reactor
//! [`read_frame_limited`]: crate::read_frame_limited
//! [`write_frame_limited`]: crate::write_frame_limited

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Incremental frame decoder.
#[derive(Debug)]
pub struct RecvBuf {
    buf: VecDeque<u8>,
    max_len: usize,
    eof: bool,
}

impl RecvBuf {
    /// A decoder enforcing `max_len` as the payload cap.
    #[must_use]
    pub fn new(max_len: usize) -> Self {
        RecvBuf {
            buf: VecDeque::new(),
            max_len,
            eof: false,
        }
    }

    /// Reads from `r` until it would block, hits EOF, errors, or this
    /// buffer holds a full cap's worth of unparsed bytes. Returns the
    /// number of bytes consumed this call.
    ///
    /// `WouldBlock` is absorbed (it is the normal end of a readiness
    /// burst); real errors propagate. After EOF, [`RecvBuf::is_eof`]
    /// turns true once buffered frames are drained by `pop_frame`.
    ///
    /// # Errors
    /// Transport errors other than `WouldBlock`/`Interrupted`.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        let mut total = 0;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Never buffer more than one cap's worth of unparsed bytes:
            // bound each read by the room left, so a pipelining peer that
            // lands in one giant readiness burst still cannot balloon us.
            let room = self
                .max_len
                .saturating_add(4)
                .saturating_sub(self.buf.len());
            if room == 0 {
                break;
            }
            let want = room.min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Pops the next complete frame, or `Ok(None)` while one is still
    /// partially buffered.
    ///
    /// # Errors
    /// `InvalidData` when the buffered length prefix exceeds the cap
    /// (the connection is unrecoverable: framing is lost);
    /// `UnexpectedEof` when the peer closed mid-frame.
    pub fn pop_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return self.incomplete();
        }
        let mut header = [0u8; 4];
        for (i, b) in self.buf.iter().take(4).enumerate() {
            header[i] = *b;
        }
        let len = u32::from_be_bytes(header) as usize;
        if len > self.max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {}-byte cap", self.max_len),
            ));
        }
        if self.buf.len() < 4 + len {
            return self.incomplete();
        }
        self.buf.drain(..4);
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        Ok(Some(payload))
    }

    fn incomplete(&self) -> io::Result<Option<Vec<u8>>> {
        if self.eof && !self.buf.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed mid-frame",
            ));
        }
        Ok(None)
    }

    /// Unparsed bytes currently buffered.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// True once the peer has closed and every buffered frame was popped.
    #[must_use]
    pub fn is_eof(&self) -> bool {
        self.eof && self.buf.is_empty()
    }
}

/// Buffered frame writer.
#[derive(Debug, Default)]
pub struct SendBuf {
    buf: VecDeque<u8>,
}

impl SendBuf {
    /// An empty write queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one frame (length prefix + payload) for flushing.
    ///
    /// # Errors
    /// `InvalidInput` when the payload exceeds `max_len`.
    pub fn push_frame(&mut self, payload: &[u8], max_len: usize) -> io::Result<()> {
        if payload.len() > max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds the {max_len}-byte cap",
                    payload.len()
                ),
            ));
        }
        self.buf.extend((payload.len() as u32).to_be_bytes());
        self.buf.extend(payload.iter().copied());
        Ok(())
    }

    /// Writes as much queued data as `w` accepts. Returns true when the
    /// queue is fully drained; false means the socket pushed back
    /// (`WouldBlock`) and the caller should arm write interest.
    ///
    /// # Errors
    /// Transport errors other than `WouldBlock`/`Interrupted`.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while !self.buf.is_empty() {
            let (front, _) = self.buf.as_slices();
            match w.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Bytes still queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// True when a flush is still owed.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// One reactor-driven connection: a non-blocking `TcpStream` plus its
/// receive and send state machines. This is the reactor-side counterpart
/// of the blocking [`FramedTcp`] transport.
///
/// [`FramedTcp`]: crate::FramedTcp
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    recv: RecvBuf,
    send: SendBuf,
    max_len: usize,
}

impl FramedConn {
    /// Wraps `stream` (switched to non-blocking, nodelay) with `max_len`
    /// as the frame cap in both directions.
    ///
    /// # Errors
    /// The `set_nonblocking` failure.
    pub fn new(stream: TcpStream, max_len: usize) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(FramedConn {
            stream,
            recv: RecvBuf::new(max_len),
            send: SendBuf::new(),
            max_len,
        })
    }

    /// Handles a readable event: pulls whatever the kernel has into the
    /// receive buffer. Returns bytes consumed (0 is normal: spurious
    /// wakeup or EOF).
    ///
    /// # Errors
    /// Fatal transport errors; the caller drops the connection.
    pub fn on_readable(&mut self) -> io::Result<usize> {
        self.recv.fill_from(&mut self.stream)
    }

    /// Pops the next complete inbound frame.
    ///
    /// # Errors
    /// See [`RecvBuf::pop_frame`].
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.recv.pop_frame()
    }

    /// Queues an outbound frame and immediately flushes what fits.
    /// Returns true when the queue drained; false means write interest
    /// should be armed.
    ///
    /// # Errors
    /// `InvalidInput` for an oversized payload; fatal transport errors.
    pub fn send_frame(&mut self, payload: &[u8]) -> io::Result<bool> {
        self.send.push_frame(payload, self.max_len)?;
        self.flush()
    }

    /// Flushes queued bytes; true when fully drained.
    ///
    /// # Errors
    /// Fatal transport errors.
    pub fn flush(&mut self) -> io::Result<bool> {
        self.send.flush_to(&mut self.stream)
    }

    /// True when a flush is still owed (arm write interest).
    #[must_use]
    pub fn wants_write(&self) -> bool {
        self.send.wants_write()
    }

    /// Bytes waiting in the send queue.
    #[must_use]
    pub fn send_pending(&self) -> usize {
        self.send.pending()
    }

    /// True once the peer has closed and all inbound frames were popped.
    #[must_use]
    pub fn is_eof(&self) -> bool {
        self.recv.is_eof()
    }

    /// The underlying socket (e.g. to register with a poller).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields its script one bounded chunk at a time, with
    /// `WouldBlock` between chunks — adversarial segmentation.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        seg: usize,
        blocked: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "trickle"));
            }
            self.blocked = false;
            let n = (self.data.len() - self.pos).min(self.seg).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn reassembles_frames_from_single_byte_segments() {
        let mut wire_bytes = Vec::new();
        crate::write_frame(&mut wire_bytes, b"alpha").unwrap();
        crate::write_frame(&mut wire_bytes, b"").unwrap();
        crate::write_frame(&mut wire_bytes, &[7u8; 300]).unwrap();
        let total = wire_bytes.len();
        let mut src = Trickle {
            data: wire_bytes,
            pos: 0,
            seg: 1,
            blocked: false,
        };
        let mut recv = RecvBuf::new(crate::MAX_FRAME_LEN);
        let mut frames = Vec::new();
        let mut fed = 0;
        while fed < total {
            fed += recv.fill_from(&mut src).unwrap();
            while let Some(frame) = recv.pop_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"alpha");
        assert_eq!(frames[1], b"");
        assert_eq!(frames[2], vec![7u8; 300]);
    }

    #[test]
    fn oversized_prefix_is_rejected_from_the_header_alone() {
        let mut recv = RecvBuf::new(64);
        let forged = 65u32.to_be_bytes();
        recv.fill_from(&mut &forged[..]).unwrap();
        let err = recv.pop_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof_but_clean_eof_is_quiet() {
        let mut wire_bytes = Vec::new();
        crate::write_frame(&mut wire_bytes, b"whole").unwrap();
        let torn_at = wire_bytes.len() - 2;
        let mut recv = RecvBuf::new(crate::MAX_FRAME_LEN);
        // A live socket hands over the torn bytes then pushes back with
        // WouldBlock (a slice would report EOF the moment it ran dry).
        let mut src = Trickle {
            data: wire_bytes[..torn_at].to_vec(),
            pos: 0,
            seg: usize::MAX,
            blocked: true,
        };
        recv.fill_from(&mut src).unwrap();
        assert!(recv.pop_frame().unwrap().is_none(), "not yet EOF");
        recv.fill_from(&mut src).unwrap(); // EOF lands
        let err = recv.pop_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // A clean close between frames is just is_eof.
        let mut recv = RecvBuf::new(crate::MAX_FRAME_LEN);
        recv.fill_from(&mut &wire_bytes[..]).unwrap();
        assert_eq!(recv.pop_frame().unwrap().unwrap(), b"whole");
        assert!(recv.pop_frame().unwrap().is_none());
        assert!(recv.is_eof());
    }

    #[test]
    fn fill_stops_at_the_memory_bound_and_resumes() {
        let cap = 16usize;
        let mut wire_bytes = Vec::new();
        for i in 0..20u8 {
            crate::write_frame_limited(&mut wire_bytes, &[i; 8], cap).unwrap();
        }
        let mut recv = RecvBuf::new(cap);
        let mut src = &wire_bytes[..];
        let consumed = recv.fill_from(&mut src).unwrap();
        assert!(
            consumed < wire_bytes.len(),
            "a fill must stop at the bound, not swallow the pipeline"
        );
        assert!(recv.pending() <= cap + 4 + 16 * 1024, "bounded buffer");
        // Draining frames makes room; the stream finishes over more fills.
        let mut frames = 0;
        loop {
            while let Some(_f) = recv.pop_frame().unwrap() {
                frames += 1;
            }
            if recv.fill_from(&mut src).unwrap() == 0 {
                break;
            }
        }
        while let Some(_f) = recv.pop_frame().unwrap() {
            frames += 1;
        }
        assert_eq!(frames, 20);
    }

    /// A writer accepting at most `cap` bytes per call, pushing back with
    /// `WouldBlock` every other call.
    struct Choky {
        out: Vec<u8>,
        cap: usize,
        blocked: bool,
    }

    impl Write for Choky {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "choky"));
            }
            self.blocked = false;
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_buf_flushes_through_backpressure_bit_identically() {
        let mut send = SendBuf::new();
        send.push_frame(b"first", crate::MAX_FRAME_LEN).unwrap();
        send.push_frame(&[9u8; 100], crate::MAX_FRAME_LEN).unwrap();
        let mut sink = Choky {
            out: Vec::new(),
            cap: 3,
            blocked: false,
        };
        let mut rounds = 0;
        while !send.flush_to(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 1000, "flush must make progress");
        }
        assert!(!send.wants_write());
        let mut expect = Vec::new();
        crate::write_frame(&mut expect, b"first").unwrap();
        crate::write_frame(&mut expect, &[9u8; 100]).unwrap();
        assert_eq!(sink.out, expect);
    }

    #[test]
    fn send_buf_enforces_the_cap() {
        let mut send = SendBuf::new();
        let err = send.push_frame(&[0u8; 10], 9).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(send.pending(), 0, "a rejected frame queues nothing");
    }
}
