//! A single-threaded epoll readiness reactor: [`Poller`], [`Waker`], and
//! the [`Interest`]/[`PollEvent`] vocabulary shared by every event loop in
//! the workspace (the serve front-end, the dist coordinator's gather
//! phase, the rollout worker's accept loop, and `serve_load`'s client).
//!
//! The design is deliberately the smallest thing that scales: one epoll
//! instance per loop, level-triggered interest, a `u64` token per
//! registration chosen by the caller, and an `eventfd`-backed [`Waker`]
//! so other threads (the batch scheduler's workers, a shutdown path) can
//! interrupt a blocked [`Poller::poll`]. There are no callbacks and no
//! executor — the caller owns the loop, reads the returned events, and
//! drives its own connection state machines, which keeps borrow scopes
//! flat and lets blocking and non-blocking frame I/O share one loop.
//!
//! Everything is std-only: the kernel interface is a thin `extern "C"`
//! shim over the handful of syscalls std does not expose
//! (`epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`, `listen`), using
//! the libc std already links. On non-Linux targets [`Poller::new`]
//! returns `Unsupported` and the blocking code paths remain available.

/// Readiness interest for a registration: readable, writable, or both.
/// Hangup/error conditions are always reported regardless of interest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// True when read-readiness is requested.
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// True when write-readiness is requested.
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// One readiness event out of [`Poller::poll`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The peer has data (or an accept) ready.
    pub readable: bool,
    /// The socket can take more bytes without blocking.
    pub writable: bool,
    /// Hangup or error: the connection is dead or half-closed. Readers
    /// should drain to EOF and drop the registration.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, PollEvent};
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::Arc;
    use std::time::Duration;

    mod sys {
        use std::os::raw::{c_int, c_uint};

        // The subset of the kernel interface std does not expose. std
        // already links libc on Linux, so these resolve without any
        // external crate.
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
            pub fn setsockopt(
                sockfd: c_int,
                level: c_int,
                optname: c_int,
                optval: *const c_int,
                optlen: u32,
            ) -> c_int;
        }

        pub const SOL_SOCKET: c_int = 1;
        pub const SO_SNDBUF: c_int = 7;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o4000;

        /// The kernel's `struct epoll_event`. Packed on x86, where the
        /// kernel ABI has no padding between `events` and `data`.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// A level-triggered epoll instance. See the module docs for the
    /// intended loop shape.
    #[derive(Debug)]
    pub struct Poller {
        epfd: OwnedFd,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        ///
        /// # Errors
        /// The `epoll_create1` failure, or `Unsupported` off Linux.
        pub fn new() -> io::Result<Self> {
            let fd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            // SAFETY: epoll_create1 returned a fresh descriptor we own.
            Ok(Poller {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<sys::EpollEvent>) -> io::Result<()> {
            let mut ev = event.unwrap_or(sys::EpollEvent { events: 0, data: 0 });
            cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` under `token` with the given interest.
        ///
        /// # Errors
        /// The underlying `epoll_ctl` failure (e.g. an already-registered
        /// descriptor).
        pub fn register(
            &self,
            fd: &impl AsRawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_ADD,
                fd.as_raw_fd(),
                Some(sys::EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Changes the interest (and token) of an already-registered `fd`.
        ///
        /// # Errors
        /// The underlying `epoll_ctl` failure.
        pub fn reregister(
            &self,
            fd: &impl AsRawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(
                sys::EPOLL_CTL_MOD,
                fd.as_raw_fd(),
                Some(sys::EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Removes `fd` from the instance. Dropping the last duplicate of
        /// a descriptor removes it implicitly; this is for removing an fd
        /// that stays open.
        ///
        /// # Errors
        /// The underlying `epoll_ctl` failure.
        pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), None)
        }

        /// Blocks until readiness or `timeout` (forever when `None`),
        /// appending up to 1024 events to `events` (cleared first).
        /// Returns the number of events delivered; 0 means the timeout
        /// elapsed. `EINTR` is retried internally.
        ///
        /// # Errors
        /// The underlying `epoll_wait` failure.
        pub fn poll(
            &self,
            events: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            const CAP: usize = 1024;
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAP];
            // Round sub-millisecond timeouts up so a near deadline does
            // not spin at timeout 0.
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let n = loop {
                let ret = unsafe {
                    sys::epoll_wait(
                        self.epfd.as_raw_fd(),
                        raw.as_mut_ptr(),
                        CAP as i32,
                        timeout_ms,
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &raw[..n] {
                let bits = ev.events;
                events.push(PollEvent {
                    token: ev.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    /// A cross-thread wake handle for a [`Poller`]: an `eventfd`
    /// registered like any other readable descriptor. Clone freely; all
    /// clones share the one descriptor.
    #[derive(Clone, Debug)]
    pub struct Waker {
        fd: Arc<std::fs::File>,
    }

    impl Waker {
        /// Creates the eventfd (non-blocking, close-on-exec).
        ///
        /// # Errors
        /// The `eventfd` failure, or `Unsupported` off Linux.
        pub fn new() -> io::Result<Self> {
            let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
            // SAFETY: eventfd returned a fresh descriptor we own.
            let owned = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(Waker {
                fd: Arc::new(std::fs::File::from(owned)),
            })
        }

        /// Makes the next (or current) [`Poller::poll`] return with a
        /// readable event on this waker's token. Coalesces: any number of
        /// wakes before the drain produce one event.
        pub fn wake(&self) {
            // A full counter (EAGAIN) already guarantees a wakeup.
            let _ = (&*self.fd).write_all(&1u64.to_ne_bytes());
        }

        /// Clears the wake signal; call when the waker's token polls
        /// readable, before processing whatever the wake announced.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = (&*self.fd).read(&mut buf);
        }
    }

    impl AsRawFd for Waker {
        fn as_raw_fd(&self) -> RawFd {
            self.fd.as_raw_fd()
        }
    }

    /// Re-arms `listener`'s accept backlog to `backlog` (Linux allows
    /// re-calling `listen` on a listening socket). std hardcodes 128,
    /// which a multi-thousand-connection burst overflows.
    ///
    /// # Errors
    /// The underlying `listen` failure.
    pub fn set_backlog(listener: &std::net::TcpListener, backlog: i32) -> io::Result<()> {
        cvt(unsafe { sys::listen(listener.as_raw_fd(), backlog) })?;
        Ok(())
    }

    /// Caps the socket's kernel send buffer (`SO_SNDBUF`; the kernel
    /// doubles the value for bookkeeping and enforces a floor). Bounding
    /// it keeps per-connection kernel memory predictable on a server
    /// holding thousands of sockets, and makes a stalled reader surface
    /// as write backpressure instead of disappearing into autotuned
    /// buffers.
    ///
    /// # Errors
    /// The underlying `setsockopt` failure.
    pub fn set_send_buffer(socket: &impl AsRawFd, bytes: usize) -> io::Result<()> {
        let val = bytes.min(i32::MAX as usize) as i32;
        cvt(unsafe {
            sys::setsockopt(
                socket.as_raw_fd(),
                sys::SOL_SOCKET,
                sys::SO_SNDBUF,
                &val,
                std::mem::size_of::<i32>() as u32,
            )
        })?;
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Interest, PollEvent};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "the readiness reactor requires Linux epoll; use the blocking transports",
        )
    }

    /// Stub poller for non-Linux targets: construction fails with
    /// `Unsupported`, so the methods are unreachable by construction.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails off Linux.
        ///
        /// # Errors
        /// `Unsupported`.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable: [`Poller::new`] never succeeds off Linux.
        pub fn register(
            &self,
            _fd: &impl std::fmt::Debug,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable: [`Poller::new`] never succeeds off Linux.
        pub fn reregister(
            &self,
            _fd: &impl std::fmt::Debug,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable: [`Poller::new`] never succeeds off Linux.
        pub fn deregister(&self, _fd: &impl std::fmt::Debug) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable: [`Poller::new`] never succeeds off Linux.
        pub fn poll(
            &self,
            _events: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    /// Stub waker for non-Linux targets.
    #[derive(Clone, Debug)]
    pub struct Waker {}

    impl Waker {
        /// Always fails off Linux.
        ///
        /// # Errors
        /// `Unsupported`.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable: [`Waker::new`] never succeeds off Linux.
        pub fn wake(&self) {}

        /// Unreachable: [`Waker::new`] never succeeds off Linux.
        pub fn drain(&self) {}
    }

    /// No-op off Linux (the blocking paths keep std's default backlog).
    ///
    /// # Errors
    /// None; accepted for signature parity.
    pub fn set_backlog(_listener: &std::net::TcpListener, _backlog: i32) -> io::Result<()> {
        Ok(())
    }

    /// No-op off Linux (kernel buffers keep their defaults).
    ///
    /// # Errors
    /// None; accepted for signature parity.
    pub fn set_send_buffer(_socket: &impl std::fmt::Debug, _bytes: usize) -> io::Result<()> {
        Ok(())
    }
}

pub use imp::{set_backlog, set_send_buffer, Poller, Waker};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd as _;
    use std::time::Duration;

    #[test]
    fn poll_reports_accept_and_data_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.register(&listener, 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short poll times out empty.
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, 2, Interest::BOTH).unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        // Level-triggered: the data event stays up until read.
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 2)
            .expect("connection event");
        assert!(ev.readable && ev.writable);
        let mut buf = [0u8; 4];
        (&server_side).read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        // Hangup is reported once the peer closes.
        drop(client);
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.hangup));
        poller.deregister(&server_side).unwrap();
        let _ = server_side.as_raw_fd();
    }

    #[test]
    fn waker_interrupts_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(&waker, 7, Interest::READABLE).unwrap();
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
            remote.wake();
            remote.wake();
        });
        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        // Coalesced: after the drain the level-triggered signal is gone.
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );
        t.join().unwrap();
    }

    #[test]
    fn reregister_moves_interest() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        poller.register(&client, 1, Interest::WRITABLE).unwrap();
        let mut events = Vec::new();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        // Read-only interest on an idle socket: no events.
        poller.reregister(&client, 9, Interest::READABLE).unwrap();
        assert_eq!(
            poller
                .poll(&mut events, Some(Duration::from_millis(5)))
                .unwrap(),
            0
        );
    }
}
