//! Shared wire format for RL-CCD network services.
//!
//! Both the inference server (`rl-ccd-serve`) and the distributed training
//! runtime (`rl-ccd-dist`) speak the same two-layer format, implemented
//! once here so the codecs cannot drift apart:
//!
//! # Framing
//!
//! Every message — request or response — is one frame: a 4-byte big-endian
//! payload length followed by that many payload bytes. Frames are capped
//! (default [`MAX_FRAME_LEN`]; services carrying parameter sets use
//! [`write_frame_limited`]/[`read_frame_limited`] with a larger cap) so a
//! corrupt or hostile length prefix cannot force a huge allocation.
//! Length-prefix framing keeps the stream self-delimiting: a reader never
//! has to scan for terminators, and pipelined messages on one connection
//! cannot bleed into each other.
//!
//! # Envelope
//!
//! The payload is UTF-8 text. Line 1 is always a protocol version token
//! (e.g. `rl-ccd-serve v1`); mismatched versions are rejected before any
//! field is parsed, so each format can evolve by bumping its token. Line 2
//! is the message head with `key=value` fields; the remaining lines are
//! the message body. Readers ignore unknown keys, so fields can be added
//! without a version bump.
//!
//! # Failure machinery
//!
//! Three companion modules pin the transport's behavior under a hostile
//! network: [`chaos`] (a deterministic fault-injecting stream wrapper
//! driven by a [`NetFaultPlan`]), [`retry`] (seeded
//! exponential-backoff-with-jitter policies), and [`deadline`]
//! (remaining-budget deadlines that convert into socket timeouts at every
//! blocking boundary).
//!
//! # Transports and the reactor
//!
//! The [`transport`] module unifies how services hold a connection: the
//! [`Transport`] trait (frame ops + deadline arming), the blocking
//! [`FramedTcp`] implementation dialed from an [`Endpoint`], and the
//! [`FramedListener`] that chaos-wraps accepted (server-side) sockets.
//! For services that multiplex many connections on one thread, the
//! [`reactor`] module provides an epoll readiness loop ([`Poller`] +
//! [`Waker`]), [`timer`] a hashed timer wheel for per-connection
//! deadlines and backoff timers, and [`frames`] the non-blocking framed
//! state machine ([`FramedConn`]) that incrementally decodes the same
//! frames the blocking calls speak.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod deadline;
pub mod frames;
pub mod reactor;
pub mod retry;
pub mod timer;
pub mod transport;

pub use chaos::{ChaosTransport, NetFault, NetFaultPlan};
pub use deadline::DeadlineBudget;
pub use frames::{FramedConn, RecvBuf, SendBuf};
pub use reactor::{Poller, Waker};
pub use retry::RetryPolicy;
pub use timer::{TimerId, TimerWheel};
pub use transport::{connect_any, roundtrip, Endpoint, FramedListener, FramedTcp, Transport};

use std::io::{self, Read, Write};

/// Default hard cap on a frame's payload length (1 MiB) — enough for
/// control messages and selections, small enough that a corrupt prefix is
/// harmless.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Writes one length-prefixed frame under the default [`MAX_FRAME_LEN`].
///
/// # Errors
/// `InvalidInput` when the payload exceeds the cap; otherwise propagates
/// I/O errors.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_frame_limited(w, payload, MAX_FRAME_LEN)
}

/// Reads one length-prefixed frame under the default [`MAX_FRAME_LEN`].
///
/// # Errors
/// `InvalidData` when the length prefix exceeds the cap; otherwise
/// propagates I/O errors (including `UnexpectedEof` on a torn frame).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    read_frame_limited(r, MAX_FRAME_LEN)
}

/// Writes one length-prefixed frame with an explicit payload cap
/// (services shipping parameter sets or netlists need more than the
/// default control-message cap).
///
/// # Errors
/// `InvalidInput` when the payload exceeds `max_len`; otherwise propagates
/// I/O errors.
pub fn write_frame_limited<W: Write>(w: &mut W, payload: &[u8], max_len: usize) -> io::Result<()> {
    if payload.len() > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {max_len}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame with an explicit payload cap.
///
/// # Errors
/// `InvalidData` when the length prefix exceeds `max_len`; otherwise
/// propagates I/O errors (including `UnexpectedEof` on a torn frame).
pub fn read_frame_limited<R: Read>(r: &mut R, max_len: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_len}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Checks the version line of a payload against `version` and returns
/// `(head, body)`: the second line and everything after it.
///
/// # Errors
/// A human-readable description when the payload is not UTF-8, has no
/// version line, or carries a different version token.
pub fn split_versioned<'a>(payload: &'a [u8], version: &str) -> Result<(&'a str, &'a str), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let (found, rest) = text
        .split_once('\n')
        .ok_or_else(|| "payload has no version line".to_string())?;
    if found != version {
        return Err(format!(
            "protocol version {found:?}, this endpoint speaks {version:?}"
        ));
    }
    let (head, rest) = rest.split_once('\n').unwrap_or((rest, ""));
    Ok((head, rest))
}

/// Splits a message head's whitespace-separated `key=value` fields.
///
/// # Errors
/// A human-readable description of the first token that is not `key=value`.
pub fn head_fields(head: &str) -> Result<Vec<(&str, &str)>, String> {
    head.split_whitespace()
        .map(|field| {
            field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_frames_are_rejected_both_ways() {
        let mut buf = Vec::new();
        let too_big = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut buf, &too_big).is_err());
        let forged = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut &forged[..]).is_err());
    }

    #[test]
    fn limited_variants_honor_their_own_cap() {
        let mut buf = Vec::new();
        let payload = vec![7u8; MAX_FRAME_LEN + 1];
        write_frame_limited(&mut buf, &payload, MAX_FRAME_LEN * 2).unwrap();
        // The default reader refuses it; a matching cap accepts it.
        assert!(read_frame(&mut &buf[..]).is_err());
        assert_eq!(
            read_frame_limited(&mut &buf[..], MAX_FRAME_LEN * 2).unwrap(),
            payload
        );
        // A writer under a small cap refuses what the default allows.
        assert!(write_frame_limited(&mut buf, b"abcd", 3).is_err());
    }

    #[test]
    fn torn_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"complete").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn split_versioned_checks_token_and_splits_head() {
        let (head, body) = split_versioned(b"proto v1\nhello a=1\nbody\nlines\n", "proto v1")
            .expect("valid payload");
        assert_eq!(head, "hello a=1");
        assert_eq!(body, "body\nlines\n");
        let err = split_versioned(b"proto v2\nhello\n", "proto v1").unwrap_err();
        assert!(err.contains("version"), "{err}");
        assert!(split_versioned(&[0xFF, 0xFE], "proto v1").is_err());
        assert!(split_versioned(b"no newline", "proto v1").is_err());
    }

    #[test]
    fn head_fields_parse_and_reject() {
        let fields = head_fields("a=1 b=two c=3.5").unwrap();
        assert_eq!(fields, vec![("a", "1"), ("b", "two"), ("c", "3.5")]);
        assert!(head_fields("a=1 naked").is_err());
        assert!(head_fields("").unwrap().is_empty());
    }
}
