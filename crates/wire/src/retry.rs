//! Retry policy with seeded, deterministic exponential backoff + jitter.
//!
//! Backoff grows geometrically from [`RetryPolicy::base`] and is capped at
//! [`RetryPolicy::max_backoff`]. Jitter is **deterministic**: instead of
//! sampling a thread-local RNG, the jitter factor is derived by hashing
//! `(seed, key, attempt)` with FNV-1a, so a given policy produces the same
//! backoff schedule on every run — tests can pin wall-clock behavior, and
//! distinct callers (distinct `key`s) still decorrelate their retries.

use std::time::Duration;

/// How a client retries a failed network operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Geometric growth factor between retries.
    pub factor: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of the backoff randomized by jitter, in `[0, 1]`: the
    /// sleep is scaled into `[1 - jitter, 1]` of the nominal value.
    pub jitter: f64,
    /// Seed for the deterministic jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            factor: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The default policy re-seeded — same shape, decorrelated jitter.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// The default policy with a different attempt budget.
    #[must_use]
    pub fn with_attempts(self, max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..self
        }
    }

    /// Number of retries after the first attempt.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// The backoff to sleep before retry `attempt` (1-based: attempt 1 is
    /// the first retry) of the operation identified by `key`. Pure
    /// function of `(policy, key, attempt)`.
    #[must_use]
    pub fn backoff(&self, key: u64, attempt: u32) -> Duration {
        let nominal = self.base.as_secs_f64() * self.factor.powi(attempt.saturating_sub(1) as i32);
        let nominal = nominal.min(self.max_backoff.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        // Hash (seed, key, attempt) to a unit float in [0, 1).
        let h = fnv1a(&[self.seed, key, u64::from(attempt)]);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - jitter * unit;
        Duration::from_secs_f64(nominal * scale)
    }
}

/// FNV-1a over a word sequence, mixing each u64 byte-wise.
fn fnv1a(words: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::seeded(42);
        let a = p.backoff(7, 1);
        assert_eq!(a, p.backoff(7, 1), "same inputs, same backoff");
        // Nominal values double; jitter only shrinks within [1-j, 1], so
        // attempt 3's floor exceeds attempt 1's ceiling for jitter <= 0.5.
        assert!(p.backoff(7, 3) > p.backoff(7, 1));
        // Distinct keys decorrelate.
        assert_ne!(p.backoff(7, 1), p.backoff(8, 1));
        // Distinct seeds decorrelate.
        assert_ne!(
            RetryPolicy::seeded(1).backoff(7, 1),
            RetryPolicy::seeded(2).backoff(7, 1)
        );
    }

    #[test]
    fn backoff_respects_cap_and_jitter_band() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(100),
            factor: 10.0,
            max_backoff: Duration::from_millis(250),
            jitter: 0.5,
            seed: 3,
        };
        for attempt in 1..10 {
            let b = p.backoff(0, attempt);
            assert!(b <= p.max_backoff, "attempt {attempt}: {b:?} over cap");
            let nominal = (0.1 * 10f64.powi(attempt as i32 - 1)).min(0.25);
            assert!(
                b.as_secs_f64() >= nominal * 0.5 - 1e-9,
                "attempt {attempt}: {b:?} under the jitter floor"
            );
        }
    }

    #[test]
    fn none_never_retries() {
        assert_eq!(RetryPolicy::none().retries(), 0);
        assert_eq!(RetryPolicy::default().with_attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().retries(), 2);
    }
}
