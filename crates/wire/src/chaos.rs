//! Seeded, deterministic network chaos: a [`ChaosTransport`] wrapper over
//! the framed stream that injects latency, short writes, torn frames,
//! connection resets, and stalls according to a [`NetFaultPlan`].
//!
//! The plan addresses injections by **(connection id, frame index)**: the
//! connection id is assigned by whoever owns the transport (the dist
//! coordinator uses the worker index; the serve client uses a caller-chosen
//! id), and the frame index counts every frame operation — read or write —
//! performed on that transport since it was created. Each injection fires
//! **exactly once** (consumption is tracked in the shared plan), so a
//! retried operation after a reconnect observes a healthy wire and the
//! overall run stays deterministic.
//!
//! When no plan is attached and no one-shot injection is queued, every
//! frame operation is a single `Option` branch away from the raw framing
//! call — the same zero-cost-when-detached discipline as `crates/obs`,
//! except the guard is a per-transport `Option<Arc<..>>` rather than a
//! global relaxed atomic: chaos must stay scoped to the transport under
//! test, or plans would leak across connections in a parallel `cargo test`
//! process.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{read_frame_limited, write_frame_limited, MAX_FRAME_LEN};

/// One injectable transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Sleep this many milliseconds, then perform the frame op normally
    /// (added latency; the bytes are unharmed).
    Delay(u64),
    /// Perform the frame op in flushed segments of at most this many bytes
    /// (adversarial segmentation; the bytes are unharmed).
    Segmented(usize),
    /// Tear the frame: on write, emit the length prefix plus only half the
    /// payload, then fail with `BrokenPipe`; on read, consume and discard
    /// the incoming frame, then fail with `UnexpectedEof`. The transport is
    /// poisoned afterwards.
    Torn,
    /// Fail immediately with `ConnectionReset` and poison the transport.
    Reset,
    /// Go silent for this many milliseconds, then fail with `TimedOut` and
    /// poison the transport — the bounded stand-in for an indefinite stall
    /// (a peer's deadline always fires first; the cap only keeps tests
    /// finite).
    Stall(u64),
}

impl fmt::Display for NetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFault::Delay(ms) => write!(f, "delay {ms}ms"),
            NetFault::Segmented(n) => write!(f, "segmented {n}B"),
            NetFault::Torn => write!(f, "torn frame"),
            NetFault::Reset => write!(f, "connection reset"),
            NetFault::Stall(ms) => write!(f, "stall {ms}ms"),
        }
    }
}

/// One planned injection at a (connection, frame) coordinate.
#[derive(Debug)]
struct Injection {
    conn: u64,
    frame: u64,
    fault: NetFault,
    fired: AtomicBool,
}

/// A deterministic schedule of transport faults keyed by
/// (connection id, frame index). Build one with the `with_*` combinators
/// or parse the CLI spec format with [`NetFaultPlan::parse`]; attach it to
/// transports via [`ChaosTransport::with_plan`] (shared through an `Arc`
/// so one-shot consumption is visible across connections).
#[derive(Debug, Default)]
pub struct NetFaultPlan {
    injections: Vec<Injection>,
}

impl NetFaultPlan {
    /// An empty plan: attaches cleanly, injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    fn push(mut self, conn: u64, frame: u64, fault: NetFault) -> Self {
        self.injections.push(Injection {
            conn,
            frame,
            fault,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Delays frame `frame` on connection `conn` by `ms` milliseconds.
    #[must_use]
    pub fn with_delay(self, conn: u64, frame: u64, ms: u64) -> Self {
        self.push(conn, frame, NetFault::Delay(ms))
    }

    /// Performs frame `frame` on connection `conn` in flushed segments of
    /// at most `max_seg` bytes.
    #[must_use]
    pub fn with_segmented(self, conn: u64, frame: u64, max_seg: usize) -> Self {
        self.push(conn, frame, NetFault::Segmented(max_seg.max(1)))
    }

    /// Tears frame `frame` on connection `conn`.
    #[must_use]
    pub fn with_torn(self, conn: u64, frame: u64) -> Self {
        self.push(conn, frame, NetFault::Torn)
    }

    /// Resets connection `conn` at frame `frame`.
    #[must_use]
    pub fn with_reset(self, conn: u64, frame: u64) -> Self {
        self.push(conn, frame, NetFault::Reset)
    }

    /// Stalls connection `conn` at frame `frame` for `ms` milliseconds
    /// before failing with `TimedOut`.
    #[must_use]
    pub fn with_stall(self, conn: u64, frame: u64, ms: u64) -> Self {
        self.push(conn, frame, NetFault::Stall(ms))
    }

    /// True when the plan schedules no injections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Number of scheduled injections (fired or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Number of injections that have fired so far.
    #[must_use]
    pub fn fired(&self) -> usize {
        self.injections
            .iter()
            .filter(|i| i.fired.load(Ordering::Relaxed))
            .count()
    }

    /// Consumes (at most once) the injection scheduled at `(conn, frame)`.
    fn take(&self, conn: u64, frame: u64) -> Option<NetFault> {
        for inj in &self.injections {
            if inj.conn == conn
                && inj.frame == frame
                && inj
                    .fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(inj.fault);
            }
        }
        None
    }

    /// Parses the CLI plan spec: comma-separated tokens of
    /// `delay:CONN:FRAME:MS`, `seg:CONN:FRAME:BYTES`, `torn:CONN:FRAME`,
    /// `reset:CONN:FRAME`, `stall:CONN:FRAME:MS`. An empty spec is an
    /// empty plan.
    ///
    /// # Errors
    /// A human-readable description of the first malformed token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::none();
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let parts: Vec<&str> = token.trim().split(':').collect();
            let num = |i: usize| -> Result<u64, String> {
                parts
                    .get(i)
                    .ok_or_else(|| format!("chaos token {token:?} is missing field {i}"))?
                    .parse::<u64>()
                    .map_err(|_| format!("chaos token {token:?}: field {i} is not a number"))
            };
            let arity = |n: usize| -> Result<(), String> {
                if parts.len() == n {
                    Ok(())
                } else {
                    Err(format!(
                        "chaos token {token:?} has {} fields, expected {n}",
                        parts.len()
                    ))
                }
            };
            plan = match parts[0] {
                "delay" => {
                    arity(4)?;
                    plan.with_delay(num(1)?, num(2)?, num(3)?)
                }
                "seg" => {
                    arity(4)?;
                    plan.with_segmented(num(1)?, num(2)?, num(3)? as usize)
                }
                "torn" => {
                    arity(3)?;
                    plan.with_torn(num(1)?, num(2)?)
                }
                "reset" => {
                    arity(3)?;
                    plan.with_reset(num(1)?, num(2)?)
                }
                "stall" => {
                    arity(4)?;
                    plan.with_stall(num(1)?, num(2)?, num(3)?)
                }
                other => {
                    return Err(format!(
                        "unknown chaos fault {other:?} (want delay/seg/torn/reset/stall)"
                    ))
                }
            };
        }
        Ok(plan)
    }
}

/// A framed-stream wrapper that injects the faults a [`NetFaultPlan`]
/// schedules for its connection id, plus any one-shot faults queued with
/// [`ChaosTransport::inject_once`]. With no plan attached and no pending
/// injection, frame operations delegate straight to the raw framing
/// functions.
#[derive(Debug)]
pub struct ChaosTransport<S> {
    inner: S,
    plan: Option<Arc<NetFaultPlan>>,
    pending: VecDeque<NetFault>,
    conn: u64,
    frame: u64,
    poisoned: bool,
}

impl<S> ChaosTransport<S> {
    /// Wraps a stream with no chaos attached (zero-cost passthrough).
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            plan: None,
            pending: VecDeque::new(),
            conn: 0,
            frame: 0,
            poisoned: false,
        }
    }

    /// Attaches a shared fault plan, addressing this transport as
    /// connection `conn`.
    #[must_use]
    pub fn with_plan(mut self, plan: Arc<NetFaultPlan>, conn: u64) -> Self {
        self.plan = Some(plan);
        self.conn = conn;
        self
    }

    /// Re-addresses the live transport: attaches `plan` as connection
    /// `conn` without touching the stream or the frame counter.
    pub fn set_plan(&mut self, plan: Arc<NetFaultPlan>, conn: u64) {
        self.plan = Some(plan);
        self.conn = conn;
    }

    /// Starts the frame counter at `frame` instead of 0 — a reconnected
    /// transport resumes the old connection's frame numbering so plan
    /// coordinates stay stable across reconnects.
    #[must_use]
    pub fn resume_at(mut self, frame: u64) -> Self {
        self.frame = frame;
        self
    }

    /// Queues a fault to fire on the next frame operation, ahead of any
    /// plan schedule. Used by the coordinator to translate training-level
    /// `FaultPlan` net faults (keyed by iteration and worker) into
    /// transport injections.
    pub fn inject_once(&mut self, fault: NetFault) {
        self.pending.push_back(fault);
    }

    /// The frame index the next frame operation will carry.
    #[must_use]
    pub fn frame_index(&self) -> u64 {
        self.frame
    }

    /// A shared reference to the wrapped stream (e.g. to set socket
    /// timeouts on a `TcpStream`).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// A mutable reference to the wrapped stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the transport, discarding chaos state.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Consumes the fault (if any) scheduled for the current frame op and
    /// advances the frame counter.
    fn next_fault(&mut self) -> Option<NetFault> {
        let frame = self.frame;
        self.frame += 1;
        if let Some(fault) = self.pending.pop_front() {
            return Some(fault);
        }
        self.plan.as_ref().and_then(|p| p.take(self.conn, frame))
    }

    fn poisoned_err(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "chaos: connection poisoned by an earlier injected fault",
        )
    }
}

impl<S: Read + Write> ChaosTransport<S> {
    /// Writes one frame under `max_len`, applying any scheduled fault.
    ///
    /// # Errors
    /// The injected fault's error (`BrokenPipe` for a torn frame,
    /// `ConnectionReset` for a reset, `TimedOut` for a stall), or whatever
    /// the underlying framed write reports.
    pub fn write_frame_limited(&mut self, payload: &[u8], max_len: usize) -> io::Result<()> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        let Some(fault) = self.next_fault() else {
            return write_frame_limited(&mut self.inner, payload, max_len);
        };
        match fault {
            NetFault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                write_frame_limited(&mut self.inner, payload, max_len)
            }
            NetFault::Segmented(max_seg) => {
                if payload.len() > max_len {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "frame of {} bytes exceeds the {max_len}-byte cap",
                            payload.len()
                        ),
                    ));
                }
                let mut framed = Vec::with_capacity(4 + payload.len());
                framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                framed.extend_from_slice(payload);
                for seg in framed.chunks(max_seg) {
                    self.inner.write_all(seg)?;
                    self.inner.flush()?;
                }
                Ok(())
            }
            NetFault::Torn => {
                self.poisoned = true;
                let torn = payload.len() / 2;
                let _ = self
                    .inner
                    .write_all(&(payload.len() as u32).to_be_bytes())
                    .and_then(|()| self.inner.write_all(&payload[..torn]))
                    .and_then(|()| self.inner.flush());
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!(
                        "chaos: frame torn after {torn} of {} payload bytes",
                        payload.len()
                    ),
                ))
            }
            NetFault::Reset => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: connection reset",
                ))
            }
            NetFault::Stall(ms) => {
                self.poisoned = true;
                std::thread::sleep(Duration::from_millis(ms));
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("chaos: peer stalled for {ms}ms"),
                ))
            }
        }
    }

    /// Reads one frame under `max_len`, applying any scheduled fault.
    ///
    /// # Errors
    /// The injected fault's error (`UnexpectedEof` for a torn frame,
    /// `ConnectionReset` for a reset, `TimedOut` for a stall), or whatever
    /// the underlying framed read reports.
    pub fn read_frame_limited(&mut self, max_len: usize) -> io::Result<Vec<u8>> {
        if self.poisoned {
            return Err(self.poisoned_err());
        }
        let Some(fault) = self.next_fault() else {
            return read_frame_limited(&mut self.inner, max_len);
        };
        match fault {
            NetFault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                read_frame_limited(&mut self.inner, max_len)
            }
            NetFault::Segmented(max_seg) => {
                let mut segmented = SegmentedReader {
                    inner: &mut self.inner,
                    max_seg,
                };
                read_frame_limited(&mut segmented, max_len)
            }
            NetFault::Torn => {
                self.poisoned = true;
                // Consume the real frame so the tear loses it, as a tear
                // mid-flight would.
                let _ = read_frame_limited(&mut self.inner, max_len);
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "chaos: incoming frame torn",
                ))
            }
            NetFault::Reset => {
                self.poisoned = true;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: connection reset",
                ))
            }
            NetFault::Stall(ms) => {
                self.poisoned = true;
                std::thread::sleep(Duration::from_millis(ms));
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("chaos: peer stalled for {ms}ms"),
                ))
            }
        }
    }

    /// Writes one frame under the default [`MAX_FRAME_LEN`] cap.
    ///
    /// # Errors
    /// See [`ChaosTransport::write_frame_limited`].
    pub fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        self.write_frame_limited(payload, MAX_FRAME_LEN)
    }

    /// Reads one frame under the default [`MAX_FRAME_LEN`] cap.
    ///
    /// # Errors
    /// See [`ChaosTransport::read_frame_limited`].
    pub fn read_frame(&mut self) -> io::Result<Vec<u8>> {
        self.read_frame_limited(MAX_FRAME_LEN)
    }
}

/// A reader that hands back at most `max_seg` bytes per call — the read
/// half of adversarial segmentation.
struct SegmentedReader<'a, R> {
    inner: &'a mut R,
    max_seg: usize,
}

impl<R: Read> Read for SegmentedReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.max_seg.max(1));
        self.inner.read(&mut buf[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory stream: reads from `input`, writes to `output`.
    struct Duplex {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Duplex {
        fn with_frames(frames: &[&[u8]]) -> Self {
            let mut input = Vec::new();
            for f in frames {
                crate::write_frame(&mut input, f).unwrap();
            }
            Duplex {
                input: io::Cursor::new(input),
                output: Vec::new(),
            }
        }
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn passthrough_without_plan_is_bit_identical() {
        let mut t = ChaosTransport::new(Duplex::with_frames(&[b"reply"]));
        t.write_frame(b"request").unwrap();
        assert_eq!(t.read_frame().unwrap(), b"reply");
        let mut expect = Vec::new();
        crate::write_frame(&mut expect, b"request").unwrap();
        assert_eq!(t.get_ref().output, expect);
        assert_eq!(t.frame_index(), 2);
    }

    #[test]
    fn delay_and_segmented_leave_bytes_unharmed() {
        let plan = Arc::new(
            NetFaultPlan::none()
                .with_delay(3, 0, 1)
                .with_segmented(3, 1, 3),
        );
        let mut t = ChaosTransport::new(Duplex::with_frames(&[])).with_plan(Arc::clone(&plan), 3);
        t.write_frame(b"abc").unwrap();
        t.write_frame(b"defghij").unwrap();
        let mut expect = Vec::new();
        crate::write_frame(&mut expect, b"abc").unwrap();
        crate::write_frame(&mut expect, b"defghij").unwrap();
        assert_eq!(t.get_ref().output, expect);
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn segmented_read_decodes_identically() {
        let plan = Arc::new(NetFaultPlan::none().with_segmented(0, 0, 2));
        let mut t =
            ChaosTransport::new(Duplex::with_frames(&[b"chunked payload"])).with_plan(plan, 0);
        assert_eq!(t.read_frame().unwrap(), b"chunked payload");
    }

    #[test]
    fn reset_fires_once_and_poisons() {
        let plan = Arc::new(NetFaultPlan::none().with_reset(0, 1));
        let mut t = ChaosTransport::new(Duplex::with_frames(&[b"ok"])).with_plan(plan, 0);
        assert_eq!(t.read_frame().unwrap(), b"ok");
        let err = t.write_frame(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Poisoned: every later op fails too.
        let err = t.write_frame(b"y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(err.to_string().contains("poisoned"), "{err}");
    }

    #[test]
    fn torn_write_emits_a_genuinely_torn_frame() {
        let plan = Arc::new(NetFaultPlan::none().with_torn(7, 0));
        let mut t = ChaosTransport::new(Duplex::with_frames(&[])).with_plan(plan, 7);
        let err = t.write_frame(b"eightfold").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // A peer decoding the emitted bytes sees a torn frame.
        let out = t.into_inner().output;
        let err = crate::read_frame(&mut &out[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn stall_times_out_after_its_bound() {
        let plan = Arc::new(NetFaultPlan::none().with_stall(0, 0, 5));
        let mut t = ChaosTransport::new(Duplex::with_frames(&[b"never seen"])).with_plan(plan, 0);
        let err = t.read_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn inject_once_preempts_the_plan_and_fires_once() {
        let mut t = ChaosTransport::new(Duplex::with_frames(&[b"a", b"b"]));
        t.inject_once(NetFault::Delay(1));
        assert_eq!(t.read_frame().unwrap(), b"a");
        assert_eq!(t.read_frame().unwrap(), b"b");
    }

    #[test]
    fn resume_at_keeps_plan_coordinates_stable_across_reconnects() {
        let plan = Arc::new(NetFaultPlan::none().with_reset(0, 1).with_delay(0, 2, 1));
        let mut t = ChaosTransport::new(Duplex::with_frames(&[])).with_plan(Arc::clone(&plan), 0);
        t.write_frame(b"first").unwrap();
        assert!(t.write_frame(b"second").is_err(), "reset at frame 1");
        // Reconnect: resume numbering at the next frame; the delay at
        // frame 2 still fires, the consumed reset does not re-fire.
        let mut t2 = ChaosTransport::new(Duplex::with_frames(&[]))
            .with_plan(Arc::clone(&plan), 0)
            .resume_at(t.frame_index());
        t2.write_frame(b"second, again").unwrap();
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn plan_spec_parses_and_rejects() {
        let plan = NetFaultPlan::parse("delay:0:2:50, reset:1:3,stall:0:4:200,torn:1:5,seg:0:6:3")
            .unwrap();
        assert_eq!(plan.injections.len(), 5);
        assert!(NetFaultPlan::parse("").unwrap().is_empty());
        assert!(NetFaultPlan::parse("delay:0:2")
            .unwrap_err()
            .contains("fields"));
        assert!(NetFaultPlan::parse("melt:0:1")
            .unwrap_err()
            .contains("unknown"));
        assert!(NetFaultPlan::parse("delay:x:2:3")
            .unwrap_err()
            .contains("number"));
    }
}
