//! Quickstart: generate a design, inspect its timing, run the default tool
//! flow, then let RL-CCD prioritize endpoints and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rl_ccd::{RlConfig, Session};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, DesignStats, TechNode};
use rl_ccd_sta::{analyze, qor_line, Constraints, EndpointMargins, TimingGraph};

fn main() -> Result<(), rl_ccd::Error> {
    // 1. A synthetic placed design (seeded → fully reproducible).
    let spec = DesignSpec::new("quickstart", 1200, TechNode::N7, 42);
    let design = generate(&spec);
    println!(
        "generated {}: {}",
        spec.name,
        DesignStats::of(&design.netlist)
    );
    println!("calibrated clock period: {:.0} ps", design.period_ps);

    // 2. Static timing at the begin state.
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&design.netlist);
    let clocks = recipe.clock_schedule(&design.netlist, design.period_ps);
    let report = analyze(
        &design.netlist,
        &graph,
        &Constraints::with_period(design.period_ps),
        &clocks,
        &EndpointMargins::zero(&design.netlist),
    );
    println!("begin timing: {}", qor_line(&report));

    // 3. One Session bundles the design, recipe and RL configuration
    //    behind the facade every entry point shares.
    let config = RlConfig {
        max_iterations: 10,
        ..RlConfig::default()
    };
    let session = Session::builder()
        .design(design)
        .recipe(recipe)
        .rl_config(config)
        .build()?;

    // The native tool flow (no endpoint prioritization).
    let default = session.run_flow()?;
    println!(
        "default flow: TNS {:.2} ns, {} violations, {:.2} mW",
        default.final_qor.tns_ns(),
        default.final_qor.nve,
        default.final_qor.power_mw
    );

    // 4. Train RL-CCD (a short run; raise max_iterations for better QoR).
    println!(
        "training RL-CCD on {} violating endpoints…",
        session.env().pool().len()
    );
    let outcome = session.train()?;
    println!(
        "RL-CCD:       TNS {:.2} ns ({:+.1}% vs default), {} violations, {} endpoints prioritized",
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.best_result.final_qor.nve,
        outcome.best_selection.len()
    );
    for h in &outcome.history {
        println!(
            "  iter {:>2}: batch mean {:>10.0} ps, best so far {:>10.0} ps",
            h.iteration, h.mean_reward, h.best_so_far
        );
    }
    Ok(())
}
