//! The paper's §I observation, measured: "not all violating endpoints are
//! equal". For every violating endpoint, estimate how much of its violation
//! clock-path and data-path optimization could each recover.
//!
//! ```text
//! cargo run --release --example endpoint_sensitivity
//! ```

use rl_ccd_flow::{endpoint_sensitivities, FlowRecipe};
use rl_ccd_netlist::{generate, ClusterClass, DesignSpec, TechNode};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};

fn main() {
    let design = generate(&DesignSpec::new("sens", 1500, TechNode::N7, 52));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&design.netlist);
    let clocks = recipe.clock_schedule(&design.netlist, design.period_ps);
    let report = analyze(
        &design.netlist,
        &graph,
        &Constraints::with_period(design.period_ps),
        &clocks,
        &EndpointMargins::zero(&design.netlist),
    );
    let sens = endpoint_sensitivities(&design.netlist, &graph, &report, 2.0);
    println!(
        "{} violating endpoints (WNS {:.0} ps)\n",
        sens.len(),
        report.wns()
    );
    println!(
        "{:>5} {:>8} {:>8} {:>7} {:>7} {:>8}  class",
        "ep", "need", "clock", "cfix", "dfix", "prefers"
    );
    for s in sens.iter().take(25) {
        println!(
            "{:>5} {:>8.0} {:>8.0} {:>6.0}% {:>6.0}% {:>8}  {:?}",
            s.endpoint,
            s.need_ps,
            s.clock_recoverable_ps,
            100.0 * s.clock_fixability(),
            100.0 * s.data_fixability(),
            if s.prefers_clock() { "clock" } else { "data" },
            design.endpoint_class[s.endpoint],
        );
    }
    // Class-level summary: the ground truth RL-CCD has to rediscover.
    for class in [
        ClusterClass::Normal,
        ClusterClass::Deep,
        ClusterClass::Chain,
    ] {
        let members: Vec<_> = sens
            .iter()
            .filter(|s| design.endpoint_class[s.endpoint] == class)
            .collect();
        if members.is_empty() {
            continue;
        }
        let clockish = members.iter().filter(|s| s.prefers_clock()).count();
        println!(
            "\n{class:?}: {} violating, {clockish} prefer clock ({:.0}%)",
            members.len(),
            100.0 * clockish as f64 / members.len() as f64
        );
    }
}
