//! Trace the placement-optimization flow stage by stage, with and without
//! RL-style prioritization, to see *where* a selection pays off.
//!
//! ```text
//! cargo run --release --example flow_stages
//! ```

use rl_ccd::{RlConfig, Session};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let design = generate(&DesignSpec::new("stages", 1200, TechNode::N7, 46));
    let recipe = FlowRecipe::default();

    // A quick training run to obtain a selection worth tracing.
    let config = RlConfig {
        max_iterations: 8,
        ..RlConfig::default()
    };
    let session = Session::builder()
        .design(design.clone())
        .recipe(recipe.clone())
        .rl_config(config)
        .build()?;
    let outcome = session.train()?;
    println!(
        "traced selection: {} endpoints prioritized\n",
        outcome.best_selection.len()
    );

    let (_, default_trace) = recipe.run_traced(&design, &[]);
    let (_, rl_trace) = recipe.run_traced(&design, &outcome.best_selection);

    println!(
        "{:<14} | {:>10} {:>8} {:>5} | {:>10} {:>8} {:>5}",
        "stage", "TNS(def)", "WNS", "NVE", "TNS(RL)", "WNS", "NVE"
    );
    for (d, r) in default_trace.iter().zip(&rl_trace) {
        println!(
            "{:<14} | {:>10.0} {:>8.0} {:>5} | {:>10.0} {:>8.0} {:>5}",
            d.stage, d.tns_ps, d.wns_ps, d.nve, r.tns_ps, r.wns_ps, r.nve
        );
    }
    let d_final = default_trace.last().expect("trace non-empty");
    let r_final = rl_trace.last().expect("trace non-empty");
    println!(
        "\nsignoff TNS: default {:.0} ps vs RL-CCD {:.0} ps ({:+.1}%)",
        d_final.tns_ps,
        r_final.tns_ps,
        (1.0 - r_final.tns_ps / d_final.tns_ps.min(-1e-9)) * 100.0
    );
    Ok(())
}
