//! Train RL-CCD on one block of the paper's suite and save the parameters
//! (usable later for transfer learning).
//!
//! ```text
//! cargo run --release --example train_block -- [block_index 0..19] [scale] [iterations]
//! cargo run --release --example train_block -- 10 0.5 12
//! ```

use rl_ccd::{save_params, train, CcdEnv, RlConfig};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{block_suite, generate};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let index: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(10);
    let scale: f32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let iters: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(12);

    let suite = block_suite(scale);
    let spec = &suite[index.min(suite.len() - 1)];
    let design = generate(spec);
    println!(
        "training on {} ({} cells, {})",
        spec.name,
        design.netlist.cell_count(),
        spec.tech.name()
    );

    let env = CcdEnv::new(design, FlowRecipe::default(), 24);
    let default = env.default_flow();
    let config = RlConfig {
        max_iterations: iters,
        ..RlConfig::default()
    };
    let outcome = train(&env, &config, None);

    println!(
        "default TNS {:.2} ns → RL-CCD {:.2} ns ({:+.1}%), {} endpoints prioritized in {} iterations",
        default.final_qor.tns_ns(),
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.best_selection.len(),
        outcome.history.len()
    );

    let path = format!("{}_params.txt", spec.name);
    match save_params(&outcome.params, &path) {
        Ok(()) => println!("saved trained parameters to {path}"),
        Err(e) => eprintln!("could not save parameters: {e}"),
    }
}
