//! Train RL-CCD on one block of the paper's suite and save the parameters
//! (usable later for transfer learning).
//!
//! ```text
//! cargo run --release --example train_block -- [block_index 0..19] [scale] [iterations]
//! cargo run --release --example train_block -- 10 0.5 12
//! ```

use rl_ccd::{save_params, RlConfig, Session};
use rl_ccd_netlist::{block_suite, generate};

fn main() -> Result<(), rl_ccd::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let index: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(10);
    let scale: f32 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let iters: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(12);

    let suite = block_suite(scale);
    let spec = &suite[index.min(suite.len() - 1)];
    let design = generate(spec);
    println!(
        "training on {} ({} cells, {})",
        spec.name,
        design.netlist.cell_count(),
        spec.tech.name()
    );

    let config = RlConfig {
        max_iterations: iters,
        ..RlConfig::default()
    };
    let session = Session::builder()
        .design(design)
        .rl_config(config)
        .build()?;
    let default = session.run_flow()?;
    let outcome = session.train()?;

    println!(
        "default TNS {:.2} ns → RL-CCD {:.2} ns ({:+.1}%), {} endpoints prioritized in {} iterations",
        default.final_qor.tns_ns(),
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.best_selection.len(),
        outcome.history.len()
    );

    let path = format!("{}_params.txt", spec.name);
    save_params(&outcome.params, &path)?;
    println!("saved trained parameters to {path}");
    Ok(())
}
