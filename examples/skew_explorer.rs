//! Explore the useful-skew engine: run it with and without endpoint
//! margins, inspect the skew histogram, and trace the worst path before and
//! after — a tour of the substrate under the RL agent.
//!
//! ```text
//! cargo run --release --example skew_explorer
//! ```

use rl_ccd_flow::{
    prioritization_margins, run_useful_skew, skew_histogram, FlowRecipe, MarginMode, UsefulSkewOpts,
};
use rl_ccd_netlist::{generate, DesignSpec, EndpointId, TechNode};
use rl_ccd_sta::{analyze, full_report, Constraints, EndpointMargins, TimingGraph};

fn main() {
    let design = generate(&DesignSpec::new("explorer", 1000, TechNode::N12, 5));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&design.netlist);
    let cons = Constraints::with_period(design.period_ps);
    let zero = EndpointMargins::zero(&design.netlist);

    // Before: balanced clock tree.
    let mut clocks = recipe.clock_schedule(&design.netlist, design.period_ps);
    let before = analyze(&design.netlist, &graph, &cons, &clocks, &zero);
    println!("=== before useful skew ===");
    println!("{}", full_report(&design.netlist, &before, &clocks, 2));

    // Plain run.
    let out = run_useful_skew(
        &design.netlist,
        &graph,
        &cons,
        &mut clocks,
        &zero,
        &UsefulSkewOpts::default(),
    );
    println!(
        "=== after useful skew ({} sweeps, {} moves) ===",
        out.sweeps, out.moves
    );
    println!("{}", full_report(&design.netlist, &out.report, &clocks, 2));

    let (edges, counts) = skew_histogram(&clocks, 6);
    println!("skew histogram:");
    for i in 0..counts.len() {
        println!(
            "  [{:>7.1}, {:>7.1}) {:>4} {}",
            edges[i],
            edges[i + 1],
            counts[i],
            "#".repeat(counts[i].min(60))
        );
    }

    // Margined run: worsen the five mildest violations to WNS and watch the
    // engine redirect its effort (this is RL-CCD's lever).
    let mildest: Vec<EndpointId> = before
        .violating_endpoints()
        .into_iter()
        .rev()
        .take(5)
        .map(EndpointId::new)
        .collect();
    let margins = prioritization_margins(
        &before,
        &mildest,
        MarginMode::OverFixToWns,
        EndpointMargins::zero(&design.netlist),
    );
    let mut clocks2 = recipe.clock_schedule(&design.netlist, design.period_ps);
    run_useful_skew(
        &design.netlist,
        &graph,
        &cons,
        &mut clocks2,
        &margins,
        &UsefulSkewOpts::default(),
    );
    let after2 = analyze(&design.netlist, &graph, &cons, &clocks2, &zero);
    println!("=== margined run: prioritizing the 5 mildest violations ===");
    for &e in &mildest {
        println!(
            "  endpoint e{}: slack {:>8.1} ps → {:>8.1} ps (over-fixed by the engine)",
            e.index(),
            before.endpoint_slack(e.index()),
            after2.endpoint_slack(e.index()),
        );
    }
    println!(
        "plain TNS {:.1} ps vs margined TNS {:.1} ps",
        out.report.tns(),
        after2.tns()
    );
}
