//! Transfer learning (paper §IV-B): pre-train the EP-GNN on one design,
//! reuse it on an unseen design with a fresh encoder/decoder, and compare
//! convergence against training from scratch.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use rl_ccd::{train, with_pretrained_gnn, CcdEnv, RlConfig};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() {
    let config = RlConfig {
        max_iterations: 10,
        patience: 10,
        ..RlConfig::default()
    };

    // Donor: a mid-size 7 nm design.
    let donor_design = generate(&DesignSpec::new("donor", 1200, TechNode::N7, 7));
    println!(
        "pre-training on donor ({} cells)…",
        donor_design.netlist.cell_count()
    );
    let donor_env = CcdEnv::new(donor_design, FlowRecipe::default(), config.fanout_cap);
    let donor = train(&donor_env, &config, None);

    // Unseen target, same technology.
    let target_design = generate(&DesignSpec::new("target", 1500, TechNode::N7, 99));
    println!(
        "target: {} cells, unseen by the donor run",
        target_design.netlist.cell_count()
    );
    let env = CcdEnv::new(target_design, FlowRecipe::default(), config.fanout_cap);
    let default = env.default_flow();

    let scratch = train(&env, &config, None);
    let (_, params, adopted) = with_pretrained_gnn(config.clone(), &donor.params);
    println!("adopted {adopted} pre-trained EP-GNN tensors");
    let transferred = train(&env, &config, Some(params));

    println!(
        "\n{:>5} {:>16} {:>16}   (best TNS so far, ps; default {:.0})",
        "iter", "scratch", "transfer", default.final_qor.tns_ps
    );
    for i in 0..scratch.history.len().max(transferred.history.len()) {
        let s = scratch.history.get(i).map(|h| h.best_so_far);
        let t = transferred.history.get(i).map(|h| h.best_so_far);
        println!(
            "{i:>5} {:>16} {:>16}",
            s.map(|v| format!("{v:.0}")).unwrap_or_default(),
            t.map(|v| format!("{v:.0}")).unwrap_or_default()
        );
    }
    println!(
        "\nscratch best {:+.1}% | transfer best {:+.1}% vs default flow",
        scratch.best_result.tns_gain_over(&default),
        transferred.best_result.tns_gain_over(&default)
    );
}
