//! Transfer learning (paper §IV-B): pre-train the EP-GNN on one design,
//! reuse it on an unseen design with a fresh encoder/decoder, and compare
//! convergence against training from scratch.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use rl_ccd::{with_pretrained_gnn, RlConfig, Session};
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn main() -> Result<(), rl_ccd::Error> {
    let config = RlConfig {
        max_iterations: 10,
        patience: 10,
        ..RlConfig::default()
    };

    // Donor: a mid-size 7 nm design.
    let donor_design = generate(&DesignSpec::new("donor", 1200, TechNode::N7, 7));
    println!(
        "pre-training on donor ({} cells)…",
        donor_design.netlist.cell_count()
    );
    let donor = Session::builder()
        .design(donor_design)
        .rl_config(config.clone())
        .build()?
        .train()?;

    // Unseen target, same technology.
    let target_design = generate(&DesignSpec::new("target", 1500, TechNode::N7, 99));
    println!(
        "target: {} cells, unseen by the donor run",
        target_design.netlist.cell_count()
    );
    let target = Session::builder()
        .design(target_design.clone())
        .rl_config(config.clone())
        .build()?;
    let default = target.run_flow()?;

    let scratch = target.train()?;
    let (_, params, adopted) = with_pretrained_gnn(config.clone(), &donor.params);
    println!("adopted {adopted} pre-trained EP-GNN tensors");
    let transferred = Session::builder()
        .design(target_design)
        .rl_config(config.clone())
        .initial_params(params)
        .build()?
        .train()?;

    println!(
        "\n{:>5} {:>16} {:>16}   (best TNS so far, ps; default {:.0})",
        "iter", "scratch", "transfer", default.final_qor.tns_ps
    );
    for i in 0..scratch.history.len().max(transferred.history.len()) {
        let s = scratch.history.get(i).map(|h| h.best_so_far);
        let t = transferred.history.get(i).map(|h| h.best_so_far);
        println!(
            "{i:>5} {:>16} {:>16}",
            s.map(|v| format!("{v:.0}")).unwrap_or_default(),
            t.map(|v| format!("{v:.0}")).unwrap_or_default()
        );
    }
    println!(
        "\nscratch best {:+.1}% | transfer best {:+.1}% vs default flow",
        scratch.best_result.tns_gain_over(&default),
        transferred.best_result.tns_gain_over(&default)
    );
    Ok(())
}
