//! Integration checks of the cone-overlap masking dynamics the agent
//! exploits: the district asymmetry (deep selections mask chain endpoints,
//! never vice versa) and trajectory-length control via ρ.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::CcdEnv;
use rl_ccd::{RlCcd, RlConfig, SelectionMask};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, ClusterClass, DesignSpec, TechNode};

fn env_with_classes(seed: u64) -> (CcdEnv, Vec<ClusterClass>) {
    let d = generate(&DesignSpec::new("mask", 1200, TechNode::N7, seed));
    let classes = d.endpoint_class.clone();
    let env = CcdEnv::new(d, FlowRecipe::default(), 24);
    let pool_classes = env.pool().iter().map(|&e| classes[e.index()]).collect();
    (env, pool_classes)
}

#[test]
fn district_masking_is_asymmetric() {
    // Districts are paired geographically, so not every seed puts a paired
    // deep+chain pair into the violating pool — but across several seeds
    // many must appear, and wherever they do the asymmetry must hold.
    let mut total_pairs = 0;
    let mut masked = 0;
    for seed in [77u64, 78, 79, 80] {
        let (env, classes) = env_with_classes(seed);
        let cones = env.cones();
        for a in 0..env.pool().len() {
            for b in 0..env.pool().len() {
                if a == b || classes[a] != ClusterClass::Deep || classes[b] != ClusterClass::Chain {
                    continue;
                }
                if cones.overlap_ratio(a, b) > 0.0 {
                    total_pairs += 1;
                    if cones.overlap_ratio(a, b) > 0.3 {
                        masked += 1;
                    }
                    assert!(
                        cones.overlap_ratio(b, a) <= 0.3,
                        "seed {seed}: chain selection must never mask deep ({b}→{a})"
                    );
                }
            }
        }
    }
    assert!(total_pairs >= 5, "too few district pairs: {total_pairs}");
    assert!(
        masked * 10 >= total_pairs * 7,
        "deep should mask chains in most pairs: {masked}/{total_pairs}"
    );
}

#[test]
fn rho_controls_trajectory_length() {
    let (env, _) = env_with_classes(80);
    let steps_at = |rho: f32| {
        let mut cfg = RlConfig::fast();
        cfg.rho = rho;
        let (model, params) = RlCcd::init(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        model.rollout(&params, &env, &mut rng).steps()
    };
    let tight = steps_at(0.1); // aggressive masking → few selections
    let loose = steps_at(0.95); // masking off → select everything
    assert!(tight < loose, "tight {tight} !< loose {loose}");
    assert_eq!(loose, env.pool().len(), "ρ→1 must select the whole pool");
}

#[test]
fn selection_mask_and_rollout_agree() {
    // Replaying a rollout's actions through a fresh SelectionMask produces
    // the same flagged set (the rollout and the mask share semantics).
    let (env, _) = env_with_classes(81);
    let (model, params) = RlCcd::init(RlConfig::fast());
    let mut rng = StdRng::seed_from_u64(9);
    let ro = model.rollout(&params, &env, &mut rng);
    let mut mask = SelectionMask::new(env.pool().len(), RlConfig::fast().rho);
    for e in &ro.selected {
        let local = env.pool().iter().position(|p| p == e).expect("in pool");
        mask.select(local, env.cones());
    }
    assert!(!mask.any_valid(), "rollout must exhaust the pool");
    assert_eq!(mask.selected().len(), ro.steps());
}
