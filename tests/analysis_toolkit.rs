//! Integration of the analysis toolkit around the core flow: sensitivity,
//! histograms, K-worst paths, hold fixing, and serialization working
//! together on the same design.

use rl_ccd_flow::{endpoint_sensitivities, fix_hold, FlowRecipe, HoldFixOpts};
use rl_ccd_netlist::{generate, read_netlist, write_netlist, DesignSpec, TechNode};
use rl_ccd_sta::{
    analyze, qor_delta, worst_paths, Constraints, EndpointMargins, SlackHistogram, TimingGraph,
};

#[test]
fn toolkit_agrees_on_one_design() {
    let d = generate(&DesignSpec::new("toolkit", 900, TechNode::N7, 64));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let cons = Constraints::with_period(d.period_ps);
    let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
    let report = analyze(
        &d.netlist,
        &graph,
        &cons,
        &clocks,
        &EndpointMargins::zero(&d.netlist),
    );

    // Histogram totals = endpoint count; violating mass matches NVE.
    let hist = SlackHistogram::new(&report, -2.0 * d.period_ps, 2.0 * d.period_ps, 16);
    assert_eq!(hist.total(), d.netlist.endpoints().len());
    let negative_mass: usize = hist
        .counts()
        .iter()
        .zip(hist.edges().windows(2))
        .filter(|(_, e)| e[1] <= 0.0)
        .map(|(c, _)| c)
        .sum::<usize>()
        + hist.underflow();
    assert!(negative_mass <= report.nve() + hist.counts()[7].max(1));

    // Sensitivity covers every violation; K-worst paths agree with STA on
    // the top path.
    let sens = endpoint_sensitivities(&d.netlist, &graph, &report, 2.0);
    assert_eq!(sens.len(), report.nve());
    for s in sens.iter().take(3) {
        let paths = worst_paths(&d.netlist, &report, s.endpoint, 2);
        assert!((paths[0].arrival - report.endpoint_arrival(s.endpoint)).abs() < 0.5);
    }
}

#[test]
fn flow_then_holdfix_then_delta() {
    let d = generate(&DesignSpec::new("tk2", 700, TechNode::N12, 65));
    let recipe = FlowRecipe::default();
    let (result, trace) = recipe.run_traced(&d, &[]);
    assert_eq!(trace.len(), 5);

    // Rebuild the post-begin state and run hold fixing on the raw design.
    let mut netlist = d.netlist.clone();
    let mut graph = TimingGraph::new(&netlist);
    let cons = Constraints::with_period(d.period_ps);
    let clocks = recipe.clock_schedule(&netlist, d.period_ps);
    let before = analyze(
        &netlist,
        &graph,
        &cons,
        &clocks,
        &EndpointMargins::zero(&netlist),
    );
    let (inserted, after) = fix_hold(
        &mut netlist,
        &mut graph,
        &cons,
        &clocks,
        &HoldFixOpts {
            max_buffers_per_endpoint: 8,
            max_total_buffers: 2000,
            ..HoldFixOpts::default()
        },
    );
    // QoR delta machinery reports a consistent endpoint partition.
    let delta = qor_delta(&before, &after, 0.5);
    assert_eq!(
        delta.improved + delta.regressed + delta.unchanged,
        netlist.endpoints().len()
    );
    if inserted > 0 {
        // Hold pads can only slow data paths down.
        assert!(delta.tns_delta_ps <= 1.0);
    }
    // And the full flow still reports sane numbers on the original design.
    assert!(result.final_qor.tns_ps >= result.begin.tns_ps);
}

#[test]
fn serialized_design_flows_identically() {
    let d = generate(&DesignSpec::new("tk3", 600, TechNode::N5, 66));
    let mut buf = Vec::new();
    write_netlist(&d.netlist, &mut buf).expect("serialize");
    let loaded = read_netlist(&buf[..]).expect("parse");
    let mut d2 = d.clone();
    d2.netlist = loaded;
    let recipe = FlowRecipe::default();
    let a = recipe.run(&d, &[]);
    let b = recipe.run(&d2, &[]);
    assert_eq!(a.final_qor.tns_ps, b.final_qor.tns_ps);
    assert_eq!(a.final_qor.nve, b.final_qor.nve);
    assert_eq!(a.skews, b.skews);
}
