//! Tenancy edges through the daemon's TCP path: quota and rate limits
//! answered as typed `QuotaExceeded` with honest hints, and canary
//! routing at its 0.0/1.0 boundaries.
//!
//! All timing runs on a [`ManualClock`] shared between the test and the
//! daemon — no wall-clock sleeps decide admissions, so every hint is
//! asserted exactly.

use rl_ccd::{RlCcd, RlConfig};
use rl_ccd_daemon::{Daemon, DaemonConfig, ManualClock, CHALLENGER, CHAMPION, QUOTA_WINDOW_MS};
use rl_ccd_serve::{
    Credentials, DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeClient,
};
use std::sync::Arc;

fn registry(slots: &[&str]) -> ModelRegistry {
    let (_, params) = RlCcd::init(RlConfig::fast());
    let reg = ModelRegistry::new();
    for slot in slots {
        reg.insert_params(*slot, params.clone(), 0.3)
            .expect("insert");
    }
    reg
}

fn query_as(tenant: &str, token: &str) -> QueryRequest {
    QueryRequest {
        model: CHAMPION.into(),
        design: DesignKey {
            name: "tenancy".into(),
            cells: 220,
            tech: "7nm".into(),
            seed: 3,
        },
        mode: Mode::Greedy,
        deadline_ms: Some(30_000),
        auth: Some(Credentials {
            tenant: tenant.into(),
            token: token.into(),
        }),
    }
}

fn daemon_with(slots: &[&str], tenants: &[&str], clock: &ManualClock) -> Daemon {
    let mut daemon = Daemon::start(
        registry(slots),
        DaemonConfig::default(),
        Arc::new(clock.clone()),
    );
    for spec in tenants {
        daemon.tenants().add(spec.parse().expect("tenant spec"));
    }
    daemon.bind_query("127.0.0.1:0").expect("bind query");
    daemon
}

/// A zero-quota tenant authenticates but every query is `QuotaExceeded`
/// with the remainder of the 30-day window as the hint — far above the
/// client's retryable ceiling, so it surfaces instead of sleeping.
#[test]
fn zero_quota_tenant_is_quota_exceeded_over_the_wire() {
    let clock = ManualClock::at(12_345);
    let daemon = daemon_with(&[CHAMPION], &["frozen:tok:10:5:0"], &clock);
    let addr = daemon.query_addr().unwrap();
    let mut client = ServeClient::connect(addr).expect("connect");

    let r = client.query(query_as("frozen", "tok")).unwrap();
    let Response::QuotaExceeded { retry_after_ms } = r else {
        panic!("zero quota must be QuotaExceeded, got {r:?}")
    };
    assert_eq!(retry_after_ms, QUOTA_WINDOW_MS - 12_345);
    assert!(
        retry_after_ms > ServeClient::MAX_RETRYABLE_HINT_MS,
        "a spent quota's horizon must not be slept on by clients"
    );
    // Auth still gates first: a wrong token is a denial, not a throttle.
    let r = client.query(query_as("frozen", "wrong")).unwrap();
    assert!(
        matches!(r, Response::Err { .. }),
        "bad token is denied even for a disabled account: {r:?}"
    );

    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0);
    assert_eq!(report.tenants[0].usage.throttled, 1);
    assert_eq!(report.tenants[0].usage.accepted, 0);
}

/// The token bucket refills with explicit clock steps, observed entirely
/// through TCP: burst drains, the hint is the exact refill horizon,
/// honoring it admits exactly one more request, and stepping one
/// millisecond short of the horizon still throttles.
#[test]
fn bucket_refill_is_driven_by_clock_steps_not_wall_time() {
    let clock = ManualClock::at(0);
    // 2 req/s, burst 3.
    let daemon = daemon_with(&[CHAMPION], &["acme:tok:2:3:1000000"], &clock);
    let addr = daemon.query_addr().unwrap();
    let mut client = ServeClient::connect(addr).expect("connect");

    for i in 0..3 {
        let r = client.query(query_as("acme", "tok")).unwrap();
        assert!(matches!(r, Response::Ok(_)), "burst request {i}: {r:?}");
    }
    let r = client.query(query_as("acme", "tok")).unwrap();
    let Response::QuotaExceeded { retry_after_ms } = r else {
        panic!("empty bucket must throttle, got {r:?}")
    };
    assert_eq!(
        retry_after_ms, 500,
        "one token at 2/s is half a second away"
    );

    // One millisecond short of the horizon: still throttled, the hint
    // shrunk to the last sliver of the refill.
    clock.advance(499);
    let r = client.query(query_as("acme", "tok")).unwrap();
    let Response::QuotaExceeded { retry_after_ms } = r else {
        panic!("499 ms is not enough, got {r:?}")
    };
    assert!(
        (1..=2).contains(&retry_after_ms),
        "last-sliver hint, got {retry_after_ms}"
    );

    // Honoring the hint fills the token exactly.
    clock.advance(retry_after_ms);
    let r = client.query(query_as("acme", "tok")).unwrap();
    assert!(matches!(r, Response::Ok(_)), "{r:?}");

    // A long idle caps at burst: exactly 3 more, then throttled again.
    clock.advance(3_600_000);
    for i in 0..3 {
        let r = client.query(query_as("acme", "tok")).unwrap();
        assert!(matches!(r, Response::Ok(_)), "post-idle request {i}: {r:?}");
    }
    assert!(matches!(
        client.query(query_as("acme", "tok")).unwrap(),
        Response::QuotaExceeded { .. }
    ));

    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0);
    assert_eq!(report.tenants[0].usage.accepted, 7);
    assert_eq!(report.tenants[0].usage.throttled, 3);
}

/// Canary boundaries over the wire: fraction 0.0 routes every tenant to
/// the champion, 1.0 routes every tenant to the challenger, and the
/// answering slot is visible in each reply's `model` field.
#[test]
fn canary_zero_and_one_route_nobody_and_everybody() {
    let clock = ManualClock::at(0);
    let tenants = ["t0", "t1", "t2", "t3", "t4"];
    let specs: Vec<String> = tenants
        .iter()
        .map(|t| format!("{t}:tok:100:100:1000"))
        .collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let daemon = daemon_with(&[CHAMPION, CHALLENGER], &spec_refs, &clock);
    let addr = daemon.query_addr().unwrap();
    let mut client = ServeClient::connect(addr).expect("connect");

    let answered_by = |client: &mut ServeClient, tenant: &str| -> String {
        match client.query(query_as(tenant, "tok")).unwrap() {
            Response::Ok(reply) => reply.model,
            other => panic!("canary query for {tenant} rejected: {other:?}"),
        }
    };

    // Default fraction is 0.0: nobody routes to the challenger.
    for t in &tenants {
        assert_eq!(answered_by(&mut client, t), CHAMPION, "fraction 0.0");
    }
    // 1.0: everybody does, tenant hash notwithstanding.
    daemon.promoter().set_canary(1.0).unwrap();
    for t in &tenants {
        assert_eq!(answered_by(&mut client, t), CHALLENGER, "fraction 1.0");
    }
    // Back to 0.0: the rewrite stops immediately.
    daemon.promoter().set_canary(0.0).unwrap();
    for t in &tenants {
        assert_eq!(answered_by(&mut client, t), CHAMPION, "fraction reset");
    }

    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0);
    let accepted: u64 = report.tenants.iter().map(|t| t.usage.accepted).sum();
    assert_eq!(accepted, 15, "three rounds across five tenants");
}
