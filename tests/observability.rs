//! The observability layer end to end: a traced run emits a schema-valid
//! JSONL stream covering spans and metrics from STA, the flow, and the
//! training loop; a detached recorder sees nothing; and instrumentation
//! never changes the numbers.

use rl_ccd::{RlConfig, Session};
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};
use rl_ccd_obs::Recorder;
use std::path::PathBuf;

fn tiny_design() -> GeneratedDesign {
    generate(&DesignSpec::new("obs-e2e", 500, TechNode::N7, 23))
}

fn fast_cfg() -> RlConfig {
    let mut cfg = RlConfig::fast();
    cfg.workers = 3;
    cfg.max_iterations = 2;
    cfg.patience = 2;
    cfg
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rl-ccd-obs-{name}-{}.jsonl", std::process::id()))
}

/// The schema snapshot: a tiny deterministic flow + training run must emit
/// a valid `rl-ccd-trace` v1 stream whose span and metric names cover the
/// instrumented layers (sta, flow, core).
#[test]
fn traced_run_emits_schema_valid_jsonl_covering_all_layers() {
    let recorder = Recorder::new();
    recorder.set_meta("design", "obs-e2e");
    let session = Session::builder()
        .design(tiny_design())
        .rl_config(fast_cfg())
        .recorder(recorder.clone())
        .build()
        .expect("session");
    session.run_flow().expect("flow");
    session.train().expect("train");

    let path = tmp("snapshot");
    session.write_trace(&path).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace file");
    let summary = rl_ccd_obs::validate_jsonl(text.as_bytes()).expect("schema-valid trace");
    let _ = std::fs::remove_file(&path);

    assert_eq!(summary.version, rl_ccd_obs::TRACE_SCHEMA_VERSION);
    assert_eq!(
        summary.meta.get("design").map(String::as_str),
        Some("obs-e2e")
    );
    assert!(summary.spans > 0 && summary.metrics > 0);

    // Spans from every instrumented layer.
    for span in [
        "sta.full_recompute",
        "flow.run",
        "flow.useful_skew",
        "flow.signoff",
        "train.run",
        "train.iteration",
        "train.rollout",
        "train.greedy_eval",
    ] {
        assert!(
            summary.span_names.iter().any(|n| n == span),
            "span {span} missing from {:?}",
            summary.span_names
        );
    }
    // Metrics from every instrumented layer.
    for metric in [
        "sta.incremental.moves",
        "sta.incremental.frontier_cells",
        "flow.useful_skew.sweeps",
        "flow.useful_skew.moves",
        "nn.tape.backward_passes",
        "train.rollout.reward",
        "train.iterations",
    ] {
        assert!(
            summary.metric_names.iter().any(|n| n == metric),
            "metric {metric} missing from {:?}",
            summary.metric_names
        );
    }
}

/// A recorder that is never attached collects nothing, even while the
/// instrumented hot paths run.
#[test]
fn detached_recorder_sees_nothing() {
    let recorder = Recorder::new();
    let session = Session::builder()
        .design(tiny_design())
        .build()
        .expect("session");
    session.run_flow().expect("flow");
    assert!(recorder.is_empty(), "detached recorder must stay empty");
    assert!(session.recorder().is_none());
    assert!(session.summary().is_none());
}

/// Instrumentation is observational only: the same design produces
/// bit-identical QoR with and without a recorder attached.
#[test]
fn instrumented_and_uninstrumented_flows_agree() {
    let design = tiny_design();
    let plain = Session::builder()
        .design(design.clone())
        .build()
        .expect("session")
        .run_flow()
        .expect("flow");
    let traced_session = Session::builder()
        .design(design)
        .recorder(Recorder::new())
        .build()
        .expect("session");
    let traced = traced_session.run_flow().expect("flow");

    assert_eq!(plain.final_qor.wns_ps, traced.final_qor.wns_ps);
    assert_eq!(plain.final_qor.tns_ps, traced.final_qor.tns_ps);
    assert_eq!(plain.final_qor.nve, traced.final_qor.nve);
    assert_eq!(plain.final_qor.power_mw, traced.final_qor.power_mw);
    // And the traced run did record the flow.
    let rec = traced_session.recorder().expect("recorder present");
    assert!(!rec.is_empty());
    assert!(rec.spans().iter().any(|s| s.name == "flow.run"));
}

/// Training with a recorder attached matches training without one —
/// rollout seeds and update order are untouched by span collection.
#[test]
fn instrumented_and_uninstrumented_training_agree() {
    let design = tiny_design();
    let cfg = fast_cfg();
    let plain = Session::builder()
        .design(design.clone())
        .rl_config(cfg.clone())
        .build()
        .expect("session")
        .train()
        .expect("train");
    let traced = Session::builder()
        .design(design)
        .rl_config(cfg)
        .recorder(Recorder::new())
        .build()
        .expect("session")
        .train()
        .expect("train");

    assert_eq!(plain.best_selection, traced.best_selection);
    assert_eq!(
        plain.best_result.final_qor.tns_ps,
        traced.best_result.final_qor.tns_ps
    );
    assert_eq!(plain.history, traced.history);
}
