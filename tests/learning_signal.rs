//! The central scientific claim of the reproduction: the environment gives
//! intelligent endpoint selection a real edge, and the over-fix mechanism
//! behaves as the paper describes.

use rl_ccd_flow::{prioritization_margins, FlowRecipe, MarginMode};
use rl_ccd_netlist::{generate, ClusterClass, DesignSpec, EndpointId, TechNode};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};

fn class_selection(
    d: &rl_ccd_netlist::GeneratedDesign,
    viol: &[usize],
    class: ClusterClass,
) -> Vec<EndpointId> {
    viol.iter()
        .copied()
        .filter(|&i| d.endpoint_class[i] == class && d.netlist.endpoints()[i].is_register())
        .map(EndpointId::new)
        .collect()
}

#[test]
fn selection_quality_ordering_holds() {
    // The learnable structure: prioritizing the clock-fixable (deep)
    // endpoints must beat prioritizing the data-fixable (chain) endpoints
    // on every seed, decisively on average — and must beat the native flow
    // on at least some designs. (Gains vary a lot per design, exactly like
    // the paper's 3.6 %–64 % spread.)
    let mut deep_minus_chain = Vec::new();
    let mut deep_gains = Vec::new();
    for seed in [44u64, 46, 49, 52] {
        let d = generate(&DesignSpec::new("order", 1500, TechNode::N7, seed));
        let recipe = FlowRecipe::default();
        let graph = TimingGraph::new(&d.netlist);
        let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
        let rep = analyze(
            &d.netlist,
            &graph,
            &Constraints::with_period(d.period_ps),
            &clocks,
            &EndpointMargins::zero(&d.netlist),
        );
        let viol = rep.violating_endpoints();
        let deep = class_selection(&d, &viol, ClusterClass::Deep);
        let chain = class_selection(&d, &viol, ClusterClass::Chain);
        if deep.is_empty() || chain.is_empty() {
            continue;
        }
        let base = recipe.run(&d, &[]);
        let g_deep = recipe.run(&d, &deep).tns_gain_over(&base);
        let g_chain = recipe.run(&d, &chain).tns_gain_over(&base);
        deep_minus_chain.push(g_deep - g_chain);
        deep_gains.push(g_deep);
    }
    assert!(
        deep_minus_chain.len() >= 3,
        "too few seeds with both classes"
    );
    for (i, &gap) in deep_minus_chain.iter().enumerate() {
        assert!(
            gap > 0.0,
            "seed #{i}: deep selection must beat chain selection ({gap:+.1})"
        );
    }
    let mean_gap = deep_minus_chain.iter().sum::<f64>() / deep_minus_chain.len() as f64;
    assert!(
        mean_gap > 15.0,
        "mean deep-vs-chain gap too small: {mean_gap:+.1}%"
    );
    let best_deep = deep_gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_deep > 5.0,
        "deep selection should clearly beat the native flow somewhere: best {best_deep:+.1}%"
    );
}

#[test]
fn margins_overfix_selected_endpoints() {
    // Algorithm 1 lines 14–16 end to end: after a margined skew run, the
    // selected endpoints' true slack exceeds what fix-to-zero would give.
    let d = generate(&DesignSpec::new("overfix", 900, TechNode::N7, 51));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let cons = Constraints::with_period(d.period_ps);
    let zero = EndpointMargins::zero(&d.netlist);
    let clocks0 = recipe.clock_schedule(&d.netlist, d.period_ps);
    let before = analyze(&d.netlist, &graph, &cons, &clocks0, &zero);
    // The mildest violations have the largest margins — the clearest
    // over-fix signal.
    let chosen: Vec<EndpointId> = before
        .violating_endpoints()
        .into_iter()
        .rev()
        .filter(|&i| d.netlist.endpoints()[i].is_register())
        .take(4)
        .map(EndpointId::new)
        .collect();
    let margins = prioritization_margins(
        &before,
        &chosen,
        MarginMode::OverFixToWns,
        EndpointMargins::zero(&d.netlist),
    );
    let mut clocks = clocks0.clone();
    rl_ccd_flow::run_useful_skew(
        &d.netlist,
        &graph,
        &cons,
        &mut clocks,
        &margins,
        &rl_ccd_flow::UsefulSkewOpts::default(),
    );
    let after = analyze(&d.netlist, &graph, &cons, &clocks, &zero);
    let overfixed = chosen
        .iter()
        .filter(|&&e| after.endpoint_slack(e.index()) > 10.0)
        .count();
    assert!(
        overfixed >= chosen.len() / 2,
        "only {overfixed}/{} selected endpoints were over-fixed",
        chosen.len()
    );
}
