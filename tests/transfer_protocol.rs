//! The §IV-B transfer-learning protocol end to end at test scale.

use rl_ccd::{try_train, with_pretrained_gnn, CcdEnv, RlConfig, TrainSession};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn fast() -> RlConfig {
    let mut cfg = RlConfig::fast();
    cfg.workers = 3;
    cfg.max_iterations = 2;
    cfg.patience = 2;
    cfg
}

#[test]
fn gnn_transfers_and_trains_on_an_unseen_design() {
    // Donor: train briefly on one design.
    let donor_design = generate(&DesignSpec::new("donor", 500, TechNode::N7, 81));
    let donor_env = CcdEnv::new(donor_design, FlowRecipe::default(), 24);
    let cfg = fast();
    let donor = try_train(&donor_env, &cfg, TrainSession::default()).expect("donor training");

    // Target: unseen design, same technology, adopted EP-GNN. (Whether the
    // short donor run updated the weights depends on batch variance; the
    // adoption mechanics are what this test pins down.)
    let target_design = generate(&DesignSpec::new("target", 600, TechNode::N7, 82));
    let target_env = CcdEnv::new(target_design, FlowRecipe::default(), 24);
    let (_, params, adopted) = with_pretrained_gnn(cfg.clone(), &donor.params);
    assert!(adopted >= 8, "EP-GNN has ≥ 8 tensors (3 layers + FC)");
    // Adopted params equal the donor's GNN exactly.
    for (name, t) in donor.params.iter() {
        if name.starts_with("gnn.") {
            assert_eq!(params.get(name), Some(t), "{name} not adopted");
        }
    }
    let transferred = try_train(
        &target_env,
        &cfg,
        TrainSession {
            initial: Some(params),
            ..TrainSession::default()
        },
    )
    .expect("transfer training");
    assert!(!transferred.history.is_empty());
    assert!(transferred.best_result.final_qor.tns_ps <= 0.0);
    // The champion never falls below the native flow (fallback guarantee).
    let default = target_env.default_flow();
    assert!(transferred.best_result.final_qor.tns_ps >= default.final_qor.tns_ps);
}

#[test]
fn transfer_is_deterministic() {
    let donor_design = generate(&DesignSpec::new("dd", 450, TechNode::N12, 83));
    let donor_env = CcdEnv::new(donor_design, FlowRecipe::default(), 24);
    let cfg = fast();
    let donor = try_train(&donor_env, &cfg, TrainSession::default()).expect("donor training");
    let run = || {
        let target = generate(&DesignSpec::new("tt", 500, TechNode::N12, 84));
        let env = CcdEnv::new(target, FlowRecipe::default(), 24);
        let (_, params, _) = with_pretrained_gnn(cfg.clone(), &donor.params);
        try_train(
            &env,
            &cfg,
            TrainSession {
                initial: Some(params),
                ..TrainSession::default()
            },
        )
        .expect("transfer training")
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_selection, b.best_selection);
    assert_eq!(
        a.best_result.final_qor.tns_ps,
        b.best_result.final_qor.tns_ps
    );
}
