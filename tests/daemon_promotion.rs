//! Daemon promotion acceptance: zero-downtime hot swap, gated
//! champion/challenger promotion, and rollback.
//!
//! The contracts under test:
//!
//! - continuous tenant traffic across `load` → eval-gate → `promote` →
//!   `rollback` drops nothing and every single response is **whole
//!   version**: its selection equals the sequential reference for the
//!   version the reply claims, never a mix of old and new weights;
//! - per connection the observed version sequence switches atomically —
//!   champion's version, then the challenger's, then (after rollback)
//!   the champion's again, with no other transitions;
//! - promoting a **bit-identical** checkpoint leaves greedy selections
//!   byte-for-byte unchanged, before, during, and after the swap;
//! - the hot swap stays whole-version under injected network chaos
//!   (latency, torn frames, a connection reset) on the streaming client.

use rl_ccd::gate::GateSpec;
use rl_ccd::{evaluate_policy, save_training_state, RlCcd, RlConfig, TrainingState};
use rl_ccd_daemon::{
    AdminClient, AdminReply, AdminRequest, Daemon, DaemonConfig, SystemClock, CHALLENGER, CHAMPION,
};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, Library, TechNode};
use rl_ccd_serve::{
    Credentials, DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeClient, ServeConfig,
};
use rl_ccd_wire::{NetFaultPlan, RetryPolicy};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TENANT: &str = "acme";
const TOKEN: &str = "s3cret";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rl_ccd_daemon_promotion_{tag}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Saves a deterministic checkpoint: `seed` pins the weights,
/// `next_iteration` becomes the served version.
fn save_ckpt(dir: &Path, seed: u64, next_iteration: usize) {
    let config = RlConfig {
        seed,
        ..RlConfig::fast()
    };
    let (_, params) = RlCcd::init(config.clone());
    let state = TrainingState {
        next_iteration,
        seed_base: config.seed,
        best_reward: -1.0,
        best_mean: -2.0,
        stale: 0,
        best_selection: vec![],
        params,
        adam: rl_ccd_nn::Adam::new(config.learning_rate),
        history: vec![],
        faults: vec![],
    };
    save_training_state(&state, dir).expect("save checkpoint");
}

fn design_key() -> DesignKey {
    DesignKey {
        name: "hotswap".into(),
        cells: 220,
        tech: "7nm".into(),
        seed: 3,
    }
}

/// The sequential reference for a checkpoint dir, assembled exactly the
/// way the registry assembles it (config inferred from shapes).
fn reference_selection(dir: &Path, rho: f32, key: &DesignKey, fanout_cap: usize) -> Vec<usize> {
    let entry = ModelRegistry::prepare("ref", dir, rho).expect("prepare reference");
    let tech = Library::parse_tech(&key.tech).expect("known tech");
    let design = generate(&DesignSpec::new(
        key.name.clone(),
        key.cells,
        tech,
        key.seed,
    ));
    let env = rl_ccd::CcdEnv::new(design, FlowRecipe::default(), fanout_cap);
    evaluate_policy(&entry.model, &entry.params, &env, 0, 0)
        .greedy_selection
        .iter()
        .map(|e| e.index())
        .collect()
}

/// A one-design, infinitely lax gate: still runs (and is audited), but
/// never blocks the promotions these tests choreograph.
fn lax_gate() -> GateSpec {
    GateSpec {
        designs: vec![DesignSpec::new("gate_tiny", 200, TechNode::N7, 1)],
        samples: 0,
        seed: 1,
        fanout_cap: 24,
        tolerance: f64::INFINITY,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 2,
        window: Duration::from_millis(1),
        workers: 2,
        fanout_cap: RlConfig::fast().fanout_cap,
        ..ServeConfig::default()
    }
}

fn creds() -> Option<Credentials> {
    Some(Credentials {
        tenant: TENANT.into(),
        token: TOKEN.into(),
    })
}

fn champion_query() -> QueryRequest {
    QueryRequest {
        model: CHAMPION.into(),
        design: design_key(),
        mode: Mode::Greedy,
        deadline_ms: Some(30_000),
        auth: creds(),
    }
}

fn start_daemon(champ_dir: &Path, rho: f32) -> Daemon {
    let registry = ModelRegistry::new();
    registry
        .load(CHAMPION, champ_dir, rho)
        .expect("load champion");
    let mut daemon = Daemon::start(
        registry,
        DaemonConfig {
            serve: serve_config(),
            rho,
            gate: lax_gate(),
            ..DaemonConfig::default()
        },
        Arc::new(SystemClock),
    );
    daemon.tenants().add(
        format!("{TENANT}:{TOKEN}:100000:100000:100000000")
            .parse()
            .unwrap(),
    );
    daemon.bind_query("127.0.0.1:0").expect("bind query");
    daemon.bind_admin("127.0.0.1:0").expect("bind admin");
    daemon
}

/// Counts version transitions in one connection's observed sequence.
fn transitions(seq: &[usize]) -> usize {
    seq.windows(2).filter(|w| w[0] != w[1]).count()
}

/// The headline acceptance run: four streaming tenants ride straight
/// through load → gate → promote → rollback. Nothing is dropped, every
/// response is whole-version against the sequential reference for the
/// version it claims, and each connection sees at most the two real
/// transitions (promote, rollback) — the swap is atomic.
#[test]
fn promotion_is_zero_downtime_and_every_response_is_whole_version() {
    let rho = 0.3;
    let champ_dir = tmp_dir("zero_champ");
    let chall_dir = tmp_dir("zero_chall");
    save_ckpt(&champ_dir, 5, 1);
    save_ckpt(&chall_dir, 99, 2); // different weights AND version
    let key = design_key();
    let fanout_cap = serve_config().fanout_cap;
    let expected: HashMap<usize, Vec<usize>> = HashMap::from([
        (1, reference_selection(&champ_dir, rho, &key, fanout_cap)),
        (2, reference_selection(&chall_dir, rho, &key, fanout_cap)),
    ]);
    assert_ne!(
        expected[&1], expected[&2],
        "the two checkpoints must answer differently for the \
         whole-version check to mean anything"
    );

    let daemon = start_daemon(&champ_dir, rho);
    let query_addr = daemon.query_addr().unwrap();
    let admin = AdminClient::new(daemon.admin_addr().unwrap(), None);

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(query_addr).expect("connect");
                let mut versions = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let resp = client.query(champion_query()).expect("transport");
                    let Response::Ok(reply) = resp else {
                        panic!("streaming query rejected mid-swap: {resp:?}")
                    };
                    let want = expected
                        .get(&reply.version)
                        .unwrap_or_else(|| panic!("unknown version {}", reply.version));
                    assert_eq!(
                        &reply.selection, want,
                        "version {} reply does not match that version's \
                         sequential reference: torn swap",
                        reply.version
                    );
                    versions.push(reply.version);
                }
                versions
            })
        })
        .collect();

    // Let traffic establish on the champion, then run the promotion
    // choreography over the admin port while the clients stream.
    std::thread::sleep(Duration::from_millis(100));
    let r = admin
        .call(&AdminRequest::Load {
            slot: CHALLENGER.into(),
            dir: chall_dir.to_string_lossy().into_owned(),
            rho,
        })
        .unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    let r = admin.call(&AdminRequest::Gate).unwrap();
    let AdminReply::Ok { info } = r else {
        panic!("gate dry run failed: {r:?}")
    };
    assert!(info.contains("pass"), "lax gate passes: {info}");
    let r = admin.call(&AdminRequest::Promote { force: false }).unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    // The challenger's weights now answer the champion slot.
    let mut probe = ServeClient::connect(query_addr).expect("connect probe");
    let Response::Ok(reply) = probe.query(champion_query()).unwrap() else {
        panic!("probe after promote")
    };
    assert_eq!(
        reply.version, 2,
        "champion slot serves the promoted version"
    );
    std::thread::sleep(Duration::from_millis(100));
    let r = admin.call(&AdminRequest::Rollback).unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    let Response::Ok(reply) = probe.query(champion_query()).unwrap() else {
        panic!("probe after rollback")
    };
    assert_eq!(reply.version, 1, "rollback restored the old champion");
    std::thread::sleep(Duration::from_millis(100));

    stop.store(true, Ordering::SeqCst);
    let mut total = 0usize;
    for client in clients {
        let versions = client.join().expect("client thread");
        assert!(!versions.is_empty(), "client streamed zero queries");
        assert_eq!(versions[0], 1, "traffic started on the champion");
        assert!(
            transitions(&versions) <= 2,
            "a connection may see exactly the promote and rollback \
             transitions, nothing else: {versions:?}"
        );
        total += versions.len();
    }
    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0, "zero downtime means zero drops");
    assert_eq!(
        report.tenants[0].usage.accepted as usize,
        total + 2,
        "every streamed query (plus the two probes) was admitted"
    );
}

/// Promoting a checkpoint with identical bytes is invisible: greedy
/// selections are bit-identical before, after, and after rollback, and
/// the gate scores the two checkpoints exactly equal.
#[test]
fn promoting_an_identical_checkpoint_keeps_selections_bit_identical() {
    let rho = 0.3;
    let champ_dir = tmp_dir("ident_champ");
    let chall_dir = tmp_dir("ident_chall");
    save_ckpt(&champ_dir, 5, 1);
    save_ckpt(&chall_dir, 5, 1); // same seed, same iteration: same bytes

    let daemon = start_daemon(&champ_dir, rho);
    let query_addr = daemon.query_addr().unwrap();
    let admin = AdminClient::new(daemon.admin_addr().unwrap(), None);

    let mut client = ServeClient::connect(query_addr).expect("connect");
    let Response::Ok(before) = client.query(champion_query()).unwrap() else {
        panic!("pre-promotion query")
    };

    let r = admin
        .call(&AdminRequest::Load {
            slot: CHALLENGER.into(),
            dir: chall_dir.to_string_lossy().into_owned(),
            rho,
        })
        .unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    // Identical bytes share a fingerprint: the status report proves the
    // two slots hold the same checkpoint.
    let AdminReply::Status(status) = admin.call(&AdminRequest::Status).unwrap() else {
        panic!("status")
    };
    let champ_fp = status.champion.as_ref().unwrap().fingerprint;
    let chall_fp = status.challenger.as_ref().unwrap().fingerprint;
    assert_eq!(champ_fp, chall_fp, "identical checkpoint bytes");

    let r = admin.call(&AdminRequest::Promote { force: false }).unwrap();
    let AdminReply::Ok { info } = r else {
        panic!("identical checkpoints must pass the gate: {r:?}")
    };
    assert!(info.contains("pass"), "{info}");

    let Response::Ok(after) = client.query(champion_query()).unwrap() else {
        panic!("post-promotion query")
    };
    assert_eq!(
        before.selection, after.selection,
        "promoting identical bytes changed an answer"
    );
    assert_eq!(
        before.version, after.version,
        "identical state, same version"
    );

    let r = admin.call(&AdminRequest::Rollback).unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    let Response::Ok(restored) = client.query(champion_query()).unwrap() else {
        panic!("post-rollback query")
    };
    assert_eq!(before.selection, restored.selection);

    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0);
}

/// S3 chaos variant: the streaming client weathers injected latency,
/// adversarial frame segmentation, and a mid-stream connection reset
/// while the daemon promotes underneath it — and still sees only
/// whole-version responses.
#[test]
fn hot_swap_stays_whole_version_under_client_chaos() {
    let rho = 0.3;
    let champ_dir = tmp_dir("chaos_champ");
    let chall_dir = tmp_dir("chaos_chall");
    save_ckpt(&champ_dir, 5, 1);
    save_ckpt(&chall_dir, 99, 2);
    let key = design_key();
    let fanout_cap = serve_config().fanout_cap;
    let expected: HashMap<usize, Vec<usize>> = HashMap::from([
        (1, reference_selection(&champ_dir, rho, &key, fanout_cap)),
        (2, reference_selection(&chall_dir, rho, &key, fanout_cap)),
    ]);

    let daemon = start_daemon(&champ_dir, rho);
    let query_addr = daemon.query_addr().unwrap();
    let admin = AdminClient::new(daemon.admin_addr().unwrap(), None);
    let r = admin
        .call(&AdminRequest::Load {
            slot: CHALLENGER.into(),
            dir: chall_dir.to_string_lossy().into_owned(),
            rho,
        })
        .unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");

    // Frames on the client connection interleave write/read per query:
    // delay the second query's request, tear the third's reply into
    // 3-byte segments, reset the socket on the fourth's request (the
    // retry policy reconnects and re-issues; frame numbering resumes, so
    // the reset cannot re-fire).
    let plan = Arc::new(
        NetFaultPlan::none()
            .with_delay(0, 2, 20)
            .with_segmented(0, 5, 3)
            .with_reset(0, 6),
    );
    let promoted = Arc::new(AtomicBool::new(false));
    let streamer = {
        let plan = Arc::clone(&plan);
        let promoted = Arc::clone(&promoted);
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut client = ServeClient::builder()
                .addr(query_addr)
                .retry(RetryPolicy::seeded(13))
                .chaos(plan, 0)
                .connect()
                .expect("connect chaos client");
            let mut versions = Vec::new();
            // Keep streaming until we have seen traffic on both sides of
            // the promotion (bounded: the promote flag plus 3 more).
            let mut after_promote = 0usize;
            while after_promote < 3 {
                let resp = client.query(champion_query()).expect("chaos transport");
                let Response::Ok(reply) = resp else {
                    panic!("chaos stream rejected: {resp:?}")
                };
                assert_eq!(
                    &reply.selection, &expected[&reply.version],
                    "torn response under chaos (version {})",
                    reply.version
                );
                versions.push(reply.version);
                if promoted.load(Ordering::SeqCst) {
                    after_promote += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            (versions, client.reconnects())
        })
    };

    std::thread::sleep(Duration::from_millis(60));
    let r = admin.call(&AdminRequest::Promote { force: false }).unwrap();
    assert!(matches!(r, AdminReply::Ok { .. }), "{r:?}");
    promoted.store(true, Ordering::SeqCst);

    let (versions, reconnects) = streamer.join().expect("chaos streamer");
    assert!(plan.fired() >= 2, "chaos coordinates were actually hit");
    assert!(reconnects >= 1, "the reset forced a reconnect");
    assert_eq!(
        *versions.last().unwrap(),
        2,
        "the stream ended on the promoted version: {versions:?}"
    );
    assert!(
        transitions(&versions) <= 1,
        "one promote, at most one transition: {versions:?}"
    );
    let report = daemon.shutdown();
    assert_eq!(report.drain.dropped(), 0);
}
