//! End-to-end integration: generator → STA → flow → RL training, asserting
//! the cross-crate contracts the paper's method depends on.

use rl_ccd::{try_train, CcdEnv, RlConfig, TrainSession};
use rl_ccd_flow::{FlowRecipe, MarginMode};
use rl_ccd_netlist::{generate, DesignSpec, TechNode};

fn fast_cfg() -> RlConfig {
    let mut cfg = RlConfig::fast();
    cfg.workers = 3;
    cfg.max_iterations = 3;
    cfg.patience = 3;
    cfg
}

#[test]
fn full_pipeline_runs_and_improves_begin_state() {
    let design = generate(&DesignSpec::new("e2e", 700, TechNode::N7, 11));
    let env = CcdEnv::new(design, FlowRecipe::default(), 24);
    let default = env.default_flow();
    assert!(
        default.final_qor.tns_ps > default.begin.tns_ps,
        "flow must improve the begin state"
    );
    let outcome = try_train(&env, &fast_cfg(), TrainSession::default()).expect("training");
    // The champion selection's replayed reward matches the stored result.
    let replay = env.evaluate(&outcome.best_selection);
    assert_eq!(
        replay.final_qor.tns_ps, outcome.best_result.final_qor.tns_ps,
        "training results must be replayable (same-seed determinism)"
    );
    // The agent never selects outside the violating pool.
    for e in &outcome.best_selection {
        assert!(env.pool().contains(e));
    }
}

#[test]
fn same_seed_same_everything() {
    let build = || {
        let design = generate(&DesignSpec::new("det", 600, TechNode::N12, 5));
        let env = CcdEnv::new(design, FlowRecipe::default(), 24);
        try_train(&env, &fast_cfg(), TrainSession::default()).expect("training")
    };
    let a = build();
    let b = build();
    assert_eq!(a.best_selection, b.best_selection);
    assert_eq!(
        a.best_result.final_qor.tns_ps,
        b.best_result.final_qor.tns_ps
    );
    assert_eq!(a.history.len(), b.history.len());
    for (ha, hb) in a.history.iter().zip(&b.history) {
        assert_eq!(ha.mean_reward, hb.mean_reward);
    }
}

#[test]
fn margin_mode_is_part_of_the_recipe() {
    let design = generate(&DesignSpec::new("mm", 700, TechNode::N7, 13));
    let under = FlowRecipe {
        margin_mode: MarginMode::UnderFix,
        ..FlowRecipe::default()
    };
    let env_over = CcdEnv::new(design.clone(), FlowRecipe::default(), 24);
    let env_under = CcdEnv::new(design, under, 24);
    // Same selection, different margin modes → different outcomes.
    let sel: Vec<_> = env_over.pool().iter().rev().copied().take(5).collect();
    let over = env_over.evaluate(&sel);
    let under = env_under.evaluate(&sel);
    assert_ne!(over.final_qor.tns_ps, under.final_qor.tns_ps);
    // And the default flows (empty selection) are identical: margin mode
    // only matters when something is prioritized.
    assert_eq!(
        env_over.default_flow().final_qor.tns_ps,
        env_under.default_flow().final_qor.tns_ps
    );
}
