//! Cross-crate contracts between the netlist, STA, and flow substrates.

use rl_ccd_flow::{optimize_datapath, recover_power, DatapathOpts, FlowRecipe};
use rl_ccd_netlist::{analyze_power, generate, ClusterClass, DesignSpec, TechNode};
use rl_ccd_sta::{analyze, Constraints, EndpointMargins, TimingGraph};

#[test]
fn datapath_mutations_keep_netlist_and_sta_consistent() {
    let d = generate(&DesignSpec::new("mut", 800, TechNode::N7, 17));
    let mut netlist = d.netlist.clone();
    let mut graph = TimingGraph::new(&netlist);
    let recipe = FlowRecipe::default();
    let clocks = recipe.clock_schedule(&netlist, d.period_ps);
    let cons = Constraints::with_period(d.period_ps);
    let margins = EndpointMargins::zero(&netlist);
    let before_cells = netlist.cell_count();
    let (stats, report) = optimize_datapath(
        &mut netlist,
        &mut graph,
        &cons,
        &clocks,
        &margins,
        &DatapathOpts::default(),
    );
    assert!(stats.total() > 0);
    // Structural invariants hold after all mutations.
    assert!(netlist.check().is_empty(), "{:?}", netlist.check());
    // Buffer insertion may add cells but never endpoints.
    assert!(netlist.cell_count() >= before_cells);
    assert_eq!(netlist.endpoints().len(), d.netlist.endpoints().len());
    // The returned report covers the mutated netlist.
    for i in 0..netlist.endpoints().len() {
        assert!(report.endpoint_slack(i).is_finite());
    }
    // Power recovery afterwards cannot break structure either.
    let (_, rep2) = recover_power(&mut netlist, &graph, &cons, &clocks, &margins, 40.0);
    assert!(netlist.check().is_empty());
    assert!(rep2.tns() <= 0.0);
}

#[test]
fn flow_improves_all_three_cluster_classes_or_leaves_them() {
    let d = generate(&DesignSpec::new("classes", 1000, TechNode::N7, 19));
    let recipe = FlowRecipe::default();
    let res = recipe.run(&d, &[]);
    // Flow improves TNS overall.
    assert!(res.final_qor.tns_ps >= res.begin.tns_ps);
    // All three classes exist in a default-spec design.
    for class in [
        ClusterClass::Normal,
        ClusterClass::Deep,
        ClusterClass::Chain,
    ] {
        assert!(
            d.endpoint_class.contains(&class),
            "{class:?} missing from generated design"
        );
    }
    assert_eq!(d.endpoint_class.len(), d.netlist.endpoints().len());
}

#[test]
fn power_report_tracks_flow_mutations() {
    let d = generate(&DesignSpec::new("pwr", 700, TechNode::N5, 23));
    let recipe = FlowRecipe::default();
    // The flow seeds the power model's PI activities with the recipe seed.
    let before = analyze_power(&d.netlist, d.period_ps, recipe.seed).total();
    let res = recipe.run(&d, &[]);
    // The flow's begin power matches an independent analysis.
    assert!((res.begin.power_mw - before).abs() < 1e-9);
    // Final power differs (sizing happened) but stays in a sane band.
    assert!(res.final_qor.power_mw > 0.0);
    assert!(res.final_qor.power_mw < before * 3.0);
}

#[test]
fn skew_schedules_are_bounded_after_the_full_flow() {
    let d = generate(&DesignSpec::new("bounds", 700, TechNode::N12, 29));
    let recipe = FlowRecipe::default();
    let res = recipe.run(&d, &[]);
    let bound = recipe.skew_bound_frac * d.period_ps;
    for &s in &res.skews {
        assert!(s.abs() <= bound + 1e-3, "skew {s} exceeds bound {bound}");
    }
    assert_eq!(res.skews.len(), d.netlist.flops().len());
}

#[test]
fn begin_state_immune_to_selection() {
    let d = generate(&DesignSpec::new("begin", 600, TechNode::N7, 31));
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
    let rep = analyze(
        &d.netlist,
        &graph,
        &Constraints::with_period(d.period_ps),
        &clocks,
        &EndpointMargins::zero(&d.netlist),
    );
    let sel: Vec<_> = rep
        .violating_endpoints()
        .into_iter()
        .take(3)
        .map(rl_ccd_netlist::EndpointId::new)
        .collect();
    let a = recipe.run(&d, &[]);
    let b = recipe.run(&d, &sel);
    assert_eq!(a.begin.tns_ps, b.begin.tns_ps);
    assert_eq!(a.begin.nve, b.begin.nve);
    assert_eq!(a.begin.power_mw, b.begin.power_mw);
}
