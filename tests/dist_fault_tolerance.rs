//! Distributed training end to end: rollouts sharded over real worker
//! processes (threads with real TCP sockets here) are bit-identical to
//! single-process training — for any worker count, under mid-iteration
//! worker kills recovered by re-queuing, stragglers past the deadline,
//! torn reply frames, and kill+resume — and degrade into the same quorum
//! semantics as local quarantine when every worker dies.
//!
//! Every fault is injected through the deterministic [`FaultPlan`] hook
//! carried over the wire, so the suite is reproducible: no real crashes,
//! no timing races (the only clock involved is the straggler's stall,
//! which is sized off the coordinator deadline).

use rl_ccd::{Error, FaultPlan, RlConfig, Session, TrainError, TrainOutcome};
use rl_ccd_dist::{serve_worker, DistExecutor};
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::Duration;

fn design() -> GeneratedDesign {
    generate(&DesignSpec::new("dist-ft", 420, TechNode::N7, 93))
}

/// Four slots, three iterations, no early stop: every run visits the same
/// iteration indices, which the fault plans below rely on.
fn config() -> RlConfig {
    RlConfig {
        workers: 4,
        max_iterations: 3,
        patience: 4,
        ..RlConfig::fast()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rl-ccd-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Real workers on ephemeral loopback ports, each in its own thread.
struct WorkerFleet {
    addrs: Vec<String>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerFleet {
    fn spawn(n: usize) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            addrs.push(listener.local_addr().unwrap().to_string());
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker(listener);
            }));
        }
        Self { addrs, handles }
    }

    /// Stops every worker that is still serving (a fresh connection with a
    /// `Shutdown`; workers that already died refuse the connection) and
    /// joins the threads.
    fn stop(self) {
        for addr in &self.addrs {
            if let Ok(mut conn) = TcpStream::connect(addr) {
                let payload = rl_ccd_dist::encode_request(&rl_ccd_dist::Request::Shutdown);
                let _ = rl_ccd_dist::write_message(&mut conn, &payload);
            }
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn dist_session(
    cfg: &RlConfig,
    fleet: &WorkerFleet,
    plan: FaultPlan,
    deadline: Duration,
    checkpoint: Option<(&Path, usize)>,
) -> Session {
    let executor = DistExecutor::connect(&fleet.addrs)
        .expect("connect to workers")
        .with_deadline(deadline);
    let mut builder = Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .fault_plan(plan)
        .executor(Box::new(executor));
    if let Some((dir, every)) = checkpoint {
        builder = builder.checkpoint(dir, every);
    }
    builder.build().expect("session builds")
}

fn local_outcome(cfg: &RlConfig) -> TrainOutcome {
    Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .build()
        .expect("local session builds")
        .train()
        .expect("local train")
}

fn assert_same_outcome(a: &TrainOutcome, b: &TrainOutcome) {
    assert_eq!(a.best_selection, b.best_selection, "champion selection");
    assert_eq!(
        a.best_result.final_qor.tns_ps, b.best_result.final_qor.tns_ps,
        "champion TNS"
    );
    assert_eq!(a.history, b.history, "iteration histories");
    assert_eq!(a.params, b.params, "final parameters");
    assert_eq!(a.faults, b.faults, "fault records");
}

/// A generous deadline for tests that never exercise the timeout path.
const NO_TIMEOUT: Duration = Duration::from_secs(300);

#[test]
fn distributed_training_is_bit_identical_for_any_worker_count() {
    let cfg = config();
    let local = local_outcome(&cfg);
    for n in [1usize, 2, 4] {
        let fleet = WorkerFleet::spawn(n);
        let out = dist_session(&cfg, &fleet, FaultPlan::none(), NO_TIMEOUT, None)
            .train()
            .unwrap_or_else(|e| panic!("dist train with {n} workers: {e}"));
        fleet.stop();
        assert_same_outcome(&local, &out);
        assert!(out.faults.is_empty(), "clean run records no faults");
    }
}

#[test]
fn worker_kill_mid_iteration_is_requeued_and_stays_bit_identical() {
    let cfg = config();
    let local = local_outcome(&cfg);
    // Worker process 0 dies mid-batch in iteration 1; its pairs are
    // re-queued onto the survivor.
    let plan = FaultPlan::none().with_worker_drop(1, 0);
    let fleet = WorkerFleet::spawn(2);
    let out = dist_session(&cfg, &fleet, plan, NO_TIMEOUT, None)
        .train()
        .expect("killed worker must not kill the run");
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(
        out.faults.is_empty(),
        "a transport failure recovered by re-queuing is not a training fault"
    );
}

#[test]
fn torn_reply_frame_is_requeued_and_stays_bit_identical() {
    let cfg = config();
    let local = local_outcome(&cfg);
    // Worker process 1 writes a truncated frame in iteration 0 and dies.
    let plan = FaultPlan::none().with_torn_frame(0, 1);
    let fleet = WorkerFleet::spawn(2);
    let out = dist_session(&cfg, &fleet, plan, NO_TIMEOUT, None)
        .train()
        .expect("torn frame must not kill the run");
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(out.faults.is_empty());
}

#[test]
fn straggler_past_the_deadline_is_requeued_and_stays_bit_identical() {
    let cfg = config();
    let local = local_outcome(&cfg);
    // Worker process 1 stalls past the 2 s deadline in iteration 1; the
    // coordinator abandons it and re-queues onto worker 0.
    let plan = FaultPlan::none().with_slow_worker(1, 1);
    let fleet = WorkerFleet::spawn(2);
    let out = dist_session(&cfg, &fleet, plan, Duration::from_secs(2), None)
        .train()
        .expect("straggler must not kill the run");
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(out.faults.is_empty());
}

#[test]
fn in_worker_quarantine_matches_the_local_fault_path() {
    let cfg = config();
    // A rollout panic and a NaN reward, quarantined *inside* remote
    // workers, must produce the same records and training trajectory as
    // the same plan running locally.
    let plan = FaultPlan::none()
        .with_worker_panic(1, 2)
        .with_nan_reward(2, 0);
    let local = Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .fault_plan(plan.clone())
        .build()
        .expect("local session builds")
        .train()
        .expect("local faulted train");
    let fleet = WorkerFleet::spawn(2);
    let out = dist_session(&cfg, &fleet, plan, NO_TIMEOUT, None)
        .train()
        .expect("dist faulted train");
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert_eq!(out.faults.len(), 2, "both injected faults recorded");
}

#[test]
fn losing_every_worker_loses_the_quorum() {
    let cfg = config();
    let plan = FaultPlan::none().with_worker_drop(0, 0);
    let fleet = WorkerFleet::spawn(1);
    let err = dist_session(&cfg, &fleet, plan, NO_TIMEOUT, None)
        .train()
        .expect_err("no workers left must lose the quorum");
    fleet.stop();
    match err {
        Error::Train(TrainError::QuorumLost {
            iteration,
            survivors,
            faults,
            ..
        }) => {
            assert_eq!(iteration, 0);
            assert_eq!(survivors, 0);
            assert_eq!(faults.len(), cfg.workers, "one WorkerLost per pair");
            assert!(faults
                .iter()
                .all(|f| f.kind == rl_ccd::FaultKind::WorkerLost));
        }
        other => panic!("expected QuorumLost, got {other:?}"),
    }
}

#[test]
fn killed_distributed_run_resumes_bit_for_bit() {
    let cfg = config();
    let local = local_outcome(&cfg);
    let dir = tmp_dir("resume");

    // Phase 1: a distributed run "killed" at the iteration-2 boundary
    // (max_iterations cap stands in for the kill; the checkpoint at the
    // boundary is what a real kill would leave behind).
    let mut truncated = cfg.clone();
    truncated.max_iterations = 2;
    let fleet = WorkerFleet::spawn(2);
    dist_session(
        &truncated,
        &fleet,
        FaultPlan::none(),
        NO_TIMEOUT,
        Some((&dir, 2)),
    )
    .train()
    .expect("truncated dist run");
    fleet.stop();

    // Phase 2: resume distributed on a fresh fleet — same outcome as an
    // uninterrupted single-process run, bit for bit.
    let fleet = WorkerFleet::spawn(2);
    let resumed = dist_session(&cfg, &fleet, FaultPlan::none(), NO_TIMEOUT, Some((&dir, 2)))
        .train()
        .expect("resumed dist run");
    fleet.stop();
    assert_same_outcome(&local, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}
