//! The [`Session`] facade against the low-level entry points it wraps
//! ([`FlowRecipe::run`], [`rl_ccd::try_train`]): same seeds,
//! bit-identical results — plus the unified error type's contracts.

use rl_ccd::{CcdEnv, Error, RlConfig, Session};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};

fn tiny_design() -> GeneratedDesign {
    generate(&DesignSpec::new("session-api", 500, TechNode::N7, 37))
}

fn fast_cfg() -> RlConfig {
    let mut cfg = RlConfig::fast();
    cfg.workers = 3;
    cfg.max_iterations = 2;
    cfg.patience = 2;
    cfg
}

/// `Session::run_flow` and `FlowRecipe::run` are the same computation.
#[test]
fn session_flow_is_bit_identical_to_recipe_run() {
    let design = tiny_design();
    let recipe = FlowRecipe::default();
    let legacy = recipe.run(&design, &[]);
    let session = Session::builder()
        .design(design)
        .recipe(recipe)
        .build()
        .expect("session");
    let modern = session.run_flow().expect("flow");

    assert_eq!(legacy.final_qor.wns_ps, modern.final_qor.wns_ps);
    assert_eq!(legacy.final_qor.tns_ps, modern.final_qor.tns_ps);
    assert_eq!(legacy.final_qor.nve, modern.final_qor.nve);
    assert_eq!(legacy.final_qor.power_mw, modern.final_qor.power_mw);
    assert_eq!(legacy.skews, modern.skews);
}

/// `Session::train` and the low-level `try_train` entry point are the
/// same computation on the same seed.
#[test]
fn session_train_is_bit_identical_to_try_train() {
    let design = tiny_design();
    let cfg = fast_cfg();
    let env = CcdEnv::new(design.clone(), FlowRecipe::default(), cfg.fanout_cap);
    let legacy = rl_ccd::try_train(&env, &cfg, rl_ccd::TrainSession::default()).expect("try_train");
    let modern = Session::builder()
        .design(design)
        .rl_config(cfg)
        .build()
        .expect("session")
        .train()
        .expect("train");

    assert_eq!(legacy.best_selection, modern.best_selection);
    assert_eq!(
        legacy.best_result.final_qor.tns_ps,
        modern.best_result.final_qor.tns_ps
    );
    assert_eq!(legacy.history, modern.history);
    assert_eq!(legacy.params, modern.params);
}

#[test]
fn builder_without_a_design_is_a_config_error() {
    let err = Session::builder().build().unwrap_err();
    assert!(matches!(err, Error::Config(_)));
    assert!(err.to_string().contains("design"));
}

#[test]
fn error_is_send_sync_and_sources_chain() {
    fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
    assert_bounds::<Error>();

    let err: Error = rl_ccd::TrainError::SeedMismatch {
        expected: 1,
        found: 2,
    }
    .into();
    assert!(err.to_string().contains("training failed"));
    let source = std::error::Error::source(&err).expect("wrapped source");
    assert!(source.to_string().contains("seed mismatch"));

    let io: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
    assert!(matches!(io, Error::Io(_)));
}
