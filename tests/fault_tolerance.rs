//! Fault-tolerant training runtime, end to end: injected worker faults are
//! quarantined, divergence guards keep the run alive, and atomic
//! checkpoints make a killed run resume bit-for-bit.
//!
//! Every fault here is injected through the deterministic [`FaultPlan`]
//! hook, so the suite is reproducible — no real crashes, no timing races.

use rl_ccd::{
    load_training_state, training_state_exists, try_train, CcdEnv, FaultKind, FaultPlan, RlConfig,
    Session, TrainOutcome, TrainSession,
};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};
use std::path::{Path, PathBuf};

fn design() -> GeneratedDesign {
    generate(&DesignSpec::new("fault-tol", 500, TechNode::N7, 91))
}

fn env() -> CcdEnv {
    CcdEnv::new(design(), FlowRecipe::default(), 24)
}

/// A checkpointed [`Session`] on the same design — the facade's resume
/// path (`Session::train` picks up any committed state in `dir`).
fn resume_session(cfg: &RlConfig, dir: &Path, every: usize, plan: FaultPlan) -> Session {
    Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .checkpoint(dir, every)
        .fault_plan(plan)
        .build()
        .expect("session builds")
}

/// Four workers, four iterations, no early stop: every run visits the same
/// iteration indices, which the fault plans below rely on.
fn config() -> RlConfig {
    RlConfig {
        workers: 4,
        max_iterations: 4,
        patience: 4,
        ..RlConfig::fast()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rl-ccd-ft-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn session(plan: FaultPlan) -> TrainSession {
    TrainSession {
        fault_plan: plan,
        ..TrainSession::default()
    }
}

fn assert_same_outcome(a: &TrainOutcome, b: &TrainOutcome) {
    assert_eq!(a.best_selection, b.best_selection, "champion selection");
    assert_eq!(
        a.best_result.final_qor.tns_ps, b.best_result.final_qor.tns_ps,
        "champion TNS"
    );
    assert_eq!(a.history, b.history, "iteration histories");
    assert_eq!(a.params, b.params, "final parameters");
}

#[test]
fn nan_reward_is_quarantined_not_fatal() {
    let env = env();
    let cfg = config();
    let clean = try_train(&env, &cfg, session(FaultPlan::none())).expect("clean run");
    let plan = FaultPlan::none().with_nan_reward(1, 2);
    let out = try_train(&env, &cfg, session(plan)).expect("NaN reward must not kill the run");

    // Exactly one fault, at the injected coordinates, and nothing
    // non-finite leaks into telemetry or parameters.
    assert_eq!(out.faults.len(), 1);
    let f = &out.faults[0];
    assert_eq!((f.iteration, f.worker), (1, 2));
    assert_eq!(f.kind, FaultKind::NonFiniteReward);
    assert_eq!(out.history[1].rewards.len(), cfg.workers - 1);
    for h in &out.history {
        assert!(
            h.mean_reward.is_finite(),
            "iter {} mean is NaN",
            h.iteration
        );
        assert!(h.rewards.iter().all(|r| r.is_finite()));
    }
    assert!(out.params.all_finite());
    // Iterations before the fault are untouched.
    assert_eq!(out.history[0], clean.history[0]);
}

#[test]
fn worker_panic_and_poisoned_gradient_are_quarantined() {
    let env = env();
    let cfg = config();
    let plan = FaultPlan::none()
        .with_worker_panic(0, 3)
        .with_poisoned_gradient(2, 0);
    let out = try_train(&env, &cfg, session(plan)).expect("faults under quorum must not abort");

    let kinds: Vec<_> = out.faults.iter().map(|f| (f.iteration, f.kind)).collect();
    assert!(kinds.contains(&(0, FaultKind::WorkerPanic)));
    assert!(kinds.contains(&(2, FaultKind::NonFiniteGradient)));
    assert_eq!(out.history.len(), cfg.max_iterations);
    assert!(out.params.all_finite());
}

#[test]
fn quorum_loss_aborts_with_resumable_checkpoint() {
    let env = env();
    let cfg = config(); // 4 workers -> quorum 2
    let dir = tmp_dir("quorum");
    // Iterations 0..2 are clean; iteration 2 loses 3 of 4 workers.
    let plan = FaultPlan::none()
        .with_worker_panic(2, 0)
        .with_nan_reward(2, 1)
        .with_poisoned_gradient(2, 2);
    let sess = TrainSession {
        fault_plan: plan,
        ..TrainSession::checkpointed(&dir, 1)
    };
    let err = try_train(&env, &cfg, sess).expect_err("3 of 4 faulted: below quorum");
    let msg = err.to_string();
    assert!(msg.contains("quorum"), "unhelpful error: {msg}");

    // The abort left the pre-iteration state committed: resuming without
    // the fault plan completes the run.
    let state = load_training_state(&dir).expect("abort checkpoint");
    assert_eq!(state.next_iteration, 2);
    let resumed = resume_session(&cfg, &dir, 0, FaultPlan::none())
        .train()
        .expect("resume after quorum loss");
    assert_eq!(resumed.history.len(), cfg.max_iterations);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_at_checkpoint_boundary_then_resume_is_bit_for_bit() {
    let env = env();
    let cfg = config();
    let uninterrupted = try_train(&env, &cfg, session(FaultPlan::none())).expect("reference");

    // "Kill" the run at the iteration-2 boundary by capping max_iterations:
    // the loop body never reads the cap, so the first two iterations are
    // exactly the prefix of the uninterrupted run.
    let dir = tmp_dir("resume");
    let mut truncated_cfg = cfg.clone();
    truncated_cfg.max_iterations = 2;
    try_train(&env, &truncated_cfg, TrainSession::checkpointed(&dir, 2)).expect("truncated run");
    assert!(training_state_exists(&dir));

    let resumed = resume_session(&cfg, &dir, 2, FaultPlan::none())
        .train()
        .expect("resumed run");
    assert_same_outcome(&uninterrupted, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_write_preserves_the_previous_boundary() {
    let env = env();
    let cfg = config();
    let dir = tmp_dir("torn");
    // Checkpoints commit after iterations 1 and 3; the second write is
    // torn mid-stream (simulated crash during the temp-file write).
    let plan = FaultPlan::none().with_torn_checkpoint(3);
    let sess = TrainSession {
        fault_plan: plan,
        ..TrainSession::checkpointed(&dir, 2)
    };
    try_train(&env, &cfg, sess).expect("torn write is not a training failure");

    // The committed state is still the iteration-2 boundary — the torn
    // temp file was never renamed over it.
    let state = load_training_state(&dir).expect("previous boundary intact");
    assert_eq!(state.next_iteration, 2);

    // And it is a working resume point.
    let uninterrupted = try_train(&env, &cfg, session(FaultPlan::none())).expect("reference");
    let resumed = resume_session(&cfg, &dir, 0, FaultPlan::none())
        .train()
        .expect("resume from boundary");
    assert_same_outcome(&uninterrupted, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_mismatch_on_resume_is_rejected() {
    let env = env();
    let cfg = config();
    let dir = tmp_dir("seed");
    try_train(&env, &cfg, TrainSession::checkpointed(&dir, 2)).expect("checkpointed run");
    let mut other = cfg.clone();
    other.seed ^= 1;
    let err = resume_session(&other, &dir, 0, FaultPlan::none())
        .train()
        .expect_err("different seed would diverge the rollout stream");
    assert!(err.to_string().contains("seed"), "got: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The issue's acceptance scenario: a run that survives an injected worker
/// panic *and* an injected NaN reward *and* a kill+resume at a checkpoint
/// boundary still reports the same champion selection and the same final
/// greedy reward as the uninterrupted fault-free run.
#[test]
fn faulty_killed_and_resumed_run_matches_the_clean_run() {
    let env = env();
    let cfg = config();
    let clean = try_train(&env, &cfg, session(FaultPlan::none())).expect("clean reference");
    let last = cfg.max_iterations - 1;

    // Quarantine changes the surviving batch, which changes the gradient —
    // so to keep the final answer comparable the faults must hit the LAST
    // iteration, on workers that were not carrying that iteration's best
    // rollout. `IterationStats::rewards` (worker order) tells us which.
    let rewards = &clean.history[last].rewards;
    let best_worker = (0..rewards.len())
        .max_by(|&a, &b| rewards[a].total_cmp(&rewards[b]))
        .expect("non-empty batch");
    let victims: Vec<usize> = (0..cfg.workers).filter(|w| *w != best_worker).collect();
    let plan = FaultPlan::none()
        .with_worker_panic(last, victims[0])
        .with_nan_reward(last, victims[1]);

    // Phase 1: the faulty run is killed at the iteration-2 checkpoint
    // boundary (max_iterations cap stands in for the kill, as above).
    let dir = tmp_dir("acceptance");
    let mut truncated = cfg.clone();
    truncated.max_iterations = 2;
    let phase1 = TrainSession {
        fault_plan: plan.clone(),
        ..TrainSession::checkpointed(&dir, 2)
    };
    try_train(&env, &truncated, phase1).expect("phase 1");

    // Phase 2: resume (Session::train picks up the committed state) and
    // run to completion with the same fault plan still active.
    let faulty = resume_session(&cfg, &dir, 2, plan)
        .train()
        .expect("phase 2");

    // Both injected faults were recorded at the last iteration.
    assert_eq!(faulty.faults.len(), 2);
    assert!(faulty
        .faults
        .iter()
        .any(|f| f.kind == FaultKind::WorkerPanic && f.iteration == last));
    assert!(faulty
        .faults
        .iter()
        .any(|f| f.kind == FaultKind::NonFiniteReward && f.iteration == last));
    assert_eq!(faulty.history[last].rewards.len(), cfg.workers - 2);

    // Same champion, same final greedy reward as the clean uninterrupted
    // run — the fault-free prefix is bit-identical, and the last-iteration
    // quarantine only dropped non-champion rollouts.
    assert_eq!(faulty.best_selection, clean.best_selection);
    assert_eq!(
        faulty.best_result.final_qor.tns_ps,
        clean.best_result.final_qor.tns_ps
    );
    assert_eq!(
        faulty.history[last].greedy_reward,
        clean.history[last].greedy_reward
    );
    // And the prefix really was untouched by the (last-iteration) faults.
    assert_eq!(faulty.history[..last], clean.history[..last]);
    let _ = std::fs::remove_dir_all(&dir);
}
