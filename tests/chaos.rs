//! Chaos acceptance: training and serving under injected network faults.
//!
//! The wire layer's [`NetFaultPlan`]/[`FaultPlan`] hooks inject latency,
//! connection resets, silent stalls, and torn frames at exact (connection,
//! frame) or (iteration, worker) coordinates, so every scenario here is
//! deterministic — no real packet loss, no timing races. The contracts
//! under test:
//!
//! - a distributed run through a network storm (delay + reset + stall +
//!   torn frame) retries its way to a result **bit-identical** to the
//!   fault-free run, with no fault records — transport failures recovered
//!   by reconnect + re-issue are invisible to training;
//! - a worker that accepts TCP but never answers is quarantined by the
//!   health probe instead of hanging initialization;
//! - a serve endpoint pushed past scheduler capacity sheds the excess
//!   with typed `Overloaded` responses (never hangs, never errors) and
//!   answers normally again once the burst passes.

use rl_ccd::{FaultPlan, RlCcd, RlConfig, Session, TrainOutcome};
use rl_ccd_dist::{serve_worker, serve_worker_with, DistExecutor, WorkerNet};
use rl_ccd_netlist::{generate, DesignSpec, GeneratedDesign, TechNode};
use rl_ccd_serve::{
    DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeClient, ServeConfig, Server,
};
use rl_ccd_wire::{NetFaultPlan, RetryPolicy};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn design() -> GeneratedDesign {
    generate(&DesignSpec::new("chaos", 420, TechNode::N7, 29))
}

/// Four slots, three iterations, no early stop: every run visits the same
/// iteration indices, which the fault plans below rely on.
fn config() -> RlConfig {
    RlConfig {
        workers: 4,
        max_iterations: 3,
        patience: 4,
        ..RlConfig::fast()
    }
}

/// Real workers on ephemeral loopback ports, each in its own thread.
struct WorkerFleet {
    addrs: Vec<String>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerFleet {
    fn spawn(n: usize) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            addrs.push(listener.local_addr().unwrap().to_string());
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker(listener);
            }));
        }
        Self { addrs, handles }
    }

    /// Like [`WorkerFleet::spawn`], with every worker's accept path wired
    /// through the same [`WorkerNet`] (chaos on accepted connections).
    fn spawn_with(n: usize, net: WorkerNet) -> Self {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            addrs.push(listener.local_addr().unwrap().to_string());
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let _ = serve_worker_with(listener, net);
            }));
        }
        Self { addrs, handles }
    }

    fn stop(self) {
        for addr in &self.addrs {
            if let Ok(mut conn) = TcpStream::connect(addr) {
                let payload = rl_ccd_dist::encode_request(&rl_ccd_dist::Request::Shutdown);
                let _ = rl_ccd_dist::write_message(&mut conn, &payload);
            }
        }
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn train_with(executor: DistExecutor, cfg: &RlConfig, plan: FaultPlan) -> TrainOutcome {
    Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .fault_plan(plan)
        .executor(Box::new(executor))
        .build()
        .expect("session builds")
        .train()
        .expect("distributed train")
}

fn local_outcome(cfg: &RlConfig) -> TrainOutcome {
    Session::builder()
        .design(design())
        .rl_config(cfg.clone())
        .build()
        .expect("local session builds")
        .train()
        .expect("local train")
}

fn assert_same_outcome(a: &TrainOutcome, b: &TrainOutcome) {
    assert_eq!(a.best_selection, b.best_selection, "champion selection");
    assert_eq!(
        a.best_result.final_qor.tns_ps, b.best_result.final_qor.tns_ps,
        "champion TNS"
    );
    assert_eq!(a.history, b.history, "iteration histories");
    assert_eq!(a.params, b.params, "final parameters");
    assert_eq!(a.faults, b.faults, "fault records");
}

const NO_TIMEOUT: Duration = Duration::from_secs(300);

/// The headline acceptance run: one fleet weathers injected latency, a
/// connection reset, a stalled connection, and a torn frame — one of each,
/// spread over both workers and all three iterations — and still lands on
/// the exact bits of the clean run.
#[test]
fn network_storm_is_retried_to_a_bit_identical_outcome() {
    let cfg = config();
    let local = local_outcome(&cfg);
    let plan = FaultPlan::none()
        .with_net_delay(0, 0, 40)
        .with_net_reset(1, 0)
        .with_net_stall(1, 1, 150)
        .with_net_torn(2, 1);
    let fleet = WorkerFleet::spawn(2);
    let executor = DistExecutor::connect(&fleet.addrs)
        .expect("connect fleet")
        .with_deadline(NO_TIMEOUT)
        .with_retry(RetryPolicy::seeded(11));
    let out = train_with(executor, &cfg, plan);
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(
        out.faults.is_empty(),
        "transport failures recovered by retry must leave no fault records"
    );
}

/// Frame-level chaos attached directly to the transport (the `--chaos-plan`
/// path, including the textual spec parser): injected latency and
/// adversarial segmentation are absorbed without any retry at all.
#[test]
fn wire_plan_latency_and_segmentation_are_harmless() {
    let cfg = config();
    let local = local_outcome(&cfg);
    let plan =
        Arc::new(NetFaultPlan::parse("delay:0:0:30,seg:0:2:3,seg:1:1:5").expect("spec parses"));
    let fleet = WorkerFleet::spawn(2);
    let executor = DistExecutor::connect(&fleet.addrs)
        .expect("connect fleet")
        .with_deadline(NO_TIMEOUT)
        .with_chaos(Arc::clone(&plan));
    let out = train_with(executor, &cfg, FaultPlan::none());
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(out.faults.is_empty());
    assert!(plan.fired() >= 1, "plan coordinates were actually hit");
}

/// Chaos on the worker's *accept* path: the plan wraps the connections the
/// worker accepts — previously raw sockets no fault plan could touch —
/// delaying its first probe read and resetting the connection around the
/// first batch reply. The coordinator retries onto a fresh connection (a
/// new worker-side conn id, so the plan does not re-fire), the worker
/// replays the cached reply, and training still lands on the clean run's
/// exact bits.
#[test]
fn worker_side_chaos_on_the_accept_path_is_retried_to_identical_bits() {
    let cfg = config();
    let local = local_outcome(&cfg);
    // Worker-side connection 0 is its first accept; frames count every
    // read and write on it: 0 = probe read (delayed), 5 = first batch
    // reply (connection reset).
    let plan = Arc::new(NetFaultPlan::none().with_delay(0, 0, 30).with_reset(0, 5));
    let fleet = WorkerFleet::spawn_with(
        1,
        WorkerNet {
            chaos: Some(Arc::clone(&plan)),
            conn_base: 0,
        },
    );
    let executor = DistExecutor::connect(&fleet.addrs)
        .expect("connect fleet")
        .with_deadline(Duration::from_secs(30))
        .with_retry(RetryPolicy::seeded(7));
    let out = train_with(executor, &cfg, FaultPlan::none());
    fleet.stop();
    assert_same_outcome(&local, &out);
    assert!(
        out.faults.is_empty(),
        "worker-side transport chaos recovered by retry leaves no fault records"
    );
    assert_eq!(plan.fired(), 2, "both worker-side injections were hit");
}

/// A worker that accepts the TCP connection but never answers anything
/// must not hang initialization: the health probe times out, the worker is
/// quarantined, and training completes on the survivor — bit-identical,
/// because sharding does not affect the trajectory.
#[test]
fn silent_worker_is_quarantined_by_the_probe_not_waited_on_forever() {
    let cfg = config();
    let local = local_outcome(&cfg);
    let fleet = WorkerFleet::spawn(1);
    // Bound but never accepted: connects succeed via the listen backlog,
    // then the peer is silent forever.
    let silent = TcpListener::bind("127.0.0.1:0").expect("bind silent port");
    let addrs = vec![
        fleet.addrs[0].clone(),
        silent.local_addr().unwrap().to_string(),
    ];
    let started = Instant::now();
    let executor = DistExecutor::connect(&addrs)
        .expect("connect fleet")
        .with_deadline(Duration::from_secs(2));
    let out = train_with(executor, &cfg, FaultPlan::none());
    fleet.stop();
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "a silent peer must cost one probe timeout, not a hang"
    );
    assert_same_outcome(&local, &out);
    assert!(out.faults.is_empty());
    drop(silent);
}

/// Serve under 2x-and-more scheduler capacity: the excess is shed with
/// typed `Overloaded` (numeric backoff hint, no untyped errors, no hung
/// clients), and the endpoint answers normally once the burst passes.
#[test]
fn overloaded_server_sheds_typed_and_recovers() {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let registry = ModelRegistry::new();
    registry
        .insert_params("default", params, rho)
        .expect("register model");
    let serve_config = ServeConfig {
        max_batch: 1,
        window: Duration::from_millis(5),
        queue_capacity: 2,
        workers: 1,
        ..ServeConfig::default()
    };
    let mut server = Server::start(registry, serve_config);
    let addr = server.bind("127.0.0.1:0").expect("bind server");

    // 8 clients burst-fire into a queue of 2 with one scheduler worker:
    // well past capacity, so some must be shed. Distinct designs defeat
    // the env cache, keeping each accepted request slow enough that the
    // queue genuinely fills.
    let clients = 8usize;
    let barrier = Arc::new(Barrier::new(clients));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                barrier.wait();
                let resp = client
                    .query(QueryRequest {
                        model: "default".into(),
                        design: DesignKey {
                            name: format!("burst{c}"),
                            cells: 260,
                            tech: "7nm".into(),
                            seed: c as u64 + 1,
                        },
                        mode: Mode::Greedy,
                        deadline_ms: Some(30_000),
                        auth: None,
                    })
                    .expect("transport survives overload");
                match resp {
                    Response::Ok(_) => (1usize, 0usize),
                    Response::Overloaded { retry_after_ms } => {
                        assert!(retry_after_ms > 0, "backoff hint is a real number");
                        (0, 1)
                    }
                    other => panic!("overload must shed typed, got {other:?}"),
                }
            })
        })
        .collect();
    let (mut ok, mut shed) = (0usize, 0usize);
    for h in handles {
        let (o, s) = h.join().expect("client thread");
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, clients, "every client got a typed answer");
    assert!(ok >= 1, "capacity was not zero: someone got through");
    assert!(shed >= 1, "8 clients into a queue of 2 must shed");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "overload must resolve quickly, not by timeout"
    );

    // The burst is over: the same endpoint serves a fresh query normally.
    let mut after = ServeClient::connect(addr.to_string()).expect("reconnect");
    let resp = after
        .query(QueryRequest {
            model: "default".into(),
            design: DesignKey {
                name: "after-burst".into(),
                cells: 260,
                tech: "7nm".into(),
                seed: 99,
            },
            mode: Mode::Greedy,
            deadline_ms: Some(30_000),
            auth: None,
        })
        .expect("post-burst query");
    assert!(
        matches!(resp, Response::Ok(_)),
        "server recovers after shedding: {resp:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.stats.shed as usize, shed, "server counted each shed");
    assert_eq!(report.dropped(), 0, "drain left nothing behind");
}
