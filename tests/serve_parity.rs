//! Serving parity: concurrent batched inference answers are bit-identical
//! to the sequential offline path.
//!
//! The contract under test: for any batching window (including zero), any
//! thread interleaving, and any cache state (including active eviction),
//! a greedy query equals `evaluate_policy`'s `greedy_selection` and a
//! seeded sample query equals `sample_endpoints` with the same seed — the
//! server may batch and cache, but never change an answer. The suite also
//! pins graceful drain: every accepted request is answered, zero dropped.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rl_ccd::{evaluate_policy, sample_endpoints, CcdEnv, RlCcd, RlConfig};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{generate, DesignSpec, EndpointId, Library};
use rl_ccd_serve::{DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeConfig, Server};
use std::collections::HashMap;
use std::time::Duration;

const MODEL: &str = "default";
const SAMPLE_SEEDS: [u64; 3] = [0, 7, 1234];

fn design_keys() -> Vec<DesignKey> {
    vec![
        DesignKey {
            name: "parity_a".into(),
            cells: 220,
            tech: "7nm".into(),
            seed: 3,
        },
        DesignKey {
            name: "parity_b".into(),
            cells: 260,
            tech: "12nm".into(),
            seed: 9,
        },
    ]
}

/// Builds the env for a key exactly the way the server's cache does.
fn build_env(key: &DesignKey, fanout_cap: usize) -> CcdEnv {
    let tech = Library::parse_tech(&key.tech).expect("known tech");
    let design = generate(&DesignSpec::new(
        key.name.clone(),
        key.cells,
        tech,
        key.seed,
    ));
    CcdEnv::new(design, FlowRecipe::default(), fanout_cap)
}

/// The sequential reference: greedy plus per-seed sampled selections for
/// every design, computed without any server in the picture.
fn indices(selection: &[EndpointId]) -> Vec<usize> {
    selection.iter().map(|e| e.index()).collect()
}

fn reference(
    model: &RlCcd,
    params: &rl_ccd_nn::ParamSet,
    keys: &[DesignKey],
    fanout_cap: usize,
) -> HashMap<(String, Option<u64>), Vec<usize>> {
    let mut expected = HashMap::new();
    for key in keys {
        let env = build_env(key, fanout_cap);
        let eval = evaluate_policy(model, params, &env, 1, 0);
        expected.insert((key.to_string(), None), indices(&eval.greedy_selection));
        for seed in SAMPLE_SEEDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let selected = sample_endpoints(model, params, &env, &mut rng);
            expected.insert((key.to_string(), Some(seed)), indices(&selected));
        }
    }
    expected
}

#[test]
fn concurrent_batched_answers_match_sequential_inference() {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (model, params) = RlCcd::init(config);
    let keys = design_keys();

    // env_cache capacity 1 with 2 designs in rotation: every cross-design
    // batch forces an eviction and a rebuild, so parity is also checked
    // against freshly rebuilt environments mid-run.
    let serve_config = ServeConfig {
        max_batch: 4,
        queue_capacity: 256,
        workers: 2,
        env_cache: 1,
        fanout_cap: RlConfig::fast().fanout_cap,
        ..ServeConfig::default()
    };
    let expected = reference(&model, &params, &keys, serve_config.fanout_cap);

    for window_ms in [0u64, 2, 10] {
        let registry = ModelRegistry::new();
        registry
            .insert_params(MODEL, params.clone(), rho)
            .expect("register");
        let server = Server::start(
            registry,
            ServeConfig {
                window: Duration::from_millis(window_ms),
                ..serve_config.clone()
            },
        );

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = server.handle();
                let keys = keys.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    for r in 0..6 {
                        let key = &keys[(t + r) % keys.len()];
                        let (mode, seed) = if (t + r) % 2 == 0 {
                            (Mode::Greedy, None)
                        } else {
                            let s = SAMPLE_SEEDS[(t * 7 + r) % SAMPLE_SEEDS.len()];
                            (Mode::Sample(s), Some(s))
                        };
                        let resp = handle.query(QueryRequest {
                            model: MODEL.into(),
                            design: key.clone(),
                            mode,
                            deadline_ms: None,
                            auth: None,
                        });
                        let reply = match resp {
                            Response::Ok(reply) => reply,
                            Response::Err { kind, msg } => {
                                panic!("window {window_ms}ms: rejected ({kind}): {msg}")
                            }
                            other => panic!("window {window_ms}ms: unexpected {other:?}"),
                        };
                        let want = &expected[&(key.to_string(), seed)];
                        assert_eq!(
                            &reply.selection, want,
                            "window {window_ms}ms thread {t} req {r}: served selection \
                             diverged from sequential inference on {key}"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }

        let report = server.shutdown();
        assert_eq!(
            report.dropped(),
            0,
            "window {window_ms}ms: drain left requests unanswered"
        );
        assert!(
            report.stats.completed >= 48,
            "window {window_ms}ms: expected all 48 requests answered"
        );
    }
}

#[test]
fn cache_eviction_churn_preserves_greedy_answers() {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (model, params) = RlCcd::init(config);
    let keys = design_keys();
    let fanout_cap = RlConfig::fast().fanout_cap;

    let registry = ModelRegistry::new();
    registry
        .insert_params(MODEL, params.clone(), rho)
        .expect("register");
    // Both caches capacity 1: every alternating query evicts the other
    // design's env *and* memoized selection.
    let server = Server::start(
        registry,
        ServeConfig {
            max_batch: 1,
            window: Duration::ZERO,
            env_cache: 1,
            selection_cache: 1,
            workers: 1,
            fanout_cap,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();

    let expected: Vec<Vec<usize>> = keys
        .iter()
        .map(|k| {
            let env = build_env(k, fanout_cap);
            indices(&evaluate_policy(&model, &params, &env, 0, 0).greedy_selection)
        })
        .collect();

    for round in 0..3 {
        for (i, key) in keys.iter().enumerate() {
            let resp = handle.query(QueryRequest {
                model: MODEL.into(),
                design: key.clone(),
                mode: Mode::Greedy,
                deadline_ms: None,
                auth: None,
            });
            match resp {
                Response::Ok(reply) => assert_eq!(
                    reply.selection, expected[i],
                    "round {round}: eviction churn changed the greedy answer for {key}"
                ),
                Response::Err { kind, msg } => panic!("round {round}: rejected ({kind}): {msg}"),
                other => panic!("round {round}: unexpected {other:?}"),
            }
        }
    }
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}

/// Health probes expose the registry's live identities: name, checkpoint
/// version, and fingerprint for every entry, updating as models are
/// hot-loaded — what the daemon's status and zero-downtime checks key on.
#[test]
fn health_reports_every_active_model_version() {
    let config = RlConfig::fast();
    let rho = config.rho;
    let (_, params) = RlCcd::init(config);
    let registry = ModelRegistry::new();
    let entry = registry
        .insert_params(MODEL, params.clone(), rho)
        .expect("register");
    let fingerprint = entry.fingerprint;
    let server = Server::start(registry, ServeConfig::default());

    let health = server.handle().health();
    assert!(health.ready);
    assert_eq!(health.models, 1);
    assert_eq!(health.active.len(), 1);
    assert_eq!(health.active[0].name, MODEL);
    assert_eq!(health.active[0].version, 0, "insert_params registers v0");
    assert_eq!(health.active[0].fingerprint, fingerprint);

    // A model hot-loaded while the server runs shows up in the next
    // probe, sorted by name alongside the first.
    server
        .registry()
        .insert_params("challenger", params, rho)
        .expect("hot load");
    let health = server.handle().health();
    assert_eq!(health.models, 2);
    let names: Vec<&str> = health.active.iter().map(|v| v.name.as_str()).collect();
    assert_eq!(names, ["challenger", MODEL], "sorted registry identities");
    assert!(
        health.active.iter().all(|v| v.fingerprint == fingerprint),
        "identical weights share a fingerprint in the probe"
    );
    let report = server.shutdown();
    assert_eq!(report.dropped(), 0);
}
