//! `rlccd` — command-line front end for the RL-CCD reproduction.
//!
//! ```text
//! rlccd generate --cells 1200 --tech 7nm --seed 42 --out design.nl
//! rlccd report   --in design.nl [--paths 3]
//! rlccd flow     --in design.nl [--period <ps>] [--trace-out run.jsonl]
//! rlccd train    --in design.nl [--iters 12] [--workers 8] [--params out.txt]
//!                [--checkpoint DIR] [--checkpoint-every K] [--resume DIR]
//!                [--tape-budget-gib G] [--trace-out run.jsonl]
//! rlccd train    --in design.nl --workers host:port,host:port [--slots 8]
//!                [--deadline-s S] [--retries N] [--chaos-plan SPEC]
//!                [--inject-worker-drop IT:PROC] …
//! rlccd worker   [--port 7401] [--chaos-plan SPEC] [--conn-base N]
//! rlccd transfer --in design.nl --params donor.txt [--iters 12] [--trace-out run.jsonl]
//! rlccd baseline --in design.nl [--period <ps>]
//! rlccd verilog  --in design.nl --out design.v
//! rlccd suite    [--scale 0.5]
//! rlccd trace-validate --in run.jsonl
//! rlccd serve    --checkpoint DIR [--model NAME] [--port P] [--reactor] [--max-batch N]
//!                [--window-ms MS] [--queue N] [--serve-workers N] [--rho R]
//! rlccd query    --design name:cells:tech:seed [--addr HOST:PORT] [--model NAME]
//!                [--mode greedy|sample] [--seed S] [--count N] [--threads T]
//!                [--deadline-ms MS] [--retries N] [--chaos-plan SPEC]
//!                [--tenant ID --token SECRET] | --shutdown
//! rlccd probe    --addr HOST:PORT | --workers host:port,host:port [--timeout-ms MS]
//! rlccd daemon   --checkpoint DIR [--port P] [--admin-port P] [--tenants SPEC,SPEC]
//!                [--rho R] [--admin-token T] [--audit-out FILE] [--usage-out FILE]
//!                [--usage-flush-ms MS] [--exp-out FILE]
//!                [--gate-samples N] [--gate-seed S] [--max-batch N] [--queue N]
//! rlccd admin    <status|load|gate|promote|rollback|canary|tenant-add|tenant-del|
//!                 tenant-list|retrain|drain> [--addr HOST:PORT] [--admin-token T] [options]
//! rlccd exp-validate --in exp.jsonl
//! rlccd retrain  --base DIR --log exp.jsonl --out DIR [--seed S] [--steps N]
//!                [--batch N] [--max-staleness N] [--w-max F] [--lr F] [--grad-clip F]
//! ```
//!
//! `daemon` is the multi-tenant production front-end: queries must carry
//! `--tenant`/`--token` credentials (a tenant spec is
//! `id:token:rate:burst:quota`), checkpoints hot-reload through the admin
//! port, and champion/challenger promotion is gated on a held-out eval
//! set — see `rlccd admin promote`.
//!
//! The closed learning loop: `daemon --exp-out exp.jsonl` logs every
//! sampled query as a content-addressed `rl-ccd-exp v1` record
//! (`exp-validate` schema-checks a log); `retrain` replays the log with
//! importance-weighted offline REINFORCE into a fresh checkpoint
//! (bit-reproducible for a fixed `--seed`); `admin retrain` does the same
//! on the daemon and stages the result in the challenger slot, where only
//! `admin gate`/`admin promote` can put it in front of tenants.
//!
//! `generate` writes the plain-text netlist format of
//! [`rl_ccd_netlist::serialize`]; the clock period is embedded as a comment
//! convention-free sidecar (printed, and recalibrated on load via
//! `--period`).
//!
//! `--trace-out FILE` records hierarchical spans and metrics from STA, the
//! flow, and the training loop into a versioned JSONL trace;
//! `trace-validate` checks one against the schema. Every subcommand exits
//! through the unified [`rl_ccd::Error`] instead of ad-hoc panics.
//!
//! `--chaos-plan SPEC` arms deterministic wire-fault injection for `train`
//! (dist mode) and `query`: a comma-separated list of
//! `delay:CONN:FRAME:MS`, `seg:CONN:FRAME:BYTES`, `torn:CONN:FRAME`,
//! `reset:CONN:FRAME`, and `stall:CONN:FRAME:MS` entries, where `CONN` is
//! the worker/shard index and `FRAME` the per-connection frame counter.
//! Paired with `--retries N` it exercises the retry/reconnect paths
//! end-to-end; `probe` health-checks a serve endpoint or worker fleet.

use rl_ccd::{save_params, with_pretrained_gnn, Baseline, Error, RlConfig, Session, TrainOutcome};
use rl_ccd_daemon::{
    AdminClient, AdminReply, AdminRequest, Daemon, DaemonConfig, SystemClock, TenantConfig,
    CHAMPION,
};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{
    block_suite, generate, read_netlist, write_netlist, DesignSpec, DesignStats, GeneratedDesign,
    Library, Netlist, TechNode,
};
use rl_ccd_obs::Recorder;
use rl_ccd_serve::{
    Credentials, DesignKey, Mode, ModelRegistry, QueryRequest, Response, ServeClient, ServeConfig,
    Server,
};
use rl_ccd_sta::{analyze, full_report, Constraints, EndpointMargins, TimingGraph};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::ExitCode;

fn arg<T: std::str::FromStr>(args: &[String], key: &str) -> Option<T> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// (subcommand, usage line) table — one source of truth for both the
/// global usage screen and the per-subcommand usage printed when that
/// subcommand's arguments fail to parse.
const USAGE_TABLE: &[(&str, &str)] = &[
    (
        "generate",
        "generate --cells N --tech <5nm|7nm|12nm> --seed S [--out FILE]",
    ),
    ("report", "report   --in FILE [--period PS] [--paths K]"),
    (
        "flow",
        "flow     --in FILE [--period PS] [--trace-out FILE]",
    ),
    (
        "train",
        "train    --in FILE [--period PS] [--iters N] [--workers N] [--params FILE]\n\
         \u{20}         [--checkpoint DIR] [--checkpoint-every K] [--resume DIR]\n\
         \u{20}         [--tape-budget-gib G] [--trace-out FILE]\n\
         \u{20}         [--workers HOST:PORT,HOST:PORT [--slots N] [--deadline-s S]\n\
         \u{20}         [--retries N] [--chaos-plan SPEC] [--inject-worker-drop IT:PROC]]",
    ),
    (
        "worker",
        "worker   [--port 7401] [--chaos-plan SPEC] [--conn-base N]",
    ),
    (
        "transfer",
        "transfer --in FILE --params FILE [--period PS] [--iters N] [--trace-out FILE]",
    ),
    (
        "baseline",
        "baseline --in FILE [--period PS] [--trace-out FILE]",
    ),
    ("verilog", "verilog  --in FILE --out FILE"),
    ("suite", "suite    [--scale F]"),
    ("trace-validate", "trace-validate --in FILE"),
    (
        "serve",
        "serve    --checkpoint DIR [--model NAME] [--port P] [--reactor] [--max-batch N]\n\
         \u{20}         [--window-ms MS] [--queue N] [--serve-workers N] [--env-cache N]\n\
         \u{20}         [--rho R] [--fanout-cap N] [--trace-out FILE]",
    ),
    (
        "query",
        "query    --design name:cells:tech:seed [--addr HOST:PORT] [--model NAME]\n\
         \u{20}         [--mode greedy|sample] [--seed S] [--count N] [--threads T]\n\
         \u{20}         [--deadline-ms MS] [--retries N] [--chaos-plan SPEC]\n\
         \u{20}         [--tenant ID --token SECRET]\n\
         \u{20}         | query --shutdown [--addr HOST:PORT]",
    ),
    (
        "probe",
        "probe    --addr HOST:PORT | probe --workers HOST:PORT,HOST:PORT\n\
         \u{20}         [--timeout-ms MS]",
    ),
    (
        "daemon",
        "daemon   --checkpoint DIR [--port P] [--admin-port P] [--tenants SPEC,SPEC]\n\
         \u{20}         [--rho R] [--admin-token T] [--audit-out FILE] [--usage-out FILE]\n\
         \u{20}         [--usage-flush-ms MS] [--exp-out FILE]\n\
         \u{20}         [--gate-samples N] [--gate-seed S] [--max-batch N] [--window-ms MS]\n\
         \u{20}         [--queue N] [--serve-workers N] [--trace-out FILE]\n\
         \u{20}         (a tenant SPEC is id:token:rate:burst:quota)",
    ),
    (
        "admin",
        "admin    <action> [--addr HOST:PORT] [--admin-token T]\n\
         \u{20}         status | tenant-list | gate | rollback | drain\n\
         \u{20}         | load --slot champion|challenger --dir DIR [--rho R]\n\
         \u{20}         | promote [--force] | canary --fraction F\n\
         \u{20}         | tenant-add --spec id:token:rate:burst:quota | tenant-del --id ID\n\
         \u{20}         | retrain --base DIR --log FILE --out DIR [--seed S] [--steps N]",
    ),
    ("exp-validate", "exp-validate --in exp.jsonl"),
    (
        "retrain",
        "retrain  --base DIR --log exp.jsonl --out DIR [--seed S] [--steps N]\n\
         \u{20}         [--batch N] [--max-staleness N] [--w-max F] [--lr F] [--grad-clip F]",
    ),
];

fn usage() -> ExitCode {
    eprintln!("usage: rlccd <generate|report|flow|train|transfer|baseline|verilog|suite|trace-validate|serve|query|probe|daemon|admin|exp-validate|retrain> [options]\n");
    for (_, line) in USAGE_TABLE {
        eprintln!("{line}");
    }
    ExitCode::FAILURE
}

/// Prints the usage line of one subcommand (the arg-error path: a bad
/// `rlccd train --iters x` shows how to call `train`, not a bare error).
fn usage_for(cmd: &str) {
    if let Some((_, line)) = USAGE_TABLE.iter().find(|(name, _)| *name == cmd) {
        eprintln!("usage: rlccd {line}");
    }
}

/// The recorder requested by `--trace-out`, plus where to write it.
struct Trace {
    recorder: Recorder,
    path: PathBuf,
}

fn trace_from(args: &[String]) -> Option<Trace> {
    arg::<String>(args, "--trace-out").map(|path| Trace {
        recorder: Recorder::new(),
        path: PathBuf::from(path),
    })
}

impl Trace {
    fn finish(&self) -> Result<(), Error> {
        self.recorder.write_jsonl_to_path(&self.path)?;
        println!("\n{}", self.recorder.summary());
        println!("wrote trace {}", self.path.display());
        Ok(())
    }
}

fn load_design(args: &[String]) -> Result<GeneratedDesign, Error> {
    let path: String =
        arg(args, "--in").ok_or_else(|| Error::Config("missing --in FILE".into()))?;
    let file = File::open(&path)?;
    let netlist: Netlist =
        read_netlist(BufReader::new(file)).map_err(|e| Error::Config(format!("{path}: {e}")))?;
    // Period: explicit, or recalibrated from the netlist structure.
    if let Some(p) = arg::<f32>(args, "--period") {
        if p.is_nan() || p <= 0.0 {
            return Err(Error::Config(format!(
                "--period must be a positive number of ps, got {p}"
            )));
        }
    }
    let period = arg::<f32>(args, "--period").unwrap_or_else(|| {
        // Reuse the generator's calibration on the loaded structure by
        // regenerating a spec-shaped estimate: simplest robust choice is a
        // fresh STA-based quantile.
        let graph = TimingGraph::new(&netlist);
        let clocks = rl_ccd_sta::ClockSchedule::balanced(&netlist, 0.0, 0.0, 0.0, 0);
        let unconstrained = Constraints {
            input_delay: 0.0,
            output_delay: 0.0,
            uncertainty: 0.0,
            ..Constraints::with_period(1.0e9)
        };
        let rep = analyze(
            &netlist,
            &graph,
            &unconstrained,
            &clocks,
            &EndpointMargins::zero(&netlist),
        );
        let mut arr: Vec<f32> = (0..netlist.endpoints().len())
            .map(|i| rep.endpoint_arrival(i))
            .collect();
        arr.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let max = arr.last().copied().unwrap_or(1000.0);
        let tail: Vec<f32> = arr.into_iter().filter(|&a| a > 0.35 * max).collect();
        let idx = (tail.len().saturating_sub(1)) * 55 / 100;
        tail.get(idx).copied().unwrap_or(1000.0)
    });
    let spec = DesignSpec::new(
        netlist.name().to_string(),
        netlist.cell_count(),
        netlist.library().tech(),
        0,
    );
    let endpoint_class = vec![rl_ccd_netlist::ClusterClass::Normal; netlist.endpoints().len()];
    Ok(GeneratedDesign {
        netlist,
        period_ps: period,
        spec,
        endpoint_class,
    })
}

fn cmd_generate(args: &[String]) -> Result<(), Error> {
    let cells: usize = arg(args, "--cells").unwrap_or(1200);
    let tech_name: String = arg(args, "--tech").unwrap_or_else(|| "7nm".into());
    let tech: TechNode = Library::parse_tech(&tech_name)
        .ok_or_else(|| Error::Config(format!("unknown --tech {tech_name}")))?;
    let seed: u64 = arg(args, "--seed").unwrap_or(42);
    let out: String = arg(args, "--out").unwrap_or_else(|| "design.nl".into());
    let d = generate(&DesignSpec::new("cli", cells, tech, seed));
    let file = File::create(&out)?;
    write_netlist(&d.netlist, BufWriter::new(file))?;
    println!("{}", DesignStats::of(&d.netlist));
    println!(
        "calibrated period: {:.1} ps (pass via --period when loading)",
        d.period_ps
    );
    println!("wrote {out}");
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let paths: usize = arg(args, "--paths").unwrap_or(3);
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
    let rep = analyze(
        &d.netlist,
        &graph,
        &Constraints::with_period(d.period_ps),
        &clocks,
        &EndpointMargins::zero(&d.netlist),
    );
    println!("{}", DesignStats::of(&d.netlist));
    println!("period {:.1} ps", d.period_ps);
    print!("{}", full_report(&d.netlist, &rep, &clocks, paths));
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let trace = trace_from(args);
    let mut builder = Session::builder().design(d);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    let res = session.run_flow()?;
    println!(
        "begin: WNS {:.3} ns TNS {:.2} ns NVE {} power {:.2} mW",
        res.begin.wns_ns(),
        res.begin.tns_ns(),
        res.begin.nve,
        res.begin.power_mw
    );
    println!(
        "final: WNS {:.3} ns TNS {:.2} ns NVE {} power {:.2} mW ({} datapath ops, {} downsizes, {:.2}s)",
        res.final_qor.wns_ns(),
        res.final_qor.tns_ns(),
        res.final_qor.nve,
        res.final_qor.power_mw,
        res.op_stats.total(),
        res.downsizes,
        res.runtime_s
    );
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    // `--workers` is overloaded: a bare number is the rollout slot count
    // (the paper's parallel workers); a `host:port,…` list shards the
    // rollouts over those worker processes (slot count then comes from
    // `--slots`). Parsed as a raw string first — `arg::<usize>` would
    // silently drop an address list.
    let workers_raw = arg::<String>(args, "--workers");
    let (slots, dist_addrs) = match workers_raw {
        Some(w) if w.contains(':') => {
            let addrs: Vec<String> = w
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            (arg(args, "--slots").unwrap_or(8), Some(addrs))
        }
        Some(w) => (
            w.parse::<usize>().map_err(|_| {
                Error::Config(format!(
                    "--workers takes a count or a HOST:PORT list, got {w:?}"
                ))
            })?,
            None,
        ),
        None => (8, None),
    };
    let mut config = RlConfig {
        max_iterations: arg(args, "--iters").unwrap_or(12),
        workers: slots,
        ..RlConfig::default()
    };
    if let Some(gib) = arg::<f64>(args, "--tape-budget-gib") {
        if !gib.is_finite() || gib <= 0.0 {
            return Err(Error::Config(format!(
                "--tape-budget-gib must be positive, got {gib}"
            )));
        }
        config.tape_memory_budget = (gib * (1u64 << 30) as f64) as usize;
    }
    let trace = trace_from(args);
    // --resume DIR continues an interrupted run (or starts one that
    // checkpoints into DIR); --checkpoint DIR starts fresh but writes
    // resumable state every --checkpoint-every iterations.
    let resume_dir = arg::<String>(args, "--resume");
    let checkpoint_dir = resume_dir.clone().or(arg::<String>(args, "--checkpoint"));
    let mut builder = Session::builder().design(d).rl_config(config);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    if let Some(dir) = &checkpoint_dir {
        let every = arg(args, "--checkpoint-every").unwrap_or(5);
        builder = builder.checkpoint(dir, every);
        if resume_dir.is_some() && rl_ccd::training_state_exists(dir) {
            println!("resuming from checkpoint in {dir}");
        }
    }
    if let Some(addrs) = &dist_addrs {
        let mut executor = rl_ccd_dist::DistExecutor::connect(addrs)
            .map_err(|e| Error::Config(format!("--workers {}: {e}", addrs.join(","))))?;
        if let Some(secs) = arg::<u64>(args, "--deadline-s") {
            executor = executor.with_deadline(std::time::Duration::from_secs(secs.max(1)));
        }
        if let Some(n) = arg::<u32>(args, "--retries") {
            executor =
                executor.with_retry(rl_ccd_wire::RetryPolicy::seeded(0).with_attempts(n.max(1)));
        }
        // Wire-level chaos drill: inject deterministic transport faults
        // into the coordinator↔worker connections (connection id =
        // worker index) and let retry/re-queue recover.
        if let Some(plan) = parse_chaos_plan(args)? {
            println!("chaos plan armed: {} wire fault(s)", plan.len());
            executor = executor.with_chaos(plan);
        }
        println!(
            "sharding rollouts over {} worker(s): {}",
            addrs.len(),
            addrs.join(", ")
        );
        builder = builder.executor(Box::new(executor));
    }
    // CI smoke hook: kill worker process PROC mid-batch at iteration IT and
    // assert the run still completes (re-queued onto the survivors).
    if let Some(spec) = arg::<String>(args, "--inject-worker-drop") {
        let (it, proc) = spec
            .split_once(':')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| {
                Error::Config(format!("--inject-worker-drop takes IT:PROC, got {spec:?}"))
            })?;
        builder = builder.fault_plan(rl_ccd::FaultPlan::none().with_worker_drop(it, proc));
        println!("injecting worker-drop at iteration {it}, worker process {proc}");
    }
    let session = builder.build()?;
    let default = session.env().default_flow();
    println!(
        "default flow TNS {:.2} ns | training on {} violating endpoints…",
        default.final_qor.tns_ns(),
        session.env().pool().len()
    );
    let outcome: TrainOutcome = session.train()?;
    for h in &outcome.history {
        println!(
            "iter {:>3}: mean {:>10.0}  greedy {:>10.0}  best {:>10.0} ps",
            h.iteration, h.mean_reward, h.greedy_reward, h.best_so_far
        );
    }
    println!(
        "RL-CCD TNS {:.2} ns ({:+.1}% vs default), {} endpoints prioritized",
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.best_selection.len()
    );
    if !outcome.faults.is_empty() {
        println!("{} rollout fault(s) quarantined:", outcome.faults.len());
        for f in &outcome.faults {
            println!("  {f}");
        }
    }
    if let Some(path) = arg::<String>(args, "--params") {
        save_params(&outcome.params, &path)?;
        println!("saved parameters to {path}");
    }
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_transfer(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let donor_path: String =
        arg(args, "--params").ok_or_else(|| Error::Config("missing --params FILE".into()))?;
    let donor = rl_ccd::load_params(&donor_path)
        .map_err(|e| Error::Config(format!("{donor_path}: {e}")))?;
    let config = RlConfig {
        max_iterations: arg(args, "--iters").unwrap_or(12),
        ..RlConfig::default()
    };
    let trace = trace_from(args);
    let (_, params, adopted) = with_pretrained_gnn(config.clone(), &donor);
    println!("adopted {adopted} EP-GNN tensors from {donor_path}");
    let mut builder = Session::builder()
        .design(d)
        .rl_config(config)
        .initial_params(params);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    let default = session.env().default_flow();
    let outcome = session.train()?;
    println!(
        "transfer run: TNS {:.2} ns ({:+.1}% vs default) in {} iterations",
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.history.len()
    );
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_baseline(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let trace = trace_from(args);
    let mut builder = Session::builder().design(d);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    // The baseline evaluations go through the env directly, outside the
    // Session entry points — attach the recorder for the whole scan.
    let _obs = trace.as_ref().map(|t| rl_ccd_obs::attach(&t.recorder));
    let env = session.env();
    let default = env.default_flow();
    println!(
        "default flow TNS {:.2} ns over {} violating endpoints",
        default.final_qor.tns_ns(),
        env.pool().len()
    );
    for b in Baseline::all() {
        if b == Baseline::Native {
            continue;
        }
        let sel = b.select(env, RlConfig::default().rho, 7);
        let r = env.evaluate(&sel);
        println!(
            "{:<16} {:>4} selected  TNS {:>9.2} ns ({:>+6.1}%)",
            b.name(),
            sel.len(),
            r.final_qor.tns_ns(),
            r.tns_gain_over(&default)
        );
    }
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_verilog(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let out: String = arg(args, "--out").unwrap_or_else(|| "design.v".into());
    let file = File::create(&out)?;
    rl_ccd_netlist::write_verilog(&d.netlist, BufWriter::new(file))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), Error> {
    let scale: f32 = arg(args, "--scale").unwrap_or(0.5);
    println!(
        "{:<10} {:>8} {:>6} {:>9} {:>6}",
        "block", "cells", "tech", "period", "EPs"
    );
    for spec in block_suite(scale) {
        let d = generate(&spec);
        println!(
            "{:<10} {:>8} {:>6} {:>7.0}ps {:>6}",
            spec.name,
            d.netlist.cell_count(),
            spec.tech.name(),
            d.period_ps,
            d.netlist.endpoints().len()
        );
    }
    Ok(())
}

fn cmd_trace_validate(args: &[String]) -> Result<(), Error> {
    let path: String =
        arg(args, "--in").ok_or_else(|| Error::Config("missing --in FILE".into()))?;
    let file = File::open(&path)?;
    let summary = rl_ccd_obs::validate_jsonl(BufReader::new(file))?;
    println!(
        "{path}: valid rl-ccd-trace v{} — {} spans, {} metrics",
        summary.version, summary.spans, summary.metrics
    );
    println!("span names:   {}", summary.span_names.join(", "));
    println!("metric names: {}", summary.metric_names.join(", "));
    Ok(())
}

fn cmd_exp_validate(args: &[String]) -> Result<(), Error> {
    let path: String =
        arg(args, "--in").ok_or_else(|| Error::Config("missing --in FILE".into()))?;
    let file = File::open(&path)?;
    let summary = rl_ccd_exp::validate_exp_jsonl(BufReader::new(file))
        .map_err(|e| Error::Config(format!("{path}: {e}")))?;
    println!(
        "{path}: valid {} — {} records, {} unique ({} duplicates, dedup ratio {:.3})",
        rl_ccd_exp::EXP_SCHEMA,
        summary.records,
        summary.unique,
        summary.duplicates,
        summary.dedup_ratio()
    );
    println!(
        "designs: {}, total selection steps: {}",
        summary.designs, summary.total_steps
    );
    println!("policy-version histogram:");
    for (version, count) in &summary.versions {
        println!("  v{version:<6} {count}");
    }
    Ok(())
}

fn cmd_retrain(args: &[String]) -> Result<(), Error> {
    let base: String =
        arg(args, "--base").ok_or_else(|| Error::Config("missing --base DIR".into()))?;
    let log: String =
        arg(args, "--log").ok_or_else(|| Error::Config("missing --log FILE".into()))?;
    let out: String =
        arg(args, "--out").ok_or_else(|| Error::Config("missing --out DIR".into()))?;
    let defaults = rl_ccd_exp::RetrainConfig::default();
    let cfg = rl_ccd_exp::RetrainConfig {
        seed: arg(args, "--seed").unwrap_or(defaults.seed),
        steps: arg(args, "--steps").unwrap_or(defaults.steps),
        batch: arg(args, "--batch").unwrap_or(defaults.batch),
        max_staleness: arg(args, "--max-staleness").unwrap_or(defaults.max_staleness),
        w_max: arg(args, "--w-max").unwrap_or(defaults.w_max),
        learning_rate: arg(args, "--lr"),
        grad_clip: arg(args, "--grad-clip").unwrap_or(defaults.grad_clip),
    };
    let report = rl_ccd_exp::retrain(
        std::path::Path::new(&base),
        std::path::Path::new(&log),
        std::path::Path::new(&out),
        &cfg,
    )
    .map_err(|e| Error::Config(e.to_string()))?;
    println!(
        "retrained v{} -> v{} into {out} ({} offline steps, {} guarded)",
        report.base_version, report.new_version, report.steps_taken, report.guarded_steps
    );
    println!(
        "records: {} loaded, {} duplicates, {} unknown-version, {} stale, \
         {} config-mismatched, {} replay failures",
        report.records_loaded,
        report.duplicates,
        report.unknown_version,
        report.stale,
        report.config_mismatch,
        report.replay_failures
    );
    println!(
        "mean importance weight: {:.4}",
        report.mean_importance_weight
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let dir: String = arg(args, "--checkpoint")
        .ok_or_else(|| Error::Config("missing --checkpoint DIR".into()))?;
    let model: String = arg(args, "--model").unwrap_or_else(|| "default".into());
    let port: u16 = arg(args, "--port").unwrap_or(7878);
    let rho: f32 = arg(args, "--rho").unwrap_or_else(|| RlConfig::default().rho);
    let config = ServeConfig {
        max_batch: arg(args, "--max-batch").unwrap_or(8),
        window: std::time::Duration::from_millis(arg(args, "--window-ms").unwrap_or(2)),
        queue_capacity: arg(args, "--queue").unwrap_or(64),
        workers: arg(args, "--serve-workers").unwrap_or(2),
        env_cache: arg(args, "--env-cache").unwrap_or(4),
        fanout_cap: arg(args, "--fanout-cap").unwrap_or_else(|| RlConfig::default().fanout_cap),
        ..ServeConfig::default()
    };
    let trace = trace_from(args);
    let _obs = trace.as_ref().map(|t| rl_ccd_obs::attach(&t.recorder));
    let registry = ModelRegistry::new();
    let entry = registry
        .load(&model, &dir, rho)
        .map_err(|e| Error::Config(format!("{dir}: {e}")))?;
    println!(
        "loaded model {:?} v{} (fingerprint {:016x}) from {dir}",
        entry.name, entry.version, entry.fingerprint
    );
    let mut server = Server::start(registry, config);
    let bind_addr = format!("127.0.0.1:{port}");
    // --reactor: one epoll thread multiplexes every connection instead of
    // a thread per socket — what lets one replica hold thousands of them.
    let addr = if args.iter().any(|a| a == "--reactor") {
        server.bind_reactor(&bind_addr)?
    } else {
        server.bind(&bind_addr)?
    };
    println!("serving on {addr} — stop with `rlccd query --shutdown --addr {addr}`");
    while !server.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let report = server.shutdown();
    println!(
        "drained: {} accepted, {} completed, {} busy-rejected, {} shed, {} evicted, \
         {} deadline-expired, {} health-probed, batch p50 {}",
        report.stats.accepted,
        report.stats.completed,
        report.stats.rejected_busy,
        report.stats.shed,
        report.stats.evicted,
        report.stats.deadline_expired,
        report.stats.health_probes,
        report.stats.batch_p50()
    );
    if let Some(t) = &trace {
        t.finish()?;
    }
    if report.dropped() > 0 {
        return Err(Error::Config(format!(
            "drain dropped {} in-flight request(s)",
            report.dropped()
        )));
    }
    Ok(())
}

/// `--chaos-plan SPEC`: a deterministic wire-fault plan in the
/// [`rl_ccd_wire::NetFaultPlan::parse`] format, e.g.
/// `delay:0:1:50,reset:1:0,stall:0:3:2000,torn:1:2,seg:0:0:3`.
fn parse_chaos_plan(
    args: &[String],
) -> Result<Option<std::sync::Arc<rl_ccd_wire::NetFaultPlan>>, Error> {
    arg::<String>(args, "--chaos-plan")
        .map(|spec| {
            rl_ccd_wire::NetFaultPlan::parse(&spec)
                .map(std::sync::Arc::new)
                .map_err(|e| Error::Config(format!("--chaos-plan: {e}")))
        })
        .transpose()
}

fn serve_connect(addr: &str) -> Result<ServeClient, Error> {
    ServeClient::connect(addr)
        .map_err(|e| Error::Config(format!("cannot reach server at {addr}: {e}")))
}

fn run_queries(
    addr: &str,
    requests: Vec<QueryRequest>,
    retries: u32,
    chaos: Option<(std::sync::Arc<rl_ccd_wire::NetFaultPlan>, u64)>,
) -> Result<Vec<Response>, Error> {
    let mut builder = ServeClient::builder()
        .addr(addr)
        .retry(rl_ccd_wire::RetryPolicy::seeded(0).with_attempts(retries.max(1)));
    if let Some((plan, conn)) = chaos {
        builder = builder.chaos(plan, conn);
    }
    let mut client = builder
        .connect()
        .map_err(|e| Error::Config(format!("cannot reach server at {addr}: {e}")))?;
    requests
        .into_iter()
        .map(|r| {
            client
                .query(r)
                .map_err(|e| Error::Config(format!("query failed: {e}")))
        })
        .collect()
}

fn cmd_query(args: &[String]) -> Result<(), Error> {
    let addr: String = arg(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    if args.iter().any(|a| a == "--shutdown") {
        let mut client = serve_connect(&addr)?;
        client
            .shutdown()
            .map_err(|e| Error::Config(format!("shutdown failed: {e}")))?;
        println!("server at {addr} is draining");
        return Ok(());
    }
    let design: DesignKey = arg::<String>(args, "--design")
        .ok_or_else(|| Error::Config("missing --design name:cells:tech:seed".into()))?
        .parse()
        .map_err(Error::Config)?;
    let model: String = arg(args, "--model").unwrap_or_else(|| "default".into());
    let mode_name: String = arg(args, "--mode").unwrap_or_else(|| "greedy".into());
    let seed: u64 = arg(args, "--seed").unwrap_or(0);
    let mode = match mode_name.as_str() {
        "greedy" => Mode::Greedy,
        "sample" => Mode::Sample(seed),
        other => {
            return Err(Error::Config(format!(
                "--mode must be greedy or sample, got {other}"
            )))
        }
    };
    let count: usize = arg(args, "--count").unwrap_or(1);
    let threads: usize = arg(args, "--threads").unwrap_or(1).max(1);
    let deadline_ms: Option<u64> = arg(args, "--deadline-ms");
    let retries: u32 = arg(args, "--retries").unwrap_or(3);
    let chaos_plan = parse_chaos_plan(args)?;
    // Tenant credentials travel as a pair (the daemon port requires them;
    // a bare serve endpoint ignores them).
    let auth = match (
        arg::<String>(args, "--tenant"),
        arg::<String>(args, "--token"),
    ) {
        (Some(tenant), Some(token)) => Some(Credentials { tenant, token }),
        (None, None) => None,
        _ => {
            return Err(Error::Config(
                "--tenant and --token must be given together".into(),
            ))
        }
    };
    let request = |k: u64| QueryRequest {
        model: model.clone(),
        design: design.clone(),
        mode: match mode {
            Mode::Greedy => Mode::Greedy,
            Mode::Sample(s) => Mode::Sample(s.wrapping_add(k)),
        },
        deadline_ms,
        auth: auth.clone(),
    };
    let mut responses = Vec::new();
    if threads == 1 {
        let chaos = chaos_plan.clone().map(|p| (p, 0));
        responses = run_queries(
            &addr,
            (0..count as u64).map(request).collect(),
            retries,
            chaos,
        )?;
    } else {
        // Round-robin the requests over `threads` connections; each
        // connection is its own chaos-plan connection id.
        let mut shards: Vec<Vec<QueryRequest>> = vec![Vec::new(); threads];
        for k in 0..count as u64 {
            shards[k as usize % threads].push(request(k));
        }
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(conn, shard)| {
                let addr = addr.clone();
                let chaos = chaos_plan.clone().map(|p| (p, conn as u64));
                std::thread::spawn(move || run_queries(&addr, shard, retries, chaos))
            })
            .collect();
        for h in handles {
            responses.extend(h.join().expect("query thread panicked")?);
        }
    }
    let mut failed = 0usize;
    for resp in &responses {
        match resp {
            Response::Ok(r) => {
                let sel: Vec<String> = r.selection.iter().map(|e| e.to_string()).collect();
                println!(
                    "{} v{} [batch {} cached {}] {} endpoints: {}",
                    r.model,
                    r.version,
                    r.batch,
                    u8::from(r.cached),
                    r.steps,
                    sel.join(",")
                );
            }
            Response::Err { kind, msg } => {
                failed += 1;
                eprintln!("rejected ({kind}): {msg}");
            }
            Response::Overloaded { retry_after_ms } => {
                failed += 1;
                eprintln!("shed by the server (overloaded, retry after {retry_after_ms} ms)");
            }
            Response::QuotaExceeded { retry_after_ms } => {
                failed += 1;
                eprintln!("tenant quota exceeded (retry after {retry_after_ms} ms)");
            }
            Response::Health(h) => {
                // Queries never produce health replies; a server that
                // answers one here is misbehaving.
                failed += 1;
                eprintln!("unexpected health reply: ready={}", h.ready);
            }
        }
    }
    if failed > 0 {
        return Err(Error::Config(format!(
            "{failed}/{} request(s) rejected",
            responses.len()
        )));
    }
    Ok(())
}

/// Health-checks a serve endpoint (`--addr`) or a fleet of dist workers
/// (`--workers`). Exits non-zero when anything is unreachable or not
/// ready, so scripts can gate on it.
fn cmd_probe(args: &[String]) -> Result<(), Error> {
    let timeout =
        std::time::Duration::from_millis(arg::<u64>(args, "--timeout-ms").unwrap_or(5_000).max(1));
    if let Some(w) = arg::<String>(args, "--workers") {
        let addrs: Vec<String> = w
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if addrs.is_empty() {
            return Err(Error::Config("--workers takes a HOST:PORT list".into()));
        }
        let mut unhealthy = 0usize;
        for addr in &addrs {
            match probe_dist_worker(addr, timeout) {
                Ok(ready) => println!(
                    "worker {addr}: alive, {}",
                    if ready {
                        "initialized"
                    } else {
                        "awaiting init"
                    }
                ),
                Err(why) => {
                    unhealthy += 1;
                    println!("worker {addr}: UNHEALTHY ({why})");
                }
            }
        }
        if unhealthy > 0 {
            return Err(Error::Config(format!(
                "{unhealthy}/{} worker(s) unhealthy",
                addrs.len()
            )));
        }
        return Ok(());
    }
    let addr: String = arg(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let mut client = serve_connect(&addr)?;
    client.set_timeout(Some(timeout));
    let h = client
        .health()
        .map_err(|e| Error::Config(format!("probe of {addr} failed: {e}")))?;
    println!(
        "serve {addr}: ready={} queue={}/{} models={}",
        u8::from(h.ready),
        h.queue_depth,
        h.queue_capacity,
        h.models
    );
    for v in &h.active {
        println!("  active: {v}");
    }
    if !h.ready {
        return Err(Error::Config(format!("server at {addr} is not ready")));
    }
    Ok(())
}

/// One dist health probe over a dedicated connection. Deliberately not
/// [`rl_ccd_dist::DistExecutor`]: its drop sends `Shutdown`, and a probe
/// must never stop the worker it checks.
fn probe_dist_worker(addr: &str, timeout: std::time::Duration) -> Result<bool, String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve: {e}"))?
        .next()
        .ok_or_else(|| "resolved to no address".to_string())?;
    let mut conn = std::net::TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| format!("connect: {e}"))?;
    conn.set_read_timeout(Some(timeout)).ok();
    conn.set_write_timeout(Some(timeout)).ok();
    let payload = rl_ccd_dist::encode_request(&rl_ccd_dist::Request::Health);
    rl_ccd_dist::write_message(&mut conn, &payload).map_err(|e| format!("send: {e}"))?;
    let reply = rl_ccd_dist::read_message(&mut conn).map_err(|e| format!("receive: {e}"))?;
    match rl_ccd_dist::decode_response(&reply).map_err(|e| format!("decode: {e}"))? {
        rl_ccd_dist::Response::HealthAck { ready } => Ok(ready),
        other => Err(format!("wrong answer to a health probe: {other:?}")),
    }
}

/// Serves rollout requests for distributed training: loads the design and
/// parameters a coordinator sends over `rl-ccd-dist v1`, then answers
/// `run` requests until told to shut down.
fn cmd_worker(args: &[String]) -> Result<(), Error> {
    let port: u16 = arg(args, "--port").unwrap_or(7401);
    let listener = std::net::TcpListener::bind(("0.0.0.0", port))?;
    println!("rl-ccd worker serving on {}", listener.local_addr()?);
    // Chaos on the *accept* path: every accepted connection is wrapped,
    // numbered from --conn-base in accept order.
    let mut net = rl_ccd_dist::WorkerNet::default();
    if let Some(plan) = parse_chaos_plan(args)? {
        println!("chaos plan armed: {} wire fault(s)", plan.len());
        net.chaos = Some(plan);
        net.conn_base = arg(args, "--conn-base").unwrap_or(0);
    }
    rl_ccd_dist::serve_worker_with(listener, net)?;
    println!("worker shut down");
    Ok(())
}

/// Runs the multi-tenant daemon until an admin sends `drain`.
fn cmd_daemon(args: &[String]) -> Result<(), Error> {
    let dir: String = arg(args, "--checkpoint")
        .ok_or_else(|| Error::Config("missing --checkpoint DIR".into()))?;
    let port: u16 = arg(args, "--port").unwrap_or(7791);
    let admin_port: u16 = arg(args, "--admin-port").unwrap_or(7792);
    let rho: f32 = arg(args, "--rho").unwrap_or_else(|| RlConfig::default().rho);
    let serve = ServeConfig {
        max_batch: arg(args, "--max-batch").unwrap_or(8),
        window: std::time::Duration::from_millis(arg(args, "--window-ms").unwrap_or(2)),
        queue_capacity: arg(args, "--queue").unwrap_or(64),
        workers: arg(args, "--serve-workers").unwrap_or(2),
        env_cache: arg(args, "--env-cache").unwrap_or(4),
        fanout_cap: arg(args, "--fanout-cap").unwrap_or_else(|| RlConfig::default().fanout_cap),
        ..ServeConfig::default()
    };
    let mut gate = rl_ccd::GateSpec::quick(arg(args, "--gate-seed").unwrap_or(0xCCD));
    if let Some(samples) = arg(args, "--gate-samples") {
        gate.samples = samples;
    }
    let config = DaemonConfig {
        serve,
        rho,
        gate,
        admin_token: arg(args, "--admin-token"),
        audit_path: arg::<String>(args, "--audit-out").map(PathBuf::from),
        usage_path: arg::<String>(args, "--usage-out").map(PathBuf::from),
        usage_flush_ms: arg(args, "--usage-flush-ms").unwrap_or(0),
        experience_path: arg::<String>(args, "--exp-out").map(PathBuf::from),
    };
    let trace = trace_from(args);
    let _obs = trace.as_ref().map(|t| rl_ccd_obs::attach(&t.recorder));
    let registry = ModelRegistry::new();
    let entry = registry
        .load(CHAMPION, &dir, rho)
        .map_err(|e| Error::Config(format!("{dir}: {e}")))?;
    println!(
        "loaded champion v{} (fingerprint {:016x}) from {dir}",
        entry.version, entry.fingerprint
    );
    let mut daemon = Daemon::start(registry, config, std::sync::Arc::new(SystemClock));
    if let Some(specs) = arg::<String>(args, "--tenants") {
        for spec in specs.split(',').filter(|s| !s.is_empty()) {
            let tenant: TenantConfig = spec.parse().map_err(Error::Config)?;
            println!(
                "tenant {}: {}/s, burst {}, quota {}/30d",
                tenant.id, tenant.rate_per_sec, tenant.burst, tenant.monthly_quota
            );
            daemon.tenants().add(tenant);
        }
    }
    let query_addr = daemon.bind_query(&format!("127.0.0.1:{port}"))?;
    let admin_addr = daemon.bind_admin(&format!("127.0.0.1:{admin_port}"))?;
    println!(
        "tenant port {query_addr}, admin port {admin_addr} — stop with \
         `rlccd admin drain --addr {admin_addr}`"
    );
    while !daemon.drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let report = daemon.shutdown();
    println!(
        "drained: {} accepted, {} completed, batch p50 {}",
        report.drain.stats.accepted,
        report.drain.stats.completed,
        report.drain.stats.batch_p50()
    );
    for t in &report.tenants {
        println!(
            "tenant {}: {} accepted, {} denied, {} throttled, {}/{} of quota used",
            t.id,
            t.usage.accepted,
            t.usage.denied,
            t.usage.throttled,
            t.usage.used_in_window,
            t.monthly_quota
        );
    }
    if let Some(t) = &trace {
        t.finish()?;
    }
    if report.drain.dropped() > 0 {
        return Err(Error::Config(format!(
            "drain dropped {} in-flight request(s)",
            report.drain.dropped()
        )));
    }
    Ok(())
}

/// Sends one admin command to a running daemon and prints the answer.
fn cmd_admin(args: &[String]) -> Result<(), Error> {
    use std::net::ToSocketAddrs;
    let action = args
        .first()
        .ok_or_else(|| Error::Config("missing admin action".into()))?
        .clone();
    let rest = &args[1..];
    let addr: String = arg(rest, "--addr").unwrap_or_else(|| "127.0.0.1:7792".into());
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| Error::Config(format!("--addr {addr}: {e}")))?
        .next()
        .ok_or_else(|| Error::Config(format!("--addr {addr} resolved to nothing")))?;
    let request = match action.as_str() {
        "status" => AdminRequest::Status,
        "load" => AdminRequest::Load {
            slot: arg(rest, "--slot").unwrap_or_else(|| "challenger".into()),
            dir: arg(rest, "--dir").ok_or_else(|| Error::Config("load needs --dir DIR".into()))?,
            rho: arg(rest, "--rho").unwrap_or(0.0), // 0 = daemon's default
        },
        "gate" => AdminRequest::Gate,
        "promote" => AdminRequest::Promote {
            force: rest.iter().any(|a| a == "--force"),
        },
        "rollback" => AdminRequest::Rollback,
        "canary" => AdminRequest::Canary {
            fraction: arg(rest, "--fraction")
                .ok_or_else(|| Error::Config("canary needs --fraction F".into()))?,
        },
        "tenant-add" => AdminRequest::TenantAdd {
            spec: arg(rest, "--spec")
                .ok_or_else(|| Error::Config("tenant-add needs --spec".into()))?,
        },
        "tenant-del" => AdminRequest::TenantDel {
            id: arg(rest, "--id").ok_or_else(|| Error::Config("tenant-del needs --id".into()))?,
        },
        "tenant-list" => AdminRequest::TenantList,
        "retrain" => {
            let defaults = rl_ccd_exp::RetrainConfig::default();
            AdminRequest::Retrain {
                base: arg(rest, "--base")
                    .ok_or_else(|| Error::Config("retrain needs --base DIR".into()))?,
                log: arg(rest, "--log")
                    .ok_or_else(|| Error::Config("retrain needs --log FILE".into()))?,
                out: arg(rest, "--out")
                    .ok_or_else(|| Error::Config("retrain needs --out DIR".into()))?,
                seed: arg(rest, "--seed").unwrap_or(defaults.seed),
                steps: arg(rest, "--steps").unwrap_or(defaults.steps),
            }
        }
        "drain" => AdminRequest::Drain,
        other => return Err(Error::Config(format!("unknown admin action {other:?}"))),
    };
    let client = AdminClient::new(sock, arg(rest, "--admin-token"));
    match client.call(&request).map_err(Error::Config)? {
        AdminReply::Ok { info } => println!("{info}"),
        AdminReply::Status(s) => {
            println!(
                "ready={} queue={} canary={} tenants={}",
                u8::from(s.ready),
                s.queue_depth,
                s.canary,
                s.tenants
            );
            let slot = |v: &Option<rl_ccd_serve::ModelVersion>| {
                v.as_ref().map_or("(empty)".to_string(), |m| m.to_string())
            };
            println!("champion:   {}", slot(&s.champion));
            println!("challenger: {}", slot(&s.challenger));
        }
        AdminReply::Tenants(list) => {
            println!(
                "{:<12} {:>8} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9}",
                "tenant", "rate/s", "burst", "quota/30d", "used", "accepted", "denied", "throttled"
            );
            for t in list {
                println!(
                    "{:<12} {:>8} {:>6} {:>10} {:>8} {:>8} {:>8} {:>9}",
                    t.id,
                    t.rate_per_sec,
                    t.burst,
                    t.monthly_quota,
                    t.usage.used_in_window,
                    t.usage.accepted,
                    t.usage.denied,
                    t.usage.throttled
                );
            }
        }
        AdminReply::Err { msg } => return Err(Error::Config(msg)),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "report" => cmd_report(rest),
        "flow" => cmd_flow(rest),
        "train" => cmd_train(rest),
        "transfer" => cmd_transfer(rest),
        "baseline" => cmd_baseline(rest),
        "verilog" => cmd_verilog(rest),
        "suite" => cmd_suite(rest),
        "trace-validate" => cmd_trace_validate(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "probe" => cmd_probe(rest),
        "worker" => cmd_worker(rest),
        "daemon" => cmd_daemon(rest),
        "admin" => cmd_admin(rest),
        "exp-validate" => cmd_exp_validate(rest),
        "retrain" => cmd_retrain(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Argument errors additionally show how to call the failing
            // subcommand (I/O and training failures do not).
            if matches!(e, Error::Config(_)) {
                usage_for(cmd);
            }
            ExitCode::FAILURE
        }
    }
}
