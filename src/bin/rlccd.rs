//! `rlccd` — command-line front end for the RL-CCD reproduction.
//!
//! ```text
//! rlccd generate --cells 1200 --tech 7nm --seed 42 --out design.nl
//! rlccd report   --in design.nl [--paths 3]
//! rlccd flow     --in design.nl [--period <ps>] [--trace-out run.jsonl]
//! rlccd train    --in design.nl [--iters 12] [--workers 8] [--params out.txt]
//!                [--checkpoint DIR] [--checkpoint-every K] [--resume DIR]
//!                [--tape-budget-gib G] [--trace-out run.jsonl]
//! rlccd transfer --in design.nl --params donor.txt [--iters 12] [--trace-out run.jsonl]
//! rlccd baseline --in design.nl [--period <ps>]
//! rlccd verilog  --in design.nl --out design.v
//! rlccd suite    [--scale 0.5]
//! rlccd trace-validate --in run.jsonl
//! ```
//!
//! `generate` writes the plain-text netlist format of
//! [`rl_ccd_netlist::serialize`]; the clock period is embedded as a comment
//! convention-free sidecar (printed, and recalibrated on load via
//! `--period`).
//!
//! `--trace-out FILE` records hierarchical spans and metrics from STA, the
//! flow, and the training loop into a versioned JSONL trace;
//! `trace-validate` checks one against the schema. Every subcommand exits
//! through the unified [`rl_ccd::Error`] instead of ad-hoc panics.

use rl_ccd::{save_params, with_pretrained_gnn, Baseline, Error, RlConfig, Session, TrainOutcome};
use rl_ccd_flow::FlowRecipe;
use rl_ccd_netlist::{
    block_suite, generate, read_netlist, write_netlist, DesignSpec, DesignStats, GeneratedDesign,
    Library, Netlist, TechNode,
};
use rl_ccd_obs::Recorder;
use rl_ccd_sta::{analyze, full_report, Constraints, EndpointMargins, TimingGraph};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::ExitCode;

fn arg<T: std::str::FromStr>(args: &[String], key: &str) -> Option<T> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rlccd <generate|report|flow|train|transfer|suite|trace-validate> [options]\n\
         \n\
         generate --cells N --tech <5nm|7nm|12nm> --seed S [--out FILE]\n\
         report   --in FILE [--period PS] [--paths K]\n\
         flow     --in FILE [--period PS] [--trace-out FILE]\n\
         train    --in FILE [--period PS] [--iters N] [--workers N] [--params FILE]\n\
         \u{20}         [--checkpoint DIR] [--checkpoint-every K] [--resume DIR]\n\
         \u{20}         [--tape-budget-gib G] [--trace-out FILE]\n\
         transfer --in FILE --params FILE [--period PS] [--iters N] [--trace-out FILE]\n\
         baseline --in FILE [--period PS] [--trace-out FILE]\n\
         verilog  --in FILE --out FILE\n\
         suite    [--scale F]\n\
         trace-validate --in FILE"
    );
    ExitCode::FAILURE
}

/// The recorder requested by `--trace-out`, plus where to write it.
struct Trace {
    recorder: Recorder,
    path: PathBuf,
}

fn trace_from(args: &[String]) -> Option<Trace> {
    arg::<String>(args, "--trace-out").map(|path| Trace {
        recorder: Recorder::new(),
        path: PathBuf::from(path),
    })
}

impl Trace {
    fn finish(&self) -> Result<(), Error> {
        self.recorder.write_jsonl_to_path(&self.path)?;
        println!("\n{}", self.recorder.summary());
        println!("wrote trace {}", self.path.display());
        Ok(())
    }
}

fn load_design(args: &[String]) -> Result<GeneratedDesign, Error> {
    let path: String =
        arg(args, "--in").ok_or_else(|| Error::Config("missing --in FILE".into()))?;
    let file = File::open(&path)?;
    let netlist: Netlist =
        read_netlist(BufReader::new(file)).map_err(|e| Error::Config(format!("{path}: {e}")))?;
    // Period: explicit, or recalibrated from the netlist structure.
    if let Some(p) = arg::<f32>(args, "--period") {
        if p.is_nan() || p <= 0.0 {
            return Err(Error::Config(format!(
                "--period must be a positive number of ps, got {p}"
            )));
        }
    }
    let period = arg::<f32>(args, "--period").unwrap_or_else(|| {
        // Reuse the generator's calibration on the loaded structure by
        // regenerating a spec-shaped estimate: simplest robust choice is a
        // fresh STA-based quantile.
        let graph = TimingGraph::new(&netlist);
        let clocks = rl_ccd_sta::ClockSchedule::balanced(&netlist, 0.0, 0.0, 0.0, 0);
        let unconstrained = Constraints {
            input_delay: 0.0,
            output_delay: 0.0,
            uncertainty: 0.0,
            ..Constraints::with_period(1.0e9)
        };
        let rep = analyze(
            &netlist,
            &graph,
            &unconstrained,
            &clocks,
            &EndpointMargins::zero(&netlist),
        );
        let mut arr: Vec<f32> = (0..netlist.endpoints().len())
            .map(|i| rep.endpoint_arrival(i))
            .collect();
        arr.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let max = arr.last().copied().unwrap_or(1000.0);
        let tail: Vec<f32> = arr.into_iter().filter(|&a| a > 0.35 * max).collect();
        let idx = (tail.len().saturating_sub(1)) * 55 / 100;
        tail.get(idx).copied().unwrap_or(1000.0)
    });
    let spec = DesignSpec::new(
        netlist.name().to_string(),
        netlist.cell_count(),
        netlist.library().tech(),
        0,
    );
    let endpoint_class = vec![rl_ccd_netlist::ClusterClass::Normal; netlist.endpoints().len()];
    Ok(GeneratedDesign {
        netlist,
        period_ps: period,
        spec,
        endpoint_class,
    })
}

fn cmd_generate(args: &[String]) -> Result<(), Error> {
    let cells: usize = arg(args, "--cells").unwrap_or(1200);
    let tech_name: String = arg(args, "--tech").unwrap_or_else(|| "7nm".into());
    let tech: TechNode = Library::parse_tech(&tech_name)
        .ok_or_else(|| Error::Config(format!("unknown --tech {tech_name}")))?;
    let seed: u64 = arg(args, "--seed").unwrap_or(42);
    let out: String = arg(args, "--out").unwrap_or_else(|| "design.nl".into());
    let d = generate(&DesignSpec::new("cli", cells, tech, seed));
    let file = File::create(&out)?;
    write_netlist(&d.netlist, BufWriter::new(file))?;
    println!("{}", DesignStats::of(&d.netlist));
    println!(
        "calibrated period: {:.1} ps (pass via --period when loading)",
        d.period_ps
    );
    println!("wrote {out}");
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let paths: usize = arg(args, "--paths").unwrap_or(3);
    let recipe = FlowRecipe::default();
    let graph = TimingGraph::new(&d.netlist);
    let clocks = recipe.clock_schedule(&d.netlist, d.period_ps);
    let rep = analyze(
        &d.netlist,
        &graph,
        &Constraints::with_period(d.period_ps),
        &clocks,
        &EndpointMargins::zero(&d.netlist),
    );
    println!("{}", DesignStats::of(&d.netlist));
    println!("period {:.1} ps", d.period_ps);
    print!("{}", full_report(&d.netlist, &rep, &clocks, paths));
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let trace = trace_from(args);
    let mut builder = Session::builder().design(d);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    let res = session.run_flow()?;
    println!(
        "begin: WNS {:.3} ns TNS {:.2} ns NVE {} power {:.2} mW",
        res.begin.wns_ns(),
        res.begin.tns_ns(),
        res.begin.nve,
        res.begin.power_mw
    );
    println!(
        "final: WNS {:.3} ns TNS {:.2} ns NVE {} power {:.2} mW ({} datapath ops, {} downsizes, {:.2}s)",
        res.final_qor.wns_ns(),
        res.final_qor.tns_ns(),
        res.final_qor.nve,
        res.final_qor.power_mw,
        res.op_stats.total(),
        res.downsizes,
        res.runtime_s
    );
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let mut config = RlConfig {
        max_iterations: arg(args, "--iters").unwrap_or(12),
        workers: arg(args, "--workers").unwrap_or(8),
        ..RlConfig::default()
    };
    if let Some(gib) = arg::<f64>(args, "--tape-budget-gib") {
        if !gib.is_finite() || gib <= 0.0 {
            return Err(Error::Config(format!(
                "--tape-budget-gib must be positive, got {gib}"
            )));
        }
        config.tape_memory_budget = (gib * (1u64 << 30) as f64) as usize;
    }
    let trace = trace_from(args);
    // --resume DIR continues an interrupted run (or starts one that
    // checkpoints into DIR); --checkpoint DIR starts fresh but writes
    // resumable state every --checkpoint-every iterations.
    let resume_dir = arg::<String>(args, "--resume");
    let checkpoint_dir = resume_dir.clone().or(arg::<String>(args, "--checkpoint"));
    let mut builder = Session::builder().design(d).rl_config(config);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    if let Some(dir) = &checkpoint_dir {
        let every = arg(args, "--checkpoint-every").unwrap_or(5);
        builder = builder.checkpoint(dir, every);
        if resume_dir.is_some() && rl_ccd::training_state_exists(dir) {
            println!("resuming from checkpoint in {dir}");
        }
    }
    let session = builder.build()?;
    let default = session.env().default_flow();
    println!(
        "default flow TNS {:.2} ns | training on {} violating endpoints…",
        default.final_qor.tns_ns(),
        session.env().pool().len()
    );
    let outcome: TrainOutcome = session.train()?;
    for h in &outcome.history {
        println!(
            "iter {:>3}: mean {:>10.0}  greedy {:>10.0}  best {:>10.0} ps",
            h.iteration, h.mean_reward, h.greedy_reward, h.best_so_far
        );
    }
    println!(
        "RL-CCD TNS {:.2} ns ({:+.1}% vs default), {} endpoints prioritized",
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.best_selection.len()
    );
    if !outcome.faults.is_empty() {
        println!("{} rollout fault(s) quarantined:", outcome.faults.len());
        for f in &outcome.faults {
            println!("  {f}");
        }
    }
    if let Some(path) = arg::<String>(args, "--params") {
        save_params(&outcome.params, &path)?;
        println!("saved parameters to {path}");
    }
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_transfer(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let donor_path: String =
        arg(args, "--params").ok_or_else(|| Error::Config("missing --params FILE".into()))?;
    let donor = rl_ccd::load_params(&donor_path)
        .map_err(|e| Error::Config(format!("{donor_path}: {e}")))?;
    let config = RlConfig {
        max_iterations: arg(args, "--iters").unwrap_or(12),
        ..RlConfig::default()
    };
    let trace = trace_from(args);
    let (_, params, adopted) = with_pretrained_gnn(config.clone(), &donor);
    println!("adopted {adopted} EP-GNN tensors from {donor_path}");
    let mut builder = Session::builder()
        .design(d)
        .rl_config(config)
        .initial_params(params);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    let default = session.env().default_flow();
    let outcome = session.train()?;
    println!(
        "transfer run: TNS {:.2} ns ({:+.1}% vs default) in {} iterations",
        outcome.best_result.final_qor.tns_ns(),
        outcome.best_result.tns_gain_over(&default),
        outcome.history.len()
    );
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_baseline(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let trace = trace_from(args);
    let mut builder = Session::builder().design(d);
    if let Some(t) = &trace {
        builder = builder.recorder(t.recorder.clone());
    }
    let session = builder.build()?;
    // The baseline evaluations go through the env directly, outside the
    // Session entry points — attach the recorder for the whole scan.
    let _obs = trace.as_ref().map(|t| rl_ccd_obs::attach(&t.recorder));
    let env = session.env();
    let default = env.default_flow();
    println!(
        "default flow TNS {:.2} ns over {} violating endpoints",
        default.final_qor.tns_ns(),
        env.pool().len()
    );
    for b in Baseline::all() {
        if b == Baseline::Native {
            continue;
        }
        let sel = b.select(env, RlConfig::default().rho, 7);
        let r = env.evaluate(&sel);
        println!(
            "{:<16} {:>4} selected  TNS {:>9.2} ns ({:>+6.1}%)",
            b.name(),
            sel.len(),
            r.final_qor.tns_ns(),
            r.tns_gain_over(&default)
        );
    }
    if let Some(t) = &trace {
        t.finish()?;
    }
    Ok(())
}

fn cmd_verilog(args: &[String]) -> Result<(), Error> {
    let d = load_design(args)?;
    let out: String = arg(args, "--out").unwrap_or_else(|| "design.v".into());
    let file = File::create(&out)?;
    rl_ccd_netlist::write_verilog(&d.netlist, BufWriter::new(file))?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), Error> {
    let scale: f32 = arg(args, "--scale").unwrap_or(0.5);
    println!(
        "{:<10} {:>8} {:>6} {:>9} {:>6}",
        "block", "cells", "tech", "period", "EPs"
    );
    for spec in block_suite(scale) {
        let d = generate(&spec);
        println!(
            "{:<10} {:>8} {:>6} {:>7.0}ps {:>6}",
            spec.name,
            d.netlist.cell_count(),
            spec.tech.name(),
            d.period_ps,
            d.netlist.endpoints().len()
        );
    }
    Ok(())
}

fn cmd_trace_validate(args: &[String]) -> Result<(), Error> {
    let path: String =
        arg(args, "--in").ok_or_else(|| Error::Config("missing --in FILE".into()))?;
    let file = File::open(&path)?;
    let summary = rl_ccd_obs::validate_jsonl(BufReader::new(file))?;
    println!(
        "{path}: valid rl-ccd-trace v{} — {} spans, {} metrics",
        summary.version, summary.spans, summary.metrics
    );
    println!("span names:   {}", summary.span_names.join(", "));
    println!("metric names: {}", summary.metric_names.join(", "));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "report" => cmd_report(rest),
        "flow" => cmd_flow(rest),
        "train" => cmd_train(rest),
        "transfer" => cmd_transfer(rest),
        "baseline" => cmd_baseline(rest),
        "verilog" => cmd_verilog(rest),
        "suite" => cmd_suite(rest),
        "trace-validate" => cmd_trace_validate(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
