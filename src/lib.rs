//! # RL-CCD reproduction — umbrella crate
//!
//! A from-scratch Rust reproduction of *RL-CCD: Concurrent Clock and Data
//! Optimization using Attention-Based Self-Supervised Reinforcement
//! Learning* (DAC 2023). This crate re-exports the whole stack and hosts
//! the repository-level examples, integration tests, and the `rlccd` CLI.
//!
//! The layers, bottom-up:
//!
//! * [`netlist`] — gate-level netlist substrate: typed graph, synthetic
//!   technology libraries, the seeded design generator, fan-in cones,
//!   GNN message-graph transformation, placement & power models.
//! * [`sta`] — slew-aware static timing analysis: arrivals, required times,
//!   per-register clock schedules, margins, WNS/TNS/NVE.
//! * [`flow`] — the "commercial tool" substrate: the useful-skew engine,
//!   the budgeted data-path optimizer, hold fixing, and the full placement
//!   optimization flow of the paper's Fig. 1.
//! * [`nn`] — tape-based autodiff, Linear/LSTM/GRU, Adam, serialization.
//! * [`agent`] — the paper's contribution: EP-GNN, LSTM encoder, pointer
//!   attention, cone-overlap masking, REINFORCE training, transfer
//!   learning.
//!
//! # End-to-end in eight lines
//! ```no_run
//! use rl_ccd_repro::prelude::*;
//!
//! let design = generate(&DesignSpec::new("demo", 1200, TechNode::N7, 42));
//! let session = Session::builder().design(design).build()?;
//! let default = session.run_flow()?;
//! let outcome = session.train()?;
//! println!(
//!     "TNS {:.2} → {:.2} ns ({:+.1}%)",
//!     default.final_qor.tns_ns(),
//!     outcome.best_result.final_qor.tns_ns(),
//!     outcome.best_result.tns_gain_over(&default),
//! );
//! # Ok::<(), rl_ccd::Error>(())
//! ```
//!
//! Pass an observability [`obs::Recorder`] to the builder (or `--trace-out`
//! to any binary) to capture hierarchical spans and metrics from every
//! layer as a versioned JSONL trace.

#![warn(missing_docs)]

/// Gate-level netlist substrate (re-export of [`rl_ccd_netlist`]).
pub use rl_ccd_netlist as netlist;

/// Static timing analysis engine (re-export of [`rl_ccd_sta`]).
pub use rl_ccd_sta as sta;

/// Placement-optimization flow simulator (re-export of [`rl_ccd_flow`]).
pub use rl_ccd_flow as flow;

/// Neural-network stack (re-export of [`rl_ccd_nn`]).
pub use rl_ccd_nn as nn;

/// The RL-CCD agent and trainer (re-export of [`rl_ccd`]).
pub use rl_ccd as agent;

/// Observability layer: spans, metrics, JSONL traces (re-export of
/// [`rl_ccd_obs`]).
pub use rl_ccd_obs as obs;

/// The most common imports for working with the reproduction end to end.
pub mod prelude {
    pub use rl_ccd::{
        try_train, with_pretrained_gnn, Baseline, CcdEnv, EncoderKind, Error, RlCcd, RlConfig,
        Session, TrainSession,
    };
    pub use rl_ccd_flow::{FlowRecipe, MarginMode};
    pub use rl_ccd_netlist::{
        block_suite, generate, DesignSpec, DesignStats, GeneratedDesign, TechNode,
    };
    pub use rl_ccd_obs::Recorder;
    pub use rl_ccd_sta::{analyze, ClockSchedule, Constraints, EndpointMargins, TimingGraph};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_the_stack() {
        use crate::prelude::*;
        let design = generate(&DesignSpec::new("facade", 300, TechNode::N12, 1));
        let env = CcdEnv::new(design, FlowRecipe::default(), 24);
        assert!(!env.pool().is_empty());
    }
}
